//! # skilltax
//!
//! Umbrella crate for the `skilltax` workspace — a production-quality Rust
//! reproduction of Shami & Hemani, *"Classification of Massively Parallel
//! Computer Architectures"* (IPPS 2012).
//!
//! The workspace implements the paper's extended Skillicorn taxonomy and
//! everything around it:
//!
//! * [`model`] — architecture descriptions (counts, switches, the five
//!   connectivity relations, a text DSL),
//! * [`taxonomy`] — the 47-class extended table (Table I), hierarchical
//!   naming (Fig 2), the classification engine, and the flexibility scoring
//!   system (Table II),
//! * [`estimate`] — the area (Eq 1) and configuration-bit (Eq 2) predictive
//!   models with parameterised component costs,
//! * [`catalog`] — the 25 surveyed architectures of Table III,
//! * [`machine`] — executable cycle-level machines for every implementable
//!   class family, used to *demonstrate* the paper's flexibility claims,
//! * [`trends`] — the synthetic bibliometric model behind Fig 1,
//! * [`report`] — table/CSV/SVG/ASCII-chart rendering for regenerating every
//!   table and figure,
//! * [`service`] — a multi-tenant job service over the crates above:
//!   admission control with per-tenant quotas, deadlines and cancellation,
//!   machine pooling, a hand-rolled HTTP/1.1 front end, and a deterministic
//!   chaos-soak harness,
//! * [`bench`] — the continuous-performance harness: the collector and
//!   regression gate, plus the append-only perf-history store with
//!   significance-aware triage, mounted read-only behind the service's
//!   `GET /perf/*` endpoints.
//!
//! ```
//! use skilltax::prelude::*;
//!
//! let spec = skilltax::model::dsl::parse_row(
//!     "MorphoSys",
//!     "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64",
//! ).unwrap();
//! let class = classify(&spec).unwrap();
//! assert_eq!(class.name().to_string(), "IAP-II");
//! assert_eq!(flexibility_of_spec(&spec), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use skilltax_bench as bench;
pub use skilltax_catalog as catalog;
pub use skilltax_estimate as estimate;
pub use skilltax_machine as machine;
pub use skilltax_model as model;
pub use skilltax_report as report;
pub use skilltax_service as service;
pub use skilltax_taxonomy as taxonomy;
pub use skilltax_trends as trends;

/// One-stop import surface for applications.
pub mod prelude {
    pub use skilltax_estimate::prelude::*;
    pub use skilltax_model::prelude::*;
    pub use skilltax_taxonomy::prelude::*;
}

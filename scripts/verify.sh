#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).  Everything runs offline:
# the workspace is hermetic (DESIGN.md §5), so an empty cargo registry
# must be sufficient.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"

#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).  Everything runs offline:
# the workspace is hermetic (DESIGN.md §5), so an empty cargo registry
# must be sufficient.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Build and run every example so drift between the examples and the
# library API fails tier-1 instead of rotting silently.
for src in examples/*.rs; do
    name="$(basename "$src" .rs)"
    echo "==> cargo run --release --offline --example $name"
    cargo run --release --offline --example "$name" >/dev/null
done

echo "verify: OK"

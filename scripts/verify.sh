#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).  Everything runs offline:
# the workspace is hermetic (DESIGN.md §5), so an empty cargo registry
# must be sufficient.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (including bench targets)"
cargo build --release --offline --workspace --benches

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Build and run every example so drift between the examples and the
# library API fails tier-1 instead of rotting silently.
for src in examples/*.rs; do
    name="$(basename "$src" .rs)"
    echo "==> cargo run --release --offline --example $name"
    cargo run --release --offline --example "$name" >/dev/null
done

# Scheduler identity: the event-driven engines must stay counter-exact
# twins of the dense reference loops (DESIGN.md §9).  Release mode — the
# suite includes multi-hundred-core staggered runs.
echo "==> cargo test --release --offline -p skilltax-machine --test scheduler_identity"
cargo test --release --offline -p skilltax-machine --test scheduler_identity -q

# Shard + fleet identity: the shard-parallel runners must stay
# counter-exact twins of the single-threaded schedulers (DESIGN.md §10),
# and the structure-of-arrays fleet executor must stay bit-identical to
# N sequential dense runs (DESIGN.md §14) — at every thread width, so
# both suites repeat under a pinned SKILLTAX_THREADS: 1 (auto collapses
# to single-threaded), 2 and 8 (oversubscribed on small hosts, which is
# exactly the stress the barrier and the chunked fleet must survive).
for threads in 1 2 8; do
    echo "==> SKILLTAX_THREADS=$threads cargo test --release --offline -p skilltax-machine --test shard_identity --test fleet_identity"
    SKILLTAX_THREADS=$threads \
        cargo test --release --offline -p skilltax-machine \
        --test shard_identity --test fleet_identity -q
done

# The same fleet-identity suite with the wide lane kernels compiled to
# real std::arch intrinsics (`--features simd`): the batched SIMD paths
# must stay bit-identical to N sequential dense runs too, at every
# thread width.  Clippy also runs over the feature-gated unsafe module
# so intrinsic code is held to the same -D warnings bar.
for threads in 1 2 8; do
    echo "==> SKILLTAX_THREADS=$threads cargo test --release --offline -p skilltax-machine --features simd --test fleet_identity"
    SKILLTAX_THREADS=$threads \
        cargo test --release --offline -p skilltax-machine --features simd \
        --test fleet_identity -q
done
echo "==> cargo clippy -p skilltax-machine --features simd --all-targets --offline -- -D warnings"
cargo clippy -p skilltax-machine --features simd --all-targets --offline -- -D warnings

# Chaos soak: the multi-tenant service under a seeded hostile tenant
# mix (DESIGN.md §11).  SKILLTAX_SOAK_SECONDS maps deterministically to
# a round count, so this short gate replays bit-identically; the
# example exits non-zero on any robustness-invariant violation.
echo "==> SKILLTAX_SOAK_SECONDS=2 cargo run --release --offline --example service_soak"
SKILLTAX_SOAK_SECONDS=2 \
    cargo run --release --offline --example service_soak >/dev/null

# Bench smoke: run the continuous-performance collector in quick mode
# and gate the deterministic counters against the committed baseline.
echo "==> bench collector smoke (quick mode + regression gate)"
SKILLTAX_BENCH_BATCHES=3 SKILLTAX_BENCH_BATCH_MS=2 \
    cargo run --release --offline -p skilltax-bench --bin bench_compare -- \
    --baseline artifacts/BENCH_baseline.json

# Perf-history smoke: record two commits into a throwaway store, then
# answer a trajectory query and a triaged comparison through the
# bench_history CLI.  (The perf_history example above already drove the
# /perf/* HTTP endpoints end-to-end over a real socket.)
echo "==> perf-history smoke (record x2 + trajectory + compare)"
HISTORY_STORE="$(mktemp -d)"
trap 'rm -rf "$HISTORY_STORE"' EXIT
SKILLTAX_BENCH_BATCHES=3 SKILLTAX_BENCH_BATCH_MS=2 \
    cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    record --store "$HISTORY_STORE" --commit smoke1 --label smoke --filter taxonomy >/dev/null
SKILLTAX_BENCH_BATCHES=3 SKILLTAX_BENCH_BATCH_MS=2 \
    cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    record --store "$HISTORY_STORE" --commit smoke2 --label smoke --filter taxonomy >/dev/null
cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    trajectory --store "$HISTORY_STORE" \
    --bench taxonomy/classify_templates --counter work.classified
cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    compare --store "$HISTORY_STORE" --from smoke1 --to smoke2
# Prune down to the newest entry; the trajectory over the survivor must
# still answer (the store GC can thin history but never orphan it).
cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    prune --store "$HISTORY_STORE" --keep 1
cargo run --release --offline -p skilltax-bench --bin bench_history -- \
    trajectory --store "$HISTORY_STORE" \
    --bench taxonomy/classify_templates --counter work.classified >/dev/null

echo "verify: OK"

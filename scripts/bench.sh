#!/usr/bin/env bash
# Continuous-performance collector entry points (see EXPERIMENTS.md).
#
#   scripts/bench.sh record    — re-record the committed baseline
#                                (deterministic counters only; commit the
#                                result alongside the PR that changed them)
#   scripts/bench.sh compare   — collect a quick run and gate it against
#                                the committed baseline (non-zero exit on
#                                any deterministic-counter regression)
#   scripts/bench.sh full      — deep local collection to BENCH_local.json
#   scripts/bench.sh fleet     — gate just the */fleet and */fleet_simd
#                                twins and their sequential baselines
#                                against the committed baseline (the
#                                quick loop while touching the SoA
#                                executor)
#   scripts/bench.sh fleet-simd — the same gate built with the `simd`
#                                feature, so the wide lane kernels run
#                                as real AVX2/SSE2 intrinsics where the
#                                host supports them
#   scripts/bench.sh history … — pass-through to the bench_history CLI
#                                against the default store
#                                artifacts/history (record / list /
#                                trajectory / compare / prune
#                                subcommands; add --store DIR to use
#                                another store)
#
# An optional second argument narrows record/compare/full to benchmarks
# whose name contains the substring, e.g. `scripts/bench.sh compare
# dataflow`.
#
# Batch depth is tunable via SKILLTAX_BENCH_BATCHES / SKILLTAX_BENCH_BATCH_MS.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=artifacts/BENCH_baseline.json
FILTER="${2:-}"
FILTER_ARGS=()
if [ -n "$FILTER" ]; then
    FILTER_ARGS=(--filter "$FILTER")
fi

case "${1:-compare}" in
    record)
        cargo run --release --offline -p skilltax-bench --bin bench_collect -- \
            --deterministic-only --label baseline --out "$BASELINE" "${FILTER_ARGS[@]}"
        echo "baseline recorded: $BASELINE (commit it with the change that explains it)"
        ;;
    compare)
        cargo run --release --offline -p skilltax-bench --bin bench_compare -- \
            --baseline "$BASELINE" "${FILTER_ARGS[@]}"
        ;;
    full)
        cargo run --release --offline -p skilltax-bench --bin bench_collect -- \
            --label local "${FILTER_ARGS[@]}"
        ;;
    fleet)
        # The fleet twins share their name stem with their sequential
        # baselines (…/swarm/… vs …/swarm/…/fleet{,_simd}), so one
        # substring gates all sides of each SoA identity group.
        cargo run --release --offline -p skilltax-bench --bin bench_compare -- \
            --baseline "$BASELINE" --filter swarm
        ;;
    fleet-simd)
        # Same gate, wide kernels as real intrinsics: deterministic
        # counters must not move when the `simd` feature is on.
        cargo run --release --offline -p skilltax-bench --features simd \
            --bin bench_compare -- --baseline "$BASELINE" --filter swarm
        ;;
    history)
        shift
        if [ $# -eq 0 ]; then
            echo "usage: scripts/bench.sh history <record|list|trajectory|compare|prune> [flags]" >&2
            exit 2
        fi
        sub="$1"
        shift
        # Default to the in-repo store unless the caller named one.
        store_args=(--store artifacts/history)
        for arg in "$@"; do
            if [ "$arg" = "--store" ]; then
                store_args=()
            fi
        done
        cargo run --release --offline -p skilltax-bench --bin bench_history -- \
            "$sub" ${store_args[@]+"${store_args[@]}"} "$@"
        ;;
    *)
        echo "usage: scripts/bench.sh [record|compare|full|fleet|fleet-simd|history] [FILTER]" >&2
        exit 2
        ;;
esac

#!/usr/bin/env bash
# Continuous-performance collector entry points (see EXPERIMENTS.md).
#
#   scripts/bench.sh record    — re-record the committed baseline
#                                (deterministic counters only; commit the
#                                result alongside the PR that changed them)
#   scripts/bench.sh compare   — collect a quick run and gate it against
#                                the committed baseline (non-zero exit on
#                                any deterministic-counter regression)
#   scripts/bench.sh full      — deep local collection to BENCH_local.json
#
# Batch depth is tunable via SKILLTAX_BENCH_BATCHES / SKILLTAX_BENCH_BATCH_MS.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=artifacts/BENCH_baseline.json

case "${1:-compare}" in
    record)
        cargo run --release --offline -p skilltax-bench --bin bench_collect -- \
            --deterministic-only --label baseline --out "$BASELINE"
        echo "baseline recorded: $BASELINE (commit it with the change that explains it)"
        ;;
    compare)
        cargo run --release --offline -p skilltax-bench --bin bench_compare -- \
            --baseline "$BASELINE"
        ;;
    full)
        cargo run --release --offline -p skilltax-bench --bin bench_collect -- \
            --label local
        ;;
    *)
        echo "usage: scripts/bench.sh [record|compare|full]" >&2
        exit 2
        ;;
esac

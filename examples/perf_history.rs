//! Record a short perf history and query it over HTTP.
//!
//! The self-contained tour of the perf-history pipeline:
//!
//! 1. collect one real (quick, filtered) bench artifact in-process;
//! 2. record it into a temporary history store at three synthetic
//!    commits, perturbing the copies so the triage classifier has all
//!    three buckets to show (an exact counter change, a wall drift);
//! 3. print the `bench_history`-style trajectory table for one counter;
//! 4. mount the store behind the job service's HTTP front end and hit
//!    `GET /perf/benchmarks`, `/perf/trajectory` and `/perf/compare`
//!    with a real client socket, including one malformed query that
//!    must come back `400 Bad Request`.
//!
//! Exits non-zero if any response deviates — the tier-1 example sweep
//! runs this, so the `/perf/*` contract is smoke-checked on every
//! verify.
//!
//! Run with: `cargo run --release --example perf_history`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use skilltax::bench::artifact::CollectionMode;
use skilltax::bench::collector;
use skilltax::bench::history::{HistoryPerfSource, HistoryStore};
use skilltax::report::trajectory_table;
use skilltax::service::{serve_with_perf, HttpConfig, Service, ServiceConfig};

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").as_bytes())
        .expect("write request");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .lines()
        .next()
        .unwrap_or_default()
        .trim_start_matches("HTTP/1.1 ")
        .to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn expect(what: &str, got: &str, want: &str) {
    if got != want {
        eprintln!("FAIL: {what}: expected {want:?}, got {got:?}");
        std::process::exit(1);
    }
    println!("  {what}: {got}");
}

fn main() {
    let store_root =
        std::env::temp_dir().join(format!("skilltax-perf-history-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let store = HistoryStore::open(&store_root);

    // 1. One real artifact: the taxonomy benches in quick mode keep the
    //    example fast while exercising the genuine collector path.
    println!("collecting taxonomy benches (quick mode) ...");
    let base = collector::collect_filtered("demo", CollectionMode::Quick, Some("taxonomy"));
    let bench_name = base.benchmarks[0].name.clone();

    // 2. Three commits: the base, an identical re-run (pure noise), and
    //    a perturbed run (a deterministic counter regression the triage
    //    must flag as relevant).
    store.append("aaa1111", &base).expect("record commit 1");
    store.append("bbb2222", &base).expect("record commit 2");
    let mut perturbed = base.clone();
    for counter in perturbed.benchmarks[0].counters.values_mut() {
        *counter = *counter + *counter / 5; // +20%
    }
    store
        .append("ccc3333", &perturbed)
        .expect("record commit 3");

    // 3. The trajectory query, straight through the store.
    // Any non-zero deterministic counter shows the +20% perturbation.
    let counter = base.benchmarks[0]
        .counters
        .iter()
        .find(|(_, v)| **v > 0)
        .map(|(k, _)| k.clone())
        .expect("collector records a non-zero counter");
    let trajectory = store
        .trajectory("demo", &bench_name, &counter)
        .expect("trajectory query");
    print!(
        "{}",
        trajectory_table(&bench_name, &counter, &trajectory.rows()).render_ascii()
    );
    expect(
        "trajectory relevance",
        trajectory.relevance().label(),
        "relevant",
    );

    // 4. The same data over HTTP.
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let mut server = serve_with_perf(
        Arc::clone(&service),
        HttpConfig::default(),
        Some(Arc::new(HistoryPerfSource::new(store))),
    )
    .expect("bind HTTP listener");
    let addr = server.local_addr();
    println!();
    println!("serving the store on http://{addr}");
    println!("  curl http://{addr}/perf/benchmarks");
    println!(
        "  curl 'http://{addr}/perf/trajectory?bench={}&counter={counter}'",
        bench_name.replace('/', "%2F")
    );
    println!("  curl 'http://{addr}/perf/compare?from=bbb2222&to=ccc3333'");
    println!();

    let (status, body) = get(addr, "/perf/benchmarks");
    expect("GET /perf/benchmarks", &status, "200 OK");
    if !body.contains("\"demo\"") {
        eprintln!("FAIL: inventory does not list the label: {body}");
        std::process::exit(1);
    }

    let path = format!(
        "/perf/trajectory?bench={}&counter={counter}",
        bench_name.replace('/', "%2F")
    );
    let (status, body) = get(addr, &path);
    expect("GET /perf/trajectory", &status, "200 OK");
    if !body.contains("\"relevance\":\"relevant\"") {
        eprintln!("FAIL: trajectory body lost the triage verdict: {body}");
        std::process::exit(1);
    }

    let (status, body) = get(addr, "/perf/compare?from=bbb2222&to=ccc3333");
    expect("GET /perf/compare", &status, "200 OK");
    if !body.contains("\"buckets\"") {
        eprintln!("FAIL: compare body has no triage buckets: {body}");
        std::process::exit(1);
    }
    println!("  compare body: {}", &body[..body.len().min(120)]);

    // Input validation holds on the live socket: a missing required
    // parameter and a hostile commit id are typed 400s, not defaults.
    let (status, _) = get(addr, "/perf/trajectory?bench=missing-counter");
    expect(
        "GET /perf/trajectory (malformed)",
        &status,
        "400 Bad Request",
    );
    let (status, _) = get(addr, "/perf/compare?from=..%2Fetc&to=ccc3333");
    expect("GET /perf/compare (hostile id)", &status, "400 Bad Request");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_root);
    println!();
    println!("perf-history example passed");
}

//! End-to-end span profiling: a machine run rendered as a flamegraph
//! and a Chrome trace, then the same pipeline through the job service's
//! `profile=true` wire flag and `GET /trace/jobs` endpoint.
//!
//! The example is self-validating (it exits non-zero on any breach):
//!
//! 1. A USP LUT fabric is configured under a `reconfigure` span and run
//!    under a [`SpanProfile`]; the leaf span extents must tile the run's
//!    cycle total exactly.
//! 2. The span tree renders as a self-time table and folded stacks
//!    (pipe those into `flamegraph.pl` for an SVG).
//! 3. The Chrome trace-event export round-trips through the workspace's
//!    own JSON reader, and every track must be strictly nested with
//!    monotone timestamps — the document `chrome://tracing` loads.
//! 4. A live service runs a `profile=true` job over HTTP; the trace
//!    served on `/trace/jobs` passes the same structural validation,
//!    with service phases (parse → admission → queue_wait →
//!    pool_acquire → run → respond) wrapping the machine spans.
//!
//! Run with: `cargo run --release --example profile_run`

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use skilltax::bench::jsonio;
use skilltax::machine::profile::{Phase, SpanProfile};
use skilltax::machine::universal::{Bitstream, CellConfig, LutCell, LutFabric, Source};
use skilltax::report::{chrome_trace, flame_table, folded_stacks, Json, TraceTrack};
use skilltax::service::{serve, HttpConfig, Service, ServiceConfig};

fn field<'a>(value: &'a Json, key: &str) -> Option<&'a Json> {
    match value {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(value: &Json) -> f64 {
    match value {
        Json::Num(n) => *n,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// `(start_µs, end_µs, name)` for one complete event.
type CheckedSpan = (f64, f64, String);

/// Validate every `ph:"X"` track in a Chrome trace document: stamps
/// must be monotone in emission order, and any two spans of a track
/// must be either disjoint or properly nested.  Returns the number of
/// complete events checked.
fn validate_chrome_trace(doc: &Json) -> usize {
    let Some(Json::Arr(events)) = field(doc, "traceEvents") else {
        panic!("document has no traceEvents array");
    };
    let mut tracks: BTreeMap<(u64, u64), Vec<CheckedSpan>> = BTreeMap::new();
    for event in events {
        let Some(Json::Str(ph)) = field(event, "ph") else {
            continue;
        };
        if ph != "X" {
            continue;
        }
        let pid = num(field(event, "pid").expect("pid")) as u64;
        let tid = num(field(event, "tid").expect("tid")) as u64;
        let ts = num(field(event, "ts").expect("ts"));
        let dur = num(field(event, "dur").expect("dur"));
        let Some(Json::Str(name)) = field(event, "name") else {
            panic!("complete event without a name");
        };
        assert!(ts >= 0.0 && dur >= 0.0, "negative stamp on {name}");
        tracks
            .entry((pid, tid))
            .or_default()
            .push((ts, ts + dur, name.clone()));
    }
    let mut total = 0;
    for ((pid, tid), spans) in &tracks {
        for pair in spans.windows(2) {
            assert!(
                pair[1].0 >= pair[0].0,
                "timestamps regress in track {pid}/{tid}: {pair:?}"
            );
        }
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                // Scaled stamps are f64 products; absorb the rounding.
                let eps = 1e-9 * a.1.abs().max(b.1.abs()).max(1.0);
                let disjoint = a.1 <= b.0 + eps || b.1 <= a.0 + eps;
                let nested = (a.0 <= b.0 + eps && b.1 <= a.1 + eps)
                    || (b.0 <= a.0 + eps && a.1 <= b.1 + eps);
                assert!(
                    disjoint || nested,
                    "spans overlap without nesting in track {pid}/{tid}: {a:?} vs {b:?}"
                );
            }
        }
        total += spans.len();
    }
    total
}

/// Build the delay-chain counter bitstream: region `r` is a chain of
/// `r + 1` registered buffers, so the run finishes after `regions`
/// clock edges.
fn counter_bitstream(regions: usize) -> Bitstream {
    let buffer = LutCell::new(1, vec![false, true]).expect("buffer LUT");
    let mut cells = Vec::new();
    let mut outputs = Vec::with_capacity(regions);
    for r in 0..regions {
        for j in 0..=r {
            cells.push(CellConfig {
                lut: buffer.clone(),
                inputs: vec![if j == 0 {
                    Source::One
                } else {
                    Source::Cell(cells.len() - 1)
                }],
                registered: true,
            });
        }
        outputs.push(Source::Cell(cells.len() - 1));
    }
    Bitstream { cells, outputs }
}

fn http(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Profile a fabric run, reconfiguration included.
    // ------------------------------------------------------------------
    let mut profile = SpanProfile::new().with_wall_clock();
    let bitstream = counter_bitstream(5);
    profile.enter(0, Phase::Reconfigure);
    let mut fabric = LutFabric::new(bitstream.cells.len(), 2, 0)
        .configure(&bitstream)
        .expect("configure fabric");
    profile.exit(0);
    let (outputs, stats) = fabric
        .run_until_traced(&[], 64, |o| o.iter().all(|&b| b), &mut profile)
        .expect("fabric run");
    profile.seal();
    assert!(outputs.iter().all(|&b| b), "every chain must go high");
    assert_eq!(
        profile.leaf_cycle_total(),
        stats.cycles,
        "leaf spans must tile the run exactly"
    );
    println!(
        "fabric: {} cells, {} cycles, {} spans, leaf extents reconcile",
        bitstream.cells.len(),
        stats.cycles,
        profile.spans().len()
    );
    if let Some(wall) = profile.wall_elapsed() {
        println!("wall clock: {wall:?}");
    }
    println!();

    // ------------------------------------------------------------------
    // 2. Flamegraph views: self-time table and folded stacks.
    // ------------------------------------------------------------------
    let rows = profile.rows();
    println!("{}", flame_table(&rows, "cycles").render_ascii());
    println!("folded stacks (feed to flamegraph.pl):");
    print!("{}", folded_stacks(&rows));
    println!();

    // ------------------------------------------------------------------
    // 3. Chrome trace export, round-tripped through our own JSON reader.
    // ------------------------------------------------------------------
    let track = TraceTrack {
        pid: 1,
        tid: 0,
        name: "usp fabric counters".to_owned(),
        spans: rows.clone(),
        marks: profile
            .marks()
            .iter()
            .map(|m| (m.phase.label().to_owned(), m.cycle))
            .collect(),
        scale: 1.0, // cycle stamps rendered 1 cycle = 1 µs
    };
    let document = chrome_trace(&[track]).emit();
    let parsed = jsonio::parse(&document).expect("chrome trace JSON parses");
    let checked = validate_chrome_trace(&parsed);
    assert_eq!(
        checked,
        profile.spans().len(),
        "every span must survive the round trip"
    );
    println!(
        "chrome trace: {} bytes, {checked} complete events validated (load in chrome://tracing)",
        document.len()
    );
    println!();

    // ------------------------------------------------------------------
    // 4. The same contract over the live service.
    // ------------------------------------------------------------------
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let mut server = serve(
        Arc::clone(&service),
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            ..HttpConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let body = "tenant=demo&kind=simulate&cores=4&iters=200&profile=true";
    let response = http(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(
        response.contains("\"outcome\":\"completed\""),
        "profiled job must complete: {response}"
    );
    let trace_response = http(addr, "GET /trace/jobs HTTP/1.1\r\nHost: demo\r\n\r\n");
    let trace_body = trace_response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("trace response has a body");
    let trace_doc = jsonio::parse(trace_body).expect("served trace parses");
    let events_checked = validate_chrome_trace(&trace_doc);
    assert!(events_checked > 0, "trace ring served no spans");
    for phase in ["parse", "queue_wait", "pool_acquire", "run", "respond"] {
        assert!(
            trace_body.contains(&format!("\"name\":\"{phase}\"")),
            "service trace is missing the {phase} phase"
        );
    }
    println!(
        "service trace: {events_checked} spans validated over HTTP \
         (service phases nest over machine spans)"
    );
    server.shutdown();
    println!();
    println!("profile_run: all invariants hold");
}

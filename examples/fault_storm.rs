//! Fault-injection storm across the machine families.
//!
//! Runs the same workloads under a seeded [`FaultPlan`] and shows the
//! paper's switch argument from a new angle: the classes whose deciding
//! switch is a *crossbar* can remap work off a failed data processor and
//! finish degraded, while the *direct*-switched classes report a typed
//! `DegradationImpossible`.  Transient link outages are survived with
//! bounded exponential backoff, and a machine that cannot make progress
//! is converted into a `WatchdogTimeout` instead of a hang.
//!
//! Run with: `cargo run --release --example fault_storm`

use skilltax::machine::array::{ArrayMachine, ArraySubtype};
use skilltax::machine::fault::{FaultPlan, LinkOutage};
use skilltax::machine::isa::Instr;
use skilltax::machine::multi::{MultiMachine, MultiSubtype};
use skilltax::machine::program::{Assembler, Program};
use skilltax::machine::MachineError;
use skilltax::report::{resilience_table, ResilienceEntry};

/// `mem[addr] = value` on whichever bank the executing DP owns.
fn store_const(addr: i64, value: i64) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, addr)
        .movi(1, value)
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Per-lane SIMD program: `mem[0] = 100 + lane` in the lane's own bank.
fn lane_signature() -> Program {
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 100)
        .emit(Instr::Add(1, 1, 0))
        .movi(2, 0)
        .emit(Instr::Store(2, 1))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

fn entry_from(
    class_name: String,
    deciding_switch: &str,
    result: Result<skilltax::machine::RunOutcome, MachineError>,
) -> ResilienceEntry {
    match result {
        Ok(outcome) => ResilienceEntry {
            class_name,
            deciding_switch: deciding_switch.to_owned(),
            faults_injected: outcome.faults_injected,
            completed: true,
            degraded: outcome.degraded,
            error: None,
        },
        Err(err) => ResilienceEntry {
            class_name,
            deciding_switch: deciding_switch.to_owned(),
            faults_injected: 0,
            completed: false,
            degraded: false,
            error: Some(err.to_string()),
        },
    }
}

fn main() {
    let mut entries = Vec::new();

    // 1. IMP with an IP-DP crossbar: core 2's DP dies, its program is
    //    rebound to a healthy DP and replayed — degraded completion.
    let crossbar = MultiSubtype::from_code(0b1000).unwrap();
    let mut m = MultiMachine::new(crossbar, 3, 8);
    let programs: Vec<Program> = (0..3).map(|i| store_const(0, 10 + i)).collect();
    let result = m.run_resilient(&programs, FaultPlan::seeded(42).fail_dp(2));
    entries.push(entry_from(crossbar.class_name(), "IP-DP crossbar", result));

    // 2. The same storm on IMP-I (all switches direct): the failed DP's IP
    //    cannot be rebound, so degradation is impossible.
    let direct = MultiSubtype::from_code(0).unwrap();
    let mut m = MultiMachine::new(direct, 3, 8);
    let result = m.run_resilient(&programs, FaultPlan::seeded(42).fail_dp(2));
    entries.push(entry_from(direct.class_name(), "IP-DP direct", result));

    // 3. IAP-III (shared DP-DM crossbar): a substitute DP replays the dead
    //    lane's work through the global address space.
    let mut a = ArrayMachine::new(ArraySubtype::III, 4, 8);
    let result = a.run_resilient(&lane_signature(), FaultPlan::seeded(7).fail_dp(1));
    entries.push(entry_from(
        ArraySubtype::III.class_name().to_owned(),
        "DP-DM crossbar",
        result,
    ));

    // 4. IAP-I (private banks): the dead lane's bank is wired to its dead
    //    DP alone — typed refusal, not a wrong answer.
    let mut a = ArrayMachine::new(ArraySubtype::I, 4, 8);
    let result = a.run_resilient(&lane_signature(), FaultPlan::seeded(7).fail_dp(1));
    entries.push(entry_from(
        ArraySubtype::I.class_name().to_owned(),
        "DP-DM direct",
        result,
    ));

    // 5. Transient link outage on a DP-DP fabric: the sender backs off
    //    exponentially and the message still lands.
    let dp_dp = MultiSubtype::from_index(2).unwrap();
    let mut m = MultiMachine::new(dp_dp, 2, 4);
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
    let pair = vec![sender.assemble().unwrap(), receiver.assemble().unwrap()];
    let plan = FaultPlan::seeded(1).fail_link(LinkOutage {
        from: 0,
        to: 1,
        from_cycle: 0,
        until_cycle: 4,
    });
    let result = m.run_resilient(&pair, plan);
    let retries = result.as_ref().map(|o| o.retries).unwrap_or(0);
    entries.push(entry_from(
        dp_dp.class_name(),
        "DP-DP crossbar (outage)",
        result,
    ));

    // 6. Adversarial stall storm: every cycle stalls, so the watchdog
    //    converts the livelock into a typed timeout with partial stats.
    let mut m = MultiMachine::new(direct, 2, 4).with_cycle_limit(500);
    let result = m.run_resilient(
        &vec![store_const(0, 1); 2],
        FaultPlan::seeded(3).stall_dps(1.0),
    );
    entries.push(entry_from(
        direct.class_name(),
        "watchdog (stall storm)",
        result,
    ));

    println!("{}", resilience_table(&entries).render_ascii());
    println!("backoff retries on the transient outage: {retries}");
    println!(
        "verdict spread: {} degraded, {} completed, {} failed (typed)",
        entries.iter().filter(|e| e.verdict() == "degraded").count(),
        entries
            .iter()
            .filter(|e| e.verdict() == "completed")
            .count(),
        entries.iter().filter(|e| e.verdict() == "failed").count(),
    );
}

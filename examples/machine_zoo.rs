//! The machine zoo: run the same work on executable machines from every
//! class family and watch the taxonomy's flexibility claims play out as
//! real behaviour — cycle counts, routing errors, morphing.
//!
//! ```sh
//! cargo run --example machine_zoo
//! ```

use skilltax::machine::array::ArraySubtype;
use skilltax::machine::dataflow::DataflowSubtype;
use skilltax::machine::morph;
use skilltax::machine::multi::MultiSubtype;
use skilltax::machine::universal::{program_counter, ripple_adder, LutFabric};
use skilltax::machine::workload::{
    matmul_reference, run_matmul_array, run_matmul_uni, run_mimd_mix_array, run_mimd_mix_multi,
    run_reduce_dataflow, run_reduce_uni, run_vector_add_array, run_vector_add_multi,
    run_vector_add_uni, vector_add_reference,
};
use skilltax::machine::Word;

fn main() {
    let a: Vec<Word> = (0..16).collect();
    let b: Vec<Word> = (100..116).collect();
    let expected = vector_add_reference(&a, &b);

    println!("== vector add (16 elements) across class families ==");
    let uni = run_vector_add_uni(&a, &b).expect("IUP runs it");
    println!(
        "  IUP    : {:>5} cycles (sequential loop)",
        uni.stats.cycles
    );
    for subtype in ArraySubtype::ALL {
        let run = run_vector_add_array(subtype, &a, &b).expect("arrays run it");
        assert_eq!(run.outputs, expected);
        println!(
            "  {:<7}: {:>5} cycles (SIMD, ipc {:.1})",
            subtype.class_name(),
            run.stats.cycles,
            run.stats.ipc()
        );
    }
    let imp = run_vector_add_multi(MultiSubtype::from_index(1).unwrap(), &a, &b).unwrap();
    println!(
        "  IMP-I  : {:>5} cycles (morphed into an array: same program on every core)",
        imp.stats.cycles
    );

    println!("\n== n different programs at once ==");
    let slices: Vec<Vec<Word>> = (0..4).map(|i| ((i + 1)..(i + 5)).collect()).collect();
    let mix = run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap();
    println!(
        "  IMP-I  : outputs {:?} (sum / product / max / sum)",
        mix.outputs
    );
    match run_mimd_mix_array(ArraySubtype::IV, &slices) {
        Err(e) => println!("  IAP-IV : refused -- {e}"),
        Ok(_) => unreachable!("arrays cannot run this"),
    }

    println!("\n== reduction on data-flow machines ==");
    let data: Vec<Word> = (1..=32).collect();
    let dup = run_reduce_dataflow(DataflowSubtype::Uni, 1, &data).unwrap();
    let dmp = run_reduce_dataflow(DataflowSubtype::IV, 8, &data).unwrap();
    let iup = run_reduce_uni(&data).unwrap();
    println!(
        "  DUP    : sum {} in {:>4} cycles (one firing per cycle)",
        dup.outputs[0], dup.stats.cycles
    );
    println!(
        "  DMP-IV : sum {} in {:>4} cycles (8 DPs firing by availability)",
        dmp.outputs[0], dmp.stats.cycles
    );
    println!(
        "  IUP    : sum {} in {:>4} cycles (fetch-execute loop)",
        iup.outputs[0], iup.stats.cycles
    );

    println!("\n== 8x8 matrix multiply ==");
    let dim = 8usize;
    let ma: Vec<Word> = (0..(dim * dim) as Word).collect();
    let mb: Vec<Word> = (0..(dim * dim) as Word).map(|v| 3 - v % 7).collect();
    let m_uni = run_matmul_uni(&ma, &mb, dim).unwrap();
    let m_arr =
        run_matmul_array(skilltax::machine::array::ArraySubtype::III, &ma, &mb, dim).unwrap();
    assert_eq!(m_uni.outputs, matmul_reference(&ma, &mb, dim));
    assert_eq!(m_arr.outputs, m_uni.outputs);
    println!("  IUP    : {:>6} cycles (triple loop)", m_uni.stats.cycles);
    println!(
        "  IAP-III: {:>6} cycles (one row per lane over shared memory)",
        m_arr.stats.cycles
    );
    match run_matmul_array(skilltax::machine::array::ArraySubtype::I, &ma, &mb, dim) {
        Err(e) => println!("  IAP-I  : refused -- {e}"),
        Ok(_) => unreachable!(),
    }

    println!("\n== one LUT fabric, both paradigms (USP) ==");
    let fabric = LutFabric::new(128, 4, 16);
    let adder = fabric
        .configure(&ripple_adder(&fabric, 4).unwrap())
        .unwrap();
    let mut inputs = vec![false; 8];
    inputs[0] = true; // a = 1
    inputs[4] = true; // b = 1
    inputs.extend([false; 8]);
    let sum = adder.eval(&inputs[..8]).unwrap();
    let value = sum
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &bit)| acc | (usize::from(bit) << i));
    println!("  as a datapath: 1 + 1 = {value} (combinational ripple adder)");
    let mut pc = fabric
        .configure(&program_counter(&fabric, 4).unwrap())
        .unwrap();
    let no_branch = vec![false; 5];
    let mut trace = Vec::new();
    for _ in 0..5 {
        let bits = pc.step(&no_branch).unwrap();
        trace.push(
            bits.iter()
                .enumerate()
                .fold(0, |acc, (i, &b)| acc | (usize::from(b) << i)),
        );
    }
    println!("  as an instruction processor: pc trace {trace:?} (registered FSM)");

    println!("\n== morphing demonstrations (Section III-B) ==");
    for ev in morph::demonstrate().unwrap() {
        println!(
            "  {} as {}: predicted {} / observed {}",
            ev.emulator,
            ev.target,
            if ev.predicted { "CAN" } else { "CANNOT" },
            if ev.observed { "DID" } else { "DID NOT" }
        );
    }
}

//! Stand up the multi-tenant job service behind its HTTP/1.1 front end.
//!
//! Binds the address in `SKILLTAX_SERVICE_ADDR` (default `127.0.0.1:0`,
//! an ephemeral port printed on startup) and serves for
//! `SKILLTAX_SERVE_SECONDS` (default 2 — long enough to demo, short
//! enough that the tier-1 example sweep never blocks; set it higher to
//! poke the service with `curl` from another terminal).
//!
//! Run with: `cargo run --release --example service_http`

use std::sync::Arc;
use std::time::Duration;

use skilltax::service::{serve, HttpConfig, Service, ServiceConfig};

fn main() {
    let seconds: u64 = std::env::var("SKILLTAX_SERVE_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let mut server =
        serve(Arc::clone(&service), HttpConfig::default()).expect("bind HTTP listener");
    let addr = server.local_addr();

    println!("serving on http://{addr} for {seconds}s");
    println!();
    println!("  curl http://{addr}/healthz");
    println!("  curl http://{addr}/metrics");
    println!("  curl -d 'tenant=demo&kind=simulate&cores=4&iters=200' http://{addr}/jobs");
    println!();

    std::thread::sleep(Duration::from_secs(seconds));

    server.shutdown();
    let metrics = service.metrics();
    println!(
        "shutting down: {} submitted, {} admitted, {} rejected",
        metrics.submitted,
        metrics.admitted,
        metrics.rejected()
    );
}

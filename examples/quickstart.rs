//! Quickstart: describe an architecture, classify it, score its
//! flexibility, and predict its area / configuration overhead.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use skilltax::estimate::{estimate_area, estimate_config_bits, CostParams, TechNode};
use skilltax::model::dsl;
use skilltax::report::diagram;
use skilltax::taxonomy::{breakdown_of_spec, classify, compare_names};

fn main() {
    // 1. Describe a machine in the paper's Table III notation:
    //    IPs | DPs | IP-IP | IP-DP | IP-IM | DP-DM | DP-DP
    let my_cgra = dsl::parse_row("MyCGRA", "1 | 16 | none | 1-16 | 1-1 | 16x16 | 16x16")
        .expect("well-formed row");

    println!("{}", diagram(&my_cgra));

    // 2. Classify it into the extended Skillicorn taxonomy.
    let class = classify(&my_cgra).expect("classifiable");
    println!("class: {} (Table I row {})", class.name(), class.serial());
    for line in class.trace() {
        println!("  because: {line}");
    }

    // 3. Score its flexibility (the Table II system).
    let flex = breakdown_of_spec(&my_cgra);
    println!(
        "\nflexibility: {} ({} count points + {} crossbar points + {} variable bonus)",
        flex.total(),
        flex.count_points,
        flex.crossbar_points,
        flex.variable_bonus
    );

    // 4. Predict area (Eq 1) and configuration overhead (Eq 2).
    let params = CostParams::default();
    let area = estimate_area(&my_cgra, &params);
    let cb = estimate_config_bits(&my_cgra, &params);
    println!(
        "\narea (Eq 1):        {:.0} kGE  ({:.2} mm2 at {})",
        area.total() / 1_000.0,
        TechNode::N90.ge_to_mm2(area.total()),
        TechNode::N90
    );
    println!(
        "config bits (Eq 2): {} bits  ({} of them in the interconnect)",
        cb.total(),
        cb.interconnect()
    );

    // 5. Compare against a surveyed architecture by name alone
    //    (Section III-A: names predict similarity).
    let morphosys = skilltax::catalog::by_name("MorphoSys").expect("in the survey");
    let their_class = morphosys.classify().expect("classifiable");
    println!("\n{}", compare_names(class.name(), their_class.name()));
}

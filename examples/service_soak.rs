//! Chaos soak of the multi-tenant job service.
//!
//! Runs the deterministic chaos harness — a seeded cast of well-behaved,
//! flooding, oversized, deadline-violating and fault-storming tenants —
//! against a real bounded-queue service, then pushes a few requests
//! through the hand-rolled HTTP front end on a loopback socket to show
//! the wire protocol end to end.
//!
//! The soak length is controlled by `SKILLTAX_SOAK_SECONDS` (default 1;
//! the round count is derived from it deterministically, so two runs
//! with the same value replay bit-identically).  Exits non-zero if any
//! invariant is violated.
//!
//! Run with: `cargo run --release --example service_soak`

use std::io::{Read, Write};
use std::sync::Arc;

use skilltax::report::{service_table, ServiceTenantRow};
use skilltax::service::{run_chaos, serve, ChaosConfig, HttpConfig, Service, ServiceConfig};

/// Rounds per configured soak second (each round submits a full tenant
/// cast and drains it; a handful of rounds per second is comfortable in
/// release builds).
const ROUNDS_PER_SECOND: usize = 4;

fn soak_rounds() -> usize {
    let seconds: usize = std::env::var("SKILLTAX_SOAK_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    (seconds * ROUNDS_PER_SECOND).max(3)
}

/// One raw HTTP exchange over loopback (what `curl --data` would send).
fn http(addr: std::net::SocketAddr, body: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect loopback");
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or(&response)
        .to_string()
}

fn main() {
    let rounds = soak_rounds();
    println!("=== chaos soak: {rounds} rounds ===\n");
    let report = run_chaos(&ChaosConfig {
        rounds,
        ..ChaosConfig::default()
    });
    println!("{}\n", report.summary());

    // Per-tenant ledger through the report crate.
    let rows: Vec<ServiceTenantRow> = report
        .per_tenant
        .iter()
        .map(|(tenant, &(admitted, finished))| {
            let count = |label: &str| {
                report
                    .per_tenant_outcomes
                    .get(tenant)
                    .and_then(|m| m.get(label))
                    .copied()
                    .unwrap_or(0)
            };
            ServiceTenantRow {
                tenant: tenant.clone(),
                admitted,
                finished,
                completed: count("completed"),
                degraded: count("degraded"),
                cancelled: count("cancelled"),
                failed: count("failed"),
            }
        })
        .collect();
    println!("{}", service_table(&rows).render_ascii());

    // A short transcript over the real HTTP front end.
    println!("=== HTTP transcript (loopback) ===\n");
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = serve(Arc::clone(&service), HttpConfig::default()).expect("bind HTTP");
    let addr = server.local_addr();
    for body in [
        "tenant=demo&kind=classify&name=MorphoSys&row=1 %7C 64 %7C none %7C 1-64 %7C 1-1 %7C 64-1 %7C 64x64",
        "tenant=demo&kind=simulate&cores=4&iters=200&scheduler=sharded:2",
        "tenant=demo&kind=simulate&cores=4&iters=1000000&deadline_cycles=50",
        "tenant=demo&kind=simulate&cores=100000",
    ] {
        println!("POST /jobs  {body}");
        println!("  -> {}\n", http(addr, body));
    }
    drop(server);

    if report.passed() {
        println!("soak passed: every invariant held");
    } else {
        println!("soak FAILED:");
        for violation in &report.violations {
            println!("  - {violation}");
        }
        std::process::exit(1);
    }
}

//! Fleet-scale sweeps: the structure-of-arrays batch executor.
//!
//! Runs the same machine swarm twice — once as N independent sequential
//! simulations, once as one [`UniFleet`] / [`ArrayFleet`] stepping all N
//! instances in lockstep over contiguous per-field lanes — and checks
//! the hard contract from DESIGN.md §14: per-instance `Stats` are
//! bit-identical, so the fleet is purely a layout/throughput choice,
//! never a semantics choice.  Three sweeps:
//!
//! 1. a uni-processor parameter sweep with data-dependent divergence
//!    (each instance spins a different bound, so pc-cohorts regroup),
//! 2. a chunked fleet across worker threads (the fleet×thread analog of
//!    `with_shards`),
//! 3. a seeded Monte-Carlo fault study on an array machine, fleet vs
//!    per-seed `run_resilient`.
//!
//! Run with: `cargo run --release --example fleet_sweep`

use std::time::Instant;

use skilltax::machine::array::ArraySubtype;
use skilltax::machine::cancel::CancelToken;
use skilltax::machine::fleet::{
    chunked_results, run_uni_fleet_chunked, FleetExec, LaneKernels, UniFleet,
};
use skilltax::machine::isa::Instr;
use skilltax::machine::program::{Assembler, Program};
use skilltax::machine::uniprocessor::UniProcessor;
use skilltax::machine::workload::run_fault_monte_carlo_array;
use skilltax::machine::Word;

/// Spin until `r0` reaches the bound preloaded at `mem[0]` — the
/// divergence workload: every instance loops a different number of
/// times, so the fleet's lockstep cohorts split and re-merge.
fn spin_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(2, 0).emit(Instr::Load(1, 2));
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

fn bound(i: usize) -> Word {
    200 + (i * 13 % 97) as Word
}

fn main() {
    let program = spin_program();
    let n = 256;

    // 1. Parameter sweep: fleet vs N sequential uni-processors.
    let start = Instant::now();
    let sequential: Vec<_> = (0..n)
        .map(|i| {
            let mut m = UniProcessor::new(2);
            m.memory_mut().bank_mut(0).write(0, bound(i));
            m.run(&program)
        })
        .collect();
    let sequential_wall = start.elapsed();

    let start = Instant::now();
    let mut fleet = UniFleet::new(n, 2);
    for i in 0..n {
        fleet.write_mem(i, 0, bound(i));
    }
    let fleet_results = fleet.run(&program);
    let fleet_wall = start.elapsed();

    assert_eq!(sequential, fleet_results, "fleet must be bit-identical");
    let cycles: u64 = fleet_results
        .iter()
        .map(|r| r.as_ref().unwrap().cycles)
        .sum();
    println!("uni swarm      n={n}: {cycles} total cycles, identical per-instance stats");
    println!(
        "  sequential {:>10.1?}   fleet {:>10.1?}",
        sequential_wall, fleet_wall
    );

    // 2. The same swarm chunked across worker threads: still identical.
    let chunks = run_uni_fleet_chunked(
        n,
        2,
        1_000_000,
        &CancelToken::new(),
        &program,
        LaneKernels::default(),
        |global, fleet, local| fleet.write_mem(local, 0, bound(global)),
        0, // resolve via SKILLTAX_FLEET_THREADS / SKILLTAX_THREADS
    );
    let workers = chunks.len();
    assert_eq!(chunked_results(chunks), fleet_results);
    println!("chunked fleet  n={n}: {workers} chunk(s), results identical to one big fleet");

    // 3. Monte-Carlo fault study on IAP-III: each seed is one instance;
    //    the fleet injects the same seeded stalls and bit flips in the
    //    same order as per-seed `run_resilient`.
    let seeds: Vec<u64> = (0..64).map(|s| s * 11 + 5).collect();
    let seq = run_fault_monte_carlo_array(
        ArraySubtype::III,
        4,
        &seeds,
        0.2,
        0.05,
        FleetExec::Sequential,
    );
    let flt =
        run_fault_monte_carlo_array(ArraySubtype::III, 4, &seeds, 0.2, 0.05, FleetExec::fleet());
    assert_eq!(seq, flt, "fault study must be bit-identical");
    let completed = flt.iter().filter(|r| r.is_ok()).count();
    let faults: u64 = flt
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|o| o.faults_injected))
        .sum();
    println!(
        "fault study    {} seeds on {}: {completed} completed, {faults} faults injected, \
         fleet == per-seed run_resilient",
        seeds.len(),
        ArraySubtype::III.class_name(),
    );
}

//! Reconfiguration break-even analysis: the paper's flexibility/overhead
//! trade-off as an operational decision.
//!
//! Scenario: a scalar core (IUP) is executing vector additions.  A
//! reconfigurable fabric could be morphed into a 16-lane SIMD array that
//! finishes each batch ~16x faster — but loading the array's
//! configuration (Eq 2 bits through a 32-bit configuration port) costs
//! cycles first.  How many batches until the reconfiguration pays off?
//!
//! ```sh
//! cargo run --example reconfigure
//! ```

use skilltax::estimate::{estimate_config_bits, CostParams};
use skilltax::machine::array::{ArrayMachine, ArraySubtype};
use skilltax::machine::reconfig::{break_even, total_with_reconfig, ConfigPort};
use skilltax::machine::workload::{run_vector_add_array, run_vector_add_uni};
use skilltax::machine::Word;

fn main() {
    let n = 16usize;
    let a: Vec<Word> = (0..n as Word).collect();
    let b: Vec<Word> = (100..100 + n as Word).collect();

    // Measure both options on the executable machines.
    let uni = run_vector_add_uni(&a, &b).expect("IUP runs it");
    let simd = run_vector_add_array(ArraySubtype::II, &a, &b).expect("IAP-II runs it");
    println!(
        "per-batch cycles: IUP = {}, IAP-II = {}",
        uni.stats.cycles, simd.stats.cycles
    );

    // Price the reconfiguration with Eq 2.
    let params = CostParams::default();
    let array = ArrayMachine::new(ArraySubtype::II, n, 4);
    let config_bits = estimate_config_bits(&array.spec(), &params).total();
    for (label, port) in [
        (
            "32-bit config bus",
            ConfigPort {
                bus_bits_per_cycle: 32,
                setup_cycles: 16,
            },
        ),
        (
            "8-bit config bus",
            ConfigPort {
                bus_bits_per_cycle: 8,
                setup_cycles: 16,
            },
        ),
        (
            "serial config (1-bit)",
            ConfigPort {
                bus_bits_per_cycle: 1,
                setup_cycles: 16,
            },
        ),
    ] {
        let load = port.load_cycles(config_bits);
        let be = break_even(load, simd.stats.cycles, uni.stats.cycles).expect("valid");
        println!(
            "\n{label}: {config_bits} bits load in {load} cycles; break-even after {} batches",
            be.executions_to_amortize
                .map(|v| v.to_string())
                .unwrap_or_else(|| "never".into())
        );
        for batches in [1u64, 4, 16, 64] {
            let with = total_with_reconfig(load, simd.stats.cycles, batches);
            let without = uni.stats.cycles * batches;
            println!(
                "  {batches:>3} batches: reconfigure+SIMD = {with:>6} cycles, stay scalar = {without:>6} -> {}",
                if with < without { "reconfigure" } else { "stay" }
            );
        }
    }

    // The same query against the FPGA shows the paper's "enormous
    // overhead": flexibility is not free.
    let fpga = skilltax::model::dsl::parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv")
        .expect("well formed");
    let fpga_bits = estimate_config_bits(&fpga, &params).total();
    let port = ConfigPort::default();
    println!(
        "\nfor comparison, a USP (FPGA) bitstream is {} bits -> {} cycles to load \
         ({}x the CGRA's)",
        fpga_bits,
        port.load_cycles(fpga_bits),
        port.load_cycles(fpga_bits) / port.load_cycles(config_bits).max(1)
    );
}

//! Re-derive the paper's survey: classify all 25 architectures of
//! Table III from their structure alone, compare against the paper's
//! printed classes, and draw the Fig 7 flexibility comparison.
//!
//! ```sh
//! cargo run --example classify_survey
//! ```

use skilltax::catalog::{full_survey, regenerate_table_iii};
use skilltax::report::{ascii_bar_chart, Bar};

fn main() {
    println!("Re-deriving Table III from structural descriptions...\n");
    let mut agree = 0;
    for row in regenerate_table_iii() {
        let status = if row.class == row.paper.0 && row.flexibility == row.paper.1 {
            agree += 1;
            "ok"
        } else if row.erratum.is_some() {
            agree += 1;
            "erratum"
        } else {
            "MISMATCH"
        };
        println!(
            "  {:<12} {:<55} => {:<8} flex {}  [paper: {}/{}] {}",
            row.name, row.structure, row.class, row.flexibility, row.paper.0, row.paper.1, status
        );
        if let Some(note) = row.erratum {
            println!("               note: {note}");
        }
    }
    println!("\n{agree}/25 rows agree with the paper (1 via documented erratum).\n");

    // Fig 7: the flexibility comparison chart.
    let bars: Vec<Bar> = regenerate_table_iii()
        .into_iter()
        .map(|row| Bar {
            label: row.name,
            value: f64::from(row.flexibility),
        })
        .collect();
    println!(
        "{}",
        ascii_bar_chart(
            "Fig 7: Comparison of Published Architectures w.r.t their Relative Flexibility",
            &bars,
            48
        )
    );

    // Section IV prose, straight from the catalog.
    println!("Architecture notes (Section IV):");
    for entry in full_survey().iter().take(3) {
        println!(
            "\n  {} {} ({:?})",
            entry.name(),
            entry.spec.meta.citation,
            entry.spec.meta.year
        );
        println!("    {}", entry.spec.meta.description);
    }
    println!("\n  ... (22 more; see `skilltax::catalog`)");
}

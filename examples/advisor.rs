//! The advisor: from application capabilities to a recommended class —
//! the full designer flow of the paper's conclusion, including the
//! baseline comparison against Flynn's taxonomy.
//!
//! ```sh
//! cargo run --example advisor
//! ```

use skilltax::estimate::{recommend, CostParams};
use skilltax::taxonomy::{
    flynn_partition, minimal_classes, new_classes, skillicorn_table, Capability,
};

fn show(label: &str, requirements: &[Capability]) {
    println!("application: {label}");
    println!("  needs: {requirements:?}");
    let minimal = minimal_classes(requirements);
    let names: Vec<String> = minimal.iter().map(|c| c.name().to_string()).collect();
    println!("  taxonomy-minimal classes: {names:?}");
    let recs = recommend(requirements, &CostParams::default());
    match recs.first() {
        Some(best) => println!(
            "  cost-aware pick: {} (flex {}, {:.0} kGE, {} config bits)",
            best.point.label,
            best.point.flexibility,
            best.point.area_ge / 1_000.0,
            best.point.config_bits
        ),
        None => println!("  no class satisfies this capability set"),
    }
    println!();
}

fn main() {
    println!("== capability-driven class selection ==\n");
    show("firmware control loop", &[Capability::InstructionExecution]);
    show(
        "image filter (same kernel on every pixel)",
        &[
            Capability::DataParallelism,
            Capability::InstructionExecution,
        ],
    );
    show(
        "multi-tenant packet processing (different flows, shared tables)",
        &[
            Capability::MultipleInstructionStreams,
            Capability::SharedMemory,
            Capability::LaneExchange,
        ],
    );
    show(
        "streaming DSP with token-driven firing",
        &[Capability::DataflowExecution, Capability::LaneExchange],
    );
    show(
        "prototyping platform (must morph into anything)",
        &[Capability::RoleExchange],
    );

    println!("== why the extension matters: the baselines ==\n");
    let (buckets, unplaced) = flynn_partition();
    println!("Flynn (1966) collapses the 43 named classes into:");
    for (flynn, members) in buckets {
        println!("  {:<4} <- {:>2} classes", flynn.acronym(), members.len());
    }
    println!("  and cannot place: {unplaced:?} (no notion of variable streams)\n");

    println!(
        "Skillicorn (1988) expresses {} of the 47 extended rows;",
        skillicorn_table().len()
    );
    let new = new_classes();
    println!(
        "the paper's IP-IP and `v` extensions add the other {} — serials {:?}.",
        new.len(),
        new.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
}

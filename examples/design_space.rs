//! Design-space exploration: the paper's designer workflow.
//!
//! "By looking into this taxonomy, a designer can decide which computer
//! class offers the required flexibility with minimum configuration
//! overhead" — this example runs that query: sweep all 43 named classes
//! under three cost-parameter presets, extract the Pareto front, answer
//! flexibility-requirement queries, and scale the winner across
//! technology nodes.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use skilltax::estimate::{
    cheapest_with_flexibility, pareto_front, sweep_classes, CostParams, TechNode,
};

fn main() {
    for (label, params) in [
        ("small embedded (8-bit)", CostParams::small_embedded()),
        ("default CGRA (32-bit)", CostParams::default()),
        ("large HPC (64-bit)", CostParams::large_hpc()),
    ] {
        println!("=== {label} (n = {}) ===", params.n_default);
        let points = sweep_classes(&params);
        let front = pareto_front(&points);
        println!("Pareto-optimal classes (max flexibility, min area, min config bits):");
        let mut front_sorted = front.clone();
        front_sorted.sort_by_key(|p| p.flexibility);
        for p in &front_sorted {
            println!(
                "  {:<9} flex {}  area {:>9.0} GE  config {:>8} bits",
                p.label, p.flexibility, p.area_ge, p.config_bits
            );
        }
        for need in [2u32, 4, 6, 8] {
            match cheapest_with_flexibility(&points, need) {
                Some(pick) => println!(
                    "  need flexibility >= {need}: pick {} ({} config bits)",
                    pick.label, pick.config_bits
                ),
                None => println!("  need flexibility >= {need}: no class reaches it"),
            }
        }
        println!();
    }

    // Technology scaling of one candidate across nodes (Eq 1 + density).
    let params = CostParams::default();
    let points = sweep_classes(&params);
    let candidate = points
        .iter()
        .find(|p| p.label == "IMP-XVI")
        .expect("in the sweep");
    println!("=== {} area across technology nodes ===", candidate.label);
    for node in TechNode::ALL {
        println!(
            "  {:>7}: {:.3} mm2",
            node.to_string(),
            node.ge_to_mm2(candidate.area_ge)
        );
    }
}

//! Cycle-level telemetry on a faulty crossbar-class run.
//!
//! Traces an IMP-X machine (IP–DP and DP–DP crossbars) through a run with
//! a transient link outage and a dead data processor: the DP–DP crossbar
//! retries the blocked send with exponential backoff, and the IP–DP
//! crossbar remaps the dead DP's program onto a healthy one.  Every
//! event is cycle-stamped into a bounded ring buffer whose per-class
//! totals reconcile *exactly* with the run's [`Stats`], so the energy
//! model can price the run from the trace instead of re-deriving
//! activity.
//!
//! Run with: `cargo run --release --example trace_run`

use skilltax::machine::energy::EnergyModel;
use skilltax::machine::fault::{FaultPlan, LinkOutage};
use skilltax::machine::isa::Instr;
use skilltax::machine::multi::{MultiMachine, MultiSubtype};
use skilltax::machine::program::{Assembler, Program};
use skilltax::machine::telemetry::Telemetry;
use skilltax::report::telemetry::{
    counter_table, cycle_breakdown, telemetry_csv, telemetry_json, telemetry_table,
    TelemetrySummary,
};

fn main() {
    // IMP-X: 4-bit code 0b1001 = IP-DP crossbar + DP-DP crossbar.
    let subtype = MultiSubtype::from_code(0b1001).unwrap();
    let mut machine = MultiMachine::new(subtype, 3, 8);

    // Core 0 sends a value to core 1 across the DP-DP fabric; core 2 does
    // local work — and its DP is dead, so the IP-DP crossbar must remap.
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver
        .emit(Instr::Recv(5, 0))
        .movi(6, 0)
        .emit(Instr::Store(6, 5))
        .emit(Instr::Halt);
    let mut local = Assembler::new();
    local
        .movi(0, 1)
        .movi(1, 2)
        .emit(Instr::Add(2, 0, 1))
        .movi(3, 0)
        .emit(Instr::Store(3, 2))
        .emit(Instr::Halt);
    let programs: Vec<Program> = vec![
        sender.assemble().unwrap(),
        receiver.assemble().unwrap(),
        local.assemble().unwrap(),
    ];

    // Transient outage on the 0 -> 1 link, plus a dead DP on core 2.
    let plan = FaultPlan::seeded(11)
        .fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: 6,
        })
        .fail_dp(2);

    let mut telemetry = Telemetry::new();
    let outcome = machine
        .run_resilient_traced(&programs, plan, &mut telemetry)
        .expect("crossbar class degrades instead of failing");

    println!("class: {}  ({subtype:?})", subtype.class_name());
    println!("stats: {}", outcome.stats);
    println!(
        "faults={} retries={} degraded={}",
        outcome.faults_injected, outcome.retries, outcome.degraded
    );

    // The telemetry contract: traced per-class totals reconcile exactly
    // with the statistics counters, for every machine family.
    outcome
        .stats
        .reconcile(&telemetry.trace)
        .expect("trace reconciles with stats");
    println!(
        "trace: {} events recorded, {} dropped from the ring (totals stay exact)",
        telemetry.trace.total(),
        telemetry.trace.dropped()
    );
    println!();

    let summary = TelemetrySummary::new(
        subtype.class_name(),
        outcome.stats.cycles,
        telemetry.trace.class_counts(),
        telemetry.metrics.counter_list(),
        telemetry.metrics.histogram_list(),
    )
    .with_dropped(telemetry.trace.dropped());

    println!("{}", cycle_breakdown(&summary, 40));
    println!("{}", telemetry_table(&summary).render_ascii());
    println!("{}", counter_table(&summary).render_ascii());
    println!("CSV:\n{}", telemetry_csv(&summary));
    println!("JSON:\n{}", telemetry_json(&summary).emit());
    println!();

    // Price the run from the trace and from the stats: identical.
    let model = EnergyModel::default();
    let from_stats = model.estimate(&outcome.stats, false, true);
    let from_trace = model.estimate_from_trace(&telemetry.trace, outcome.stats.cycles, false, true);
    assert_eq!(from_stats, from_trace);
    println!(
        "energy: {:.1} pJ total ({:.1} pJ/instr), trace-priced == stats-priced",
        from_trace.total_pj(),
        from_trace.per_instruction(&outcome.stats)
    );
}

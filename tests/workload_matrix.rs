//! The capability matrix, end to end: every (machine family, workload)
//! pair either produces the reference result or refuses with the typed
//! error the taxonomy predicts.  This is the repository's single most
//! condensed statement of the paper's thesis — flexibility differences
//! between classes are *observable behaviours*.

use skilltax::machine::array::ArraySubtype;
use skilltax::machine::dataflow::DataflowSubtype;
use skilltax::machine::multi::MultiSubtype;
use skilltax::machine::workload::*;
use skilltax::machine::MachineError;
use skilltax::machine::Word;

fn a() -> Vec<Word> {
    (0..8).collect()
}

fn b() -> Vec<Word> {
    (50..58).collect()
}

fn slices() -> Vec<Vec<Word>> {
    (0..4)
        .map(|c| ((c + 1)..(c + 5)).map(|v| v as Word).collect())
        .collect()
}

#[test]
fn vector_add_matrix() {
    let reference = vector_add_reference(&a(), &b());
    // Runs everywhere: IUP, every IAP, every IMP (SIMD emulation).
    assert_eq!(run_vector_add_uni(&a(), &b()).unwrap().outputs, reference);
    for subtype in ArraySubtype::ALL {
        assert_eq!(
            run_vector_add_array(subtype, &a(), &b()).unwrap().outputs,
            reference,
            "{subtype:?}"
        );
    }
    for code in 0..16 {
        let subtype = MultiSubtype::from_code(code).unwrap();
        assert_eq!(
            run_vector_add_multi(subtype, &a(), &b()).unwrap().outputs,
            reference,
            "IMP code {code}"
        );
    }
}

#[test]
fn mimd_mix_matrix() {
    let reference = mimd_mix_reference(&slices());
    // Runs on every IMP sub-type...
    for code in 0..16 {
        let subtype = MultiSubtype::from_code(code).unwrap();
        assert_eq!(
            run_mimd_mix_multi(subtype, &slices()).unwrap().outputs,
            reference,
            "IMP code {code}"
        );
    }
    // ...and is refused by every array sub-type with the same typed error.
    for subtype in ArraySubtype::ALL {
        assert!(
            matches!(
                run_mimd_mix_array(subtype, &slices()),
                Err(MachineError::WorkloadUnsupported { .. })
            ),
            "{subtype:?}"
        );
    }
}

#[test]
fn sliding_fir_matrix() {
    let taps: Vec<Word> = vec![1, -1, 2];
    let signal: Vec<Word> = vec![3, 0, 1, -2, 4, 1, 0, 2];
    let reference = fir_reference(&taps, &signal);
    assert_eq!(run_fir_uni(&taps, &signal).unwrap().outputs, reference);
    for subtype in [DataflowSubtype::II, DataflowSubtype::IV] {
        assert_eq!(
            run_fir_dataflow(subtype, 4, &taps, &signal)
                .unwrap()
                .outputs,
            reference,
            "{subtype:?}"
        );
    }
    // The array split: shared-memory sub-types run it, private-bank ones
    // refuse (overlapping windows are unreachable).
    for subtype in [ArraySubtype::III, ArraySubtype::IV] {
        assert_eq!(
            run_fir_array(subtype, &taps, &signal).unwrap().outputs,
            reference,
            "{subtype:?}"
        );
    }
    for subtype in [ArraySubtype::I, ArraySubtype::II] {
        assert!(
            matches!(
                run_fir_array(subtype, &taps, &signal),
                Err(MachineError::WorkloadUnsupported { .. })
            ),
            "{subtype:?}"
        );
    }
}

#[test]
fn reduction_matrix() {
    let data: Vec<Word> = (1..=20).collect();
    let reference = reduce_sum_reference(&data);
    assert_eq!(run_reduce_uni(&data).unwrap().outputs, vec![reference]);
    assert_eq!(
        run_reduce_dataflow(DataflowSubtype::Uni, 1, &data)
            .unwrap()
            .outputs,
        vec![reference]
    );
    for subtype in DataflowSubtype::MULTI {
        // The workload compiler picks the placement each sub-type can
        // support: DMP-II spreads over its DP-DP crossbar, DMP-III
        // serialises on one DP through its shared memory, DMP-IV does
        // both.  DMP-I — no crossbar anywhere — cannot run a reduction
        // tree over distributed inputs at all: the flexibility-1 class,
        // observed as a routing refusal.
        let result = run_reduce_dataflow(subtype, 4, &data);
        match subtype {
            DataflowSubtype::I => assert!(
                matches!(
                    result,
                    Err(MachineError::RouteDenied { .. })
                        | Err(MachineError::BankAccessDenied { .. })
                ),
                "{subtype:?}"
            ),
            _ => assert_eq!(result.unwrap().outputs, vec![reference], "{subtype:?}"),
        }
    }
    // And the parallelism follows the switches: DMP-II (parallel) beats
    // DMP-III (sequential-by-necessity) on the same machine size.
    let par = run_reduce_dataflow(DataflowSubtype::II, 4, &data)
        .unwrap()
        .stats
        .cycles;
    let seq = run_reduce_dataflow(DataflowSubtype::III, 4, &data)
        .unwrap()
        .stats
        .cycles;
    assert!(par < seq, "DMP-II {par} vs DMP-III {seq}");
}

#[test]
fn parallelism_speedups_are_ordered_as_the_taxonomy_suggests() {
    // More parallel classes finish the same work in fewer cycles.
    let n = 32usize;
    let av: Vec<Word> = (0..n as Word).collect();
    let bv: Vec<Word> = (0..n as Word).rev().collect();
    let uni = run_vector_add_uni(&av, &bv).unwrap().stats.cycles;
    let simd = run_vector_add_array(ArraySubtype::I, &av, &bv)
        .unwrap()
        .stats
        .cycles;
    assert!(simd * 8 < uni, "SIMD {simd} vs scalar {uni}");

    let data: Vec<Word> = (1..=64).collect();
    let seq = run_reduce_dataflow(DataflowSubtype::Uni, 1, &data)
        .unwrap()
        .stats
        .cycles;
    let par = run_reduce_dataflow(DataflowSubtype::IV, 16, &data)
        .unwrap()
        .stats
        .cycles;
    assert!(par * 4 < seq, "parallel dataflow {par} vs sequential {seq}");
}

//! End-to-end reproduction checks: every table of the paper, row by row,
//! derived through the full pipeline (catalog -> model -> taxonomy).

use skilltax::catalog::{full_survey, regenerate_table_iii};
use skilltax::taxonomy::{
    classify, flexibility_of_name, flexibility_table, ClassName, Designation, Taxonomy,
};

/// The paper's Table I, transcribed: (serial, row-notation, comment).
fn paper_table_i() -> Vec<(u8, &'static str, &'static str)> {
    vec![
        (1, "0 | 1 | none | none | none | 1-1 | none", "DUP"),
        (2, "0 | n | none | none | none | n-n | none", "DMP-I"),
        (3, "0 | n | none | none | none | n-n | nxn", "DMP-II"),
        (4, "0 | n | none | none | none | nxn | none", "DMP-III"),
        (5, "0 | n | none | none | none | nxn | nxn", "DMP-IV"),
        (6, "1 | 1 | none | 1-1 | 1-1 | 1-1 | none", "IUP"),
        (7, "1 | n | none | 1-n | 1-1 | n-n | none", "IAP-I"),
        (8, "1 | n | none | 1-n | 1-1 | n-n | nxn", "IAP-II"),
        (9, "1 | n | none | 1-n | 1-1 | nxn | none", "IAP-III"),
        (10, "1 | n | none | 1-n | 1-1 | nxn | nxn", "IAP-IV"),
        (11, "n | 1 | none | n-1 | n-n | 1-1 | none", "NI"),
        (12, "n | 1 | none | n-1 | nxn | 1-1 | none", "NI"),
        (13, "n | 1 | nxn | n-1 | n-n | 1-1 | none", "NI"),
        (14, "n | 1 | nxn | n-1 | nxn | 1-1 | none", "NI"),
        (15, "n | n | none | n-n | n-n | n-n | none", "IMP-I"),
        (16, "n | n | none | n-n | n-n | n-n | nxn", "IMP-II"),
        (17, "n | n | none | n-n | n-n | nxn | none", "IMP-III"),
        (18, "n | n | none | n-n | n-n | nxn | nxn", "IMP-IV"),
        (19, "n | n | none | n-n | nxn | n-n | none", "IMP-V"),
        (20, "n | n | none | n-n | nxn | n-n | nxn", "IMP-VI"),
        (21, "n | n | none | n-n | nxn | nxn | none", "IMP-VII"),
        (22, "n | n | none | n-n | nxn | nxn | nxn", "IMP-VIII"),
        (23, "n | n | none | nxn | n-n | n-n | none", "IMP-IX"),
        (24, "n | n | none | nxn | n-n | n-n | nxn", "IMP-X"),
        (25, "n | n | none | nxn | n-n | nxn | none", "IMP-XI"),
        (26, "n | n | none | nxn | n-n | nxn | nxn", "IMP-XII"),
        (27, "n | n | none | nxn | nxn | n-n | none", "IMP-XIII"),
        (28, "n | n | none | nxn | nxn | n-n | nxn", "IMP-XIV"),
        (29, "n | n | none | nxn | nxn | nxn | none", "IMP-XV"),
        (30, "n | n | none | nxn | nxn | nxn | nxn", "IMP-XVI"),
        (31, "n | n | nxn | n-n | n-n | n-n | none", "ISP-I"),
        (32, "n | n | nxn | n-n | n-n | n-n | nxn", "ISP-II"),
        (33, "n | n | nxn | n-n | n-n | nxn | none", "ISP-III"),
        (34, "n | n | nxn | n-n | n-n | nxn | nxn", "ISP-IV"),
        (35, "n | n | nxn | n-n | nxn | n-n | none", "ISP-V"),
        (36, "n | n | nxn | n-n | nxn | n-n | nxn", "ISP-VI"),
        (37, "n | n | nxn | n-n | nxn | nxn | none", "ISP-VII"),
        (38, "n | n | nxn | n-n | nxn | nxn | nxn", "ISP-VIII"),
        (39, "n | n | nxn | nxn | n-n | n-n | none", "ISP-IX"),
        (40, "n | n | nxn | nxn | n-n | n-n | nxn", "ISP-X"),
        (41, "n | n | nxn | nxn | n-n | nxn | none", "ISP-XI"),
        (42, "n | n | nxn | nxn | n-n | nxn | nxn", "ISP-XII"),
        (43, "n | n | nxn | nxn | nxn | n-n | none", "ISP-XIII"),
        (44, "n | n | nxn | nxn | nxn | n-n | nxn", "ISP-XIV"),
        (45, "n | n | nxn | nxn | nxn | nxn | none", "ISP-XV"),
        (46, "n | n | nxn | nxn | nxn | nxn | nxn", "ISP-XVI"),
        (47, "v | v | vxv | vxv | vxv | vxv | vxv", "USP"),
    ]
}

#[test]
fn table_i_matches_the_paper_row_by_row() {
    let taxonomy = Taxonomy::extended();
    let expected = paper_table_i();
    assert_eq!(taxonomy.classes().len(), expected.len());
    for (serial, row, comment) in expected {
        let class = taxonomy.by_serial(serial).unwrap();
        assert_eq!(class.row_notation(), row, "row {serial}");
        assert_eq!(class.designation.to_string(), comment, "comment {serial}");
    }
}

#[test]
fn table_i_rows_classify_back_to_themselves_via_the_dsl() {
    // The full loop: paper notation -> DSL parse -> classifier -> name.
    for (serial, row, comment) in paper_table_i() {
        let spec = skilltax::model::dsl::parse_row(&format!("row-{serial}"), row).unwrap();
        match classify(&spec) {
            Ok(c) => {
                assert_eq!(c.serial(), serial, "row {serial}");
                assert_eq!(c.name().to_string(), comment, "row {serial}");
            }
            Err(skilltax::taxonomy::TaxonomyError::NotImplementable { serial: got, .. }) => {
                assert_eq!(comment, "NI", "row {serial}");
                assert_eq!(got, serial, "row {serial}");
            }
            Err(other) => panic!("row {serial}: unexpected error {other}"),
        }
    }
}

#[test]
fn table_ii_matches_the_paper_exactly() {
    // (class, flexibility) for all 43 named classes, from the paper.
    let imp = [2u32, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6];
    let mut expected: Vec<(String, u32)> = vec![("DUP".into(), 0), ("IUP".into(), 0)];
    for (i, f) in [(1u32, 1u32), (2, 2), (3, 2), (4, 3)] {
        expected.push((format!("DMP-{}", roman(i)), f));
        expected.push((format!("IAP-{}", roman(i)), f));
    }
    for (i, &f) in imp.iter().enumerate() {
        expected.push((format!("IMP-{}", roman(i as u32 + 1)), f));
        expected.push((format!("ISP-{}", roman(i as u32 + 1)), f + 1));
    }
    expected.push(("USP".into(), 8));

    assert_eq!(flexibility_table().len(), expected.len());
    for (name, flex) in expected {
        let parsed: ClassName = name.parse().unwrap();
        assert_eq!(flexibility_of_name(&parsed), Some(flex), "{name}");
    }
}

fn roman(v: u32) -> &'static str {
    [
        "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII", "XIII", "XIV",
        "XV", "XVI",
    ][v as usize - 1]
}

#[test]
fn table_iii_reproduces_name_and_flexibility_for_all_25_rows() {
    let rows = regenerate_table_iii();
    assert_eq!(rows.len(), 25);
    for row in rows {
        assert_eq!(row.class, row.paper.0, "{}: class", row.name);
        if row.erratum.is_none() {
            assert_eq!(row.flexibility, row.paper.1, "{}: flexibility", row.name);
        } else {
            // PACT XPP: Table III prints 2, the scoring system (Table II)
            // gives 3.  We follow the scoring system and document it.
            assert_eq!(row.name, "PACT XPP");
            assert_eq!(row.flexibility, 3);
            assert_eq!(row.paper.1, 2);
        }
    }
}

#[test]
fn fig7_ranking_matches_the_papers_conclusion() {
    // "The FPGA has the highest flexibility. Matrix and DRRA come second
    // and third respectively."  (DRRA ties RaPiD numerically; the paper
    // ranks its own architecture among the top three.)
    let rows = regenerate_table_iii();
    let flex = |n: &str| rows.iter().find(|r| r.name == n).unwrap().flexibility;
    let max = rows.iter().map(|r| r.flexibility).max().unwrap();
    assert_eq!(flex("FPGA"), max);
    let second = rows
        .iter()
        .filter(|r| r.name != "FPGA")
        .map(|r| r.flexibility)
        .max()
        .unwrap();
    assert_eq!(flex("Matrix"), second);
    assert!(
        flex("DRRA")
            >= rows
                .iter()
                .filter(|r| !["FPGA", "Matrix", "DRRA", "RaPiD"].contains(&r.name.as_str()))
                .map(|r| r.flexibility)
                .max()
                .unwrap()
    );
}

#[test]
fn every_survey_entry_audits_cleanly_or_with_known_notes() {
    // The audit may note benign facts (e.g. IMP-I machines being disjoint
    // uniprocessors) but must never flag extent/count inconsistencies
    // except ADRES's deliberate 8-1 register-file port row.
    for entry in full_survey() {
        for issue in entry.spec.audit() {
            let benign =
                issue.message.contains("independent processors") || entry.name() == "ADRES";
            assert!(benign, "{}: {}", entry.name(), issue.message);
        }
    }
}

#[test]
fn ni_rows_have_no_names_and_named_rows_have_no_ni() {
    for class in Taxonomy::extended().classes() {
        match class.designation {
            Designation::Named(_) => assert!(class.is_implementable()),
            Designation::NotImplementable => {
                assert!((11..=14).contains(&class.serial), "{}", class.serial)
            }
        }
    }
}

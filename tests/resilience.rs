//! Umbrella resilience tests: the acceptance criteria of the fault-injection
//! subsystem, asserted across every machine family.
//!
//! The paper's switch argument, run under fire: with one DP failed, a
//! crossbar-switched IMP configuration completes degraded while a
//! direct-switched array configuration returns a typed
//! `DegradationImpossible`; permanent outages exhaust the bounded retry
//! budget; and no run loop can hang — every family converts an adversarial
//! fault plan into `WatchdogTimeout` carrying partial statistics.

use skilltax::machine::array::{ArrayMachine, ArraySubtype};
use skilltax::machine::dataflow::graph::library::{independent_chains, tree_sum};
use skilltax::machine::dataflow::{DataflowMachine, DataflowSubtype, Placement};
use skilltax::machine::fault::{FaultPlan, LinkOutage};
use skilltax::machine::interconnect::FabricTopology;
use skilltax::machine::multi::{MultiMachine, MultiSubtype};
use skilltax::machine::noc::MeshNoc;
use skilltax::machine::spatial::SpatialMachine;
use skilltax::machine::uniprocessor::UniProcessor;
use skilltax::machine::universal::lut::{tables, LutCell};
use skilltax::machine::universal::{Bitstream, CellConfig, LutFabric, Source};
use skilltax::machine::vliw::{Bundle, VliwMachine, VliwProgram};
use skilltax::machine::{Assembler, Instr, MachineError, Program};

/// `mem[0] = value` in whichever bank the executing DP owns.
fn store_const(value: i64) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0)
        .movi(1, value)
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// The headline acceptance test: the same single-DP failure splits the
/// classes along their deciding switch.
#[test]
fn one_failed_dp_splits_crossbar_from_direct_classes() {
    // IMP-IX (IP-DP crossbar, code 0b1000): core 1's program is rebound to
    // a healthy DP and replayed — the run completes, degraded.
    let crossbar = MultiSubtype::from_code(0b1000).unwrap();
    let mut m = MultiMachine::new(crossbar, 3, 8);
    let programs: Vec<Program> = (0..3).map(|i| store_const(10 + i)).collect();
    let outcome = m
        .run_resilient(&programs, FaultPlan::seeded(9).fail_dp(1))
        .unwrap();
    assert!(
        outcome.degraded,
        "the crossbar class completes, but degraded"
    );
    assert!(outcome.faults_injected >= 1);
    // Core 1's store replayed on the substitute DP still executed.
    assert!(outcome.stats.mem_writes >= 3, "all three stores happened");

    // IAP-I (private banks, DP-DM direct): the dead lane's bank is
    // unreachable from any substitute DP — a typed refusal.
    let mut a = ArrayMachine::new(ArraySubtype::I, 4, 8);
    match a.run_resilient(&store_const(7), FaultPlan::seeded(9).fail_dp(1)) {
        Err(MachineError::DegradationImpossible { machine, reason }) => {
            assert!(machine.contains("IAP-I"), "machine: {machine}");
            assert!(reason.contains("direct switch"), "reason: {reason}");
        }
        other => panic!("expected DegradationImpossible, got {other:?}"),
    }
}

#[test]
fn dataflow_classes_split_the_same_way() {
    // DMP-IV: remapping the failed DP's island onto a healthy DP stays
    // routable through the crossbars.
    let m = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    let g = tree_sum(8);
    let inputs: Vec<i64> = (1..=8).collect();
    let (run, outcome) = m
        .run_resilient(
            &g,
            &inputs,
            &Placement::RoundRobin,
            FaultPlan::seeded(2).fail_dp(1),
        )
        .unwrap();
    assert_eq!(run.outputs, g.eval_reference(&inputs).unwrap());
    assert!(outcome.degraded);

    // DMP-I: the direct DP-DM link cannot reach the moved island's bank.
    let m = DataflowMachine::new(DataflowSubtype::I, 4).unwrap();
    let g = independent_chains(4);
    match m.run_resilient(
        &g,
        &[3, 1, 4, 1],
        &Placement::Islands,
        FaultPlan::seeded(2).fail_dp(2),
    ) {
        Err(MachineError::DegradationImpossible { machine, .. }) => {
            assert_eq!(machine, "DMP-I");
        }
        other => panic!("expected DegradationImpossible, got {other:?}"),
    }
}

#[test]
fn permanent_outage_exhausts_the_bounded_retry_budget() {
    let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
    let pair = vec![sender.assemble().unwrap(), receiver.assemble().unwrap()];
    let plan = FaultPlan::seeded(0)
        .fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: u64::MAX,
        })
        .with_max_retries(2);
    match m.run_resilient(&pair, plan) {
        Err(MachineError::RetryExhausted {
            from: 0,
            to: 1,
            attempts,
        }) => {
            assert_eq!(attempts, 3, "max_retries + the final attempt");
        }
        other => panic!("expected RetryExhausted, got {other:?}"),
    }
}

#[test]
fn transient_outage_is_survived_by_backoff() {
    let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
    let pair = vec![sender.assemble().unwrap(), receiver.assemble().unwrap()];
    let plan = FaultPlan::seeded(0).fail_link(LinkOutage {
        from: 0,
        to: 1,
        from_cycle: 0,
        until_cycle: 4,
    });
    let outcome = m.run_resilient(&pair, plan).unwrap();
    assert_eq!(m.core_reg(1, 5), 42);
    assert!(outcome.retries >= 1);
    assert!(
        !outcome.degraded,
        "a survived outage is not degraded completion"
    );
}

// --- no run loop can hang: one watchdog assertion per family ---

#[test]
fn uniprocessor_watchdog_converts_livelock() {
    let mut m = UniProcessor::new(8).with_cycle_limit(200);
    let prog = Program::new(vec![Instr::Jmp(0)]).unwrap();
    match m.run(&prog) {
        Err(MachineError::WatchdogTimeout {
            limit: 200,
            partial,
        }) => {
            assert_eq!(partial.cycles, 200);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn array_watchdog_converts_stall_storm() {
    let mut a = ArrayMachine::new(ArraySubtype::III, 4, 8).with_cycle_limit(100);
    match a.run_resilient(&store_const(1), FaultPlan::seeded(5).stall_dps(1.0)) {
        Err(MachineError::WatchdogTimeout {
            limit: 100,
            partial,
        }) => {
            assert_eq!(partial.cycles, 100);
            assert!(partial.stalls > 0, "the storm is visible in partial stats");
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn multi_watchdog_converts_stall_storm() {
    let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4).with_cycle_limit(100);
    let programs = vec![store_const(1), store_const(2)];
    match m.run_resilient(&programs, FaultPlan::seeded(5).stall_dps(1.0)) {
        Err(MachineError::WatchdogTimeout {
            limit: 100,
            partial,
        }) => {
            assert_eq!(partial.cycles, 100);
            assert!(partial.stalls > 0);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn vliw_watchdog_converts_infinite_loop() {
    let mut m = VliwMachine::new(ArraySubtype::I, 2, 4).with_cycle_limit(150);
    let spin = Bundle {
        slots: vec![None, None],
        control: Some(Instr::Jmp(0)),
    };
    let prog = VliwProgram::new(vec![spin], 2).unwrap();
    match m.run(&prog) {
        Err(MachineError::WatchdogTimeout {
            limit: 150,
            partial,
        }) => {
            assert_eq!(partial.cycles, 150);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn spatial_watchdog_converts_infinite_loop() {
    let mut m = SpatialMachine::new(
        MultiSubtype::from_index(1).unwrap(),
        FabricTopology::Crossbar,
        2,
        4,
    )
    .unwrap()
    .with_cycle_limit(120);
    let spin = Program::new(vec![Instr::Jmp(0)]).unwrap();
    let halt = Program::new(vec![Instr::Halt]).unwrap();
    match m.run(&[spin, halt]) {
        Err(MachineError::WatchdogTimeout {
            limit: 120,
            partial,
        }) => {
            assert_eq!(partial.cycles, 120);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn dataflow_watchdog_converts_stall_storm() {
    let m = DataflowMachine::new(DataflowSubtype::IV, 2)
        .unwrap()
        .with_cycle_limit(64);
    let g = tree_sum(4);
    match m.run_resilient(
        &g,
        &[1, 2, 3, 4],
        &Placement::RoundRobin,
        FaultPlan::seeded(8).stall_dps(1.0),
    ) {
        Err(MachineError::WatchdogTimeout { limit: 64, partial }) => {
            assert_eq!(partial.cycles, 64);
            assert!(partial.stalls > 0);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

#[test]
fn noc_drain_budget_is_a_typed_error() {
    // A permanently blocked first hop holds the packet in place; with the
    // TTL out of reach the drain budget turns the would-be spin into a
    // typed error instead of a hang.
    let outage = LinkOutage {
        from: 0,
        to: 1,
        from_cycle: 0,
        until_cycle: u64::MAX,
    };
    let mut noc = MeshNoc::new(2, 2)
        .unwrap()
        .with_faults(FaultPlan::seeded(3).fail_link(outage))
        .with_packet_ttl(10_000);
    noc.inject(0, 3, 77).unwrap();
    assert!(matches!(
        noc.drain(16),
        Err(MachineError::CycleLimitExceeded { limit: 16 })
    ));
}

#[test]
fn fabric_run_until_watchdog_on_stuck_predicate() {
    // A registered XOR cell with its toggle input held low never fires the
    // predicate.
    let fabric = LutFabric::new(4, 2, 1);
    let bs = Bitstream {
        cells: vec![CellConfig {
            lut: LutCell::new(2, tables::XOR2.to_vec()).unwrap(),
            inputs: vec![Source::Cell(0), Source::Primary(0)],
            registered: true,
        }],
        outputs: vec![Source::Cell(0)],
    };
    let mut f = fabric.configure(&bs).unwrap();
    match f.run_until(&[false], 48, |o| o[0]) {
        Err(MachineError::WatchdogTimeout { limit: 48, partial }) => {
            assert_eq!(partial.cycles, 48);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

//! Cross-crate pipeline tests: model -> taxonomy -> estimate -> report,
//! and machine <-> taxonomy cross-validation.

use skilltax::estimate::{estimate_area, estimate_config_bits, CostParams};
use skilltax::machine::array::{ArrayMachine, ArraySubtype};
use skilltax::machine::dataflow::{DataflowMachine, DataflowSubtype};
use skilltax::machine::interconnect::FabricTopology;
use skilltax::machine::multi::{MultiMachine, MultiSubtype};
use skilltax::machine::spatial::SpatialMachine;
use skilltax::machine::universal::{LutFabric, UniversalMachine};
use skilltax::model::dsl;
use skilltax::report::{diagram, Table};
use skilltax::taxonomy::{classify, flexibility_of_spec};

#[test]
fn dsl_to_report_pipeline() {
    // Parse -> classify -> estimate -> render, end to end.
    let spec = dsl::parse_row("Pipeline", "1 | 8 | none | 1-8 | 1-1 | 8x8 | 8x8").unwrap();
    let class = classify(&spec).unwrap();
    assert_eq!(class.name().to_string(), "IAP-IV");
    let params = CostParams::default();
    let area = estimate_area(&spec, &params);
    let cb = estimate_config_bits(&spec, &params);
    let mut table = Table::new(vec!["name", "class", "flex", "area", "cb"]);
    table.push_row(vec![
        spec.name.clone(),
        class.name().to_string(),
        flexibility_of_spec(&spec).to_string(),
        format!("{:.0}", area.total()),
        cb.total().to_string(),
    ]);
    let rendered = table.render_ascii();
    assert!(rendered.contains("IAP-IV"));
    assert!(diagram(&spec).contains("DP-DP: 8x8 (crossbar)"));
}

#[test]
fn block_dsl_round_trips_through_classification() {
    let text = r#"
        arch "RoundTrip" {
          granularity: IP/DP
          ips: n
          dps: n
          ip-ip: nxn
          ip-dp: n-n
          ip-im: n-n
          dp-dm: nxn
          dp-dp: nxn
        }
    "#;
    let specs = dsl::parse_blocks(text).unwrap();
    assert_eq!(specs.len(), 1);
    let class = classify(&specs[0]).unwrap();
    assert_eq!(class.name().to_string(), "ISP-IV");
    // Print and re-parse: same classification.
    let printed = dsl::print_block(&specs[0]);
    let reparsed = dsl::parse_blocks(&printed).unwrap();
    assert_eq!(classify(&reparsed[0]).unwrap().name(), class.name());
}

#[test]
fn every_executable_machine_family_classifies_to_its_own_class() {
    // Array machines: IAP-I..IV.
    for subtype in ArraySubtype::ALL {
        let m = ArrayMachine::new(subtype, 8, 8);
        assert_eq!(
            classify(&m.spec()).unwrap().name().to_string(),
            subtype.class_name()
        );
    }
    // Multi machines: IMP-I..XVI.
    for code in 0..16 {
        let subtype = MultiSubtype::from_code(code).unwrap();
        let m = MultiMachine::new(subtype, 4, 8);
        assert_eq!(
            classify(&m.spec()).unwrap().name().to_string(),
            subtype.class_name()
        );
    }
    // Spatial machines: ISP-I..XVI.
    for code in [0u8, 5, 10, 15] {
        let subtype = MultiSubtype::from_code(code).unwrap();
        let m = SpatialMachine::new(subtype, FabricTopology::Crossbar, 4, 8).unwrap();
        assert_eq!(
            classify(&m.spec()).unwrap().name().to_string(),
            m.class_name()
        );
    }
    // Dataflow machines: DUP, DMP-I..IV.
    let dup = DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap();
    assert_eq!(classify(&dup.spec()).unwrap().name().to_string(), "DUP");
    for subtype in DataflowSubtype::MULTI {
        let m = DataflowMachine::new(subtype, 4).unwrap();
        assert_eq!(
            classify(&m.spec()).unwrap().name().to_string(),
            subtype.class_name()
        );
    }
    // Universal machine: USP.
    let usp = UniversalMachine::new(LutFabric::new(64, 4, 8));
    assert_eq!(classify(&usp.spec()).unwrap().name().to_string(), "USP");
}

#[test]
fn machine_flexibility_scores_match_their_class_scores() {
    use skilltax::taxonomy::flexibility_of_name;
    for subtype in ArraySubtype::ALL {
        let m = ArrayMachine::new(subtype, 8, 8);
        let name = classify(&m.spec()).unwrap().name();
        assert_eq!(
            flexibility_of_spec(&m.spec()),
            flexibility_of_name(&name).unwrap(),
            "{name}"
        );
    }
    for code in 0..16 {
        let m = MultiMachine::new(MultiSubtype::from_code(code).unwrap(), 4, 8);
        let name = classify(&m.spec()).unwrap().name();
        assert_eq!(
            flexibility_of_spec(&m.spec()),
            flexibility_of_name(&name).unwrap(),
            "{name}"
        );
    }
}

#[test]
fn estimates_rank_machine_families_consistently_with_flexibility() {
    // Within the IMP family at fixed n, Eq 2 (extended) grows with the
    // flexibility score — cost follows capability.
    let params = CostParams::default();
    let mut last_by_flex: std::collections::BTreeMap<u32, u64> = Default::default();
    for code in 0..16 {
        let m = MultiMachine::new(MultiSubtype::from_code(code).unwrap(), 4, 8);
        let spec = m.spec();
        let flex = flexibility_of_spec(&spec);
        let cb = estimate_config_bits(&spec, &params).total_extended();
        last_by_flex
            .entry(flex)
            .and_modify(|v| *v = (*v).min(cb))
            .or_insert(cb);
    }
    let costs: Vec<u64> = last_by_flex.values().copied().collect();
    for pair in costs.windows(2) {
        assert!(
            pair[0] < pair[1],
            "config bits must rise with flexibility: {costs:?}"
        );
    }
}

#[test]
fn catalog_entries_estimate_within_sane_bounds() {
    // Every surveyed architecture gets a positive, finite area and the
    // FPGA dominates every coarse-grained entry in configuration bits.
    let params = CostParams::default();
    let survey = skilltax::catalog::full_survey();
    let fpga_cb = survey
        .iter()
        .find(|e| e.name() == "FPGA")
        .map(|e| estimate_config_bits(&e.spec, &params).total())
        .unwrap();
    for entry in &survey {
        let area = estimate_area(&entry.spec, &params).total();
        assert!(area.is_finite() && area > 0.0, "{}", entry.name());
        let cb = estimate_config_bits(&entry.spec, &params).total();
        if entry.name() != "FPGA" {
            assert!(fpga_cb > cb, "{}: {} !< {}", entry.name(), cb, fpga_cb);
        }
    }
}

#[test]
fn trends_feed_the_fig1_renderer() {
    use skilltax::report::{ascii_trend_chart, Series};
    use skilltax::trends::{PublicationDatabase, Topic};
    let db = PublicationDatabase::default();
    let series: Vec<Series> = Topic::ALL
        .iter()
        .map(|&t| Series {
            label: t.label().to_owned(),
            points: db
                .series(t)
                .into_iter()
                .map(|(y, c)| (f64::from(y), f64::from(c)))
                .collect(),
        })
        .collect();
    let chart = ascii_trend_chart("Fig 1", &series);
    assert_eq!(chart.lines().count(), 1 + Topic::ALL.len());
}

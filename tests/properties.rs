//! Property-based invariants spanning the workspace (proptest).

use proptest::prelude::*;

use skilltax::estimate::{estimate_area, estimate_config_bits, CostParams};
use skilltax::machine::array::ArraySubtype;
use skilltax::machine::dataflow::{
    DataflowMachine, DataflowSubtype, GraphBuilder, OpKind, Placement,
};
use skilltax::machine::workload::{run_vector_add_array, vector_add_reference};
use skilltax::model::{dsl, ArchSpec, Count, Link, Relation};
use skilltax::taxonomy::{classify, flexibility_of_spec};

/// Build a Table-I-shaped spec from a family selector and a sub-type code.
fn spec_of(family: u8, code: u8, n: u32) -> (ArchSpec, &'static str, u8) {
    let n = n.max(2);
    let x = |bit: bool| if bit { Link::crossbar_between(n, n) } else { Link::direct_between(n, n) };
    let opt = |bit: bool| if bit { Link::crossbar_between(n, n) } else { Link::None };
    match family {
        0 => {
            // DMP (code 0..4)
            let code = code % 4;
            let spec = ArchSpec::builder("p")
                .ips(Count::zero())
                .dps(Count::fixed(n))
                .link(Relation::DpDm, x(code & 0b10 != 0))
                .link(Relation::DpDp, opt(code & 0b01 != 0))
                .build_unchecked();
            (spec, "DMP", 2 + code)
        }
        1 => {
            // IAP (code 0..4)
            let code = code % 4;
            let spec = ArchSpec::builder("p")
                .ips(Count::one())
                .dps(Count::fixed(n))
                .link(Relation::IpDp, Link::direct_between(1, n))
                .link(Relation::IpIm, Link::direct_between(1, 1))
                .link(Relation::DpDm, x(code & 0b10 != 0))
                .link(Relation::DpDp, opt(code & 0b01 != 0))
                .build_unchecked();
            (spec, "IAP", 7 + code)
        }
        2 => {
            // IMP (code 0..16)
            let code = code % 16;
            let spec = ArchSpec::builder("p")
                .ips(Count::fixed(n))
                .dps(Count::fixed(n))
                .link(Relation::IpDp, x(code & 0b1000 != 0))
                .link(Relation::IpIm, x(code & 0b0100 != 0))
                .link(Relation::DpDm, x(code & 0b0010 != 0))
                .link(Relation::DpDp, opt(code & 0b0001 != 0))
                .build_unchecked();
            (spec, "IMP", 15 + code)
        }
        _ => {
            // ISP (code 0..16)
            let code = code % 16;
            let spec = ArchSpec::builder("p")
                .ips(Count::fixed(n))
                .dps(Count::fixed(n))
                .link(Relation::IpIp, Link::crossbar_between(n, n))
                .link(Relation::IpDp, x(code & 0b1000 != 0))
                .link(Relation::IpIm, x(code & 0b0100 != 0))
                .link(Relation::DpDm, x(code & 0b0010 != 0))
                .link(Relation::DpDp, opt(code & 0b0001 != 0))
                .build_unchecked();
            (spec, "ISP", 31 + code)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn classification_matches_construction(family in 0u8..4, code in 0u8..16, n in 2u32..64) {
        let (spec, stem, serial) = spec_of(family, code, n);
        let c = classify(&spec).unwrap();
        prop_assert_eq!(c.serial(), serial);
        prop_assert!(c.name().to_string().starts_with(stem));
    }

    #[test]
    fn flexibility_counts_plural_blocks_plus_crossbars(family in 0u8..4, code in 0u8..16, n in 2u32..64) {
        let (spec, _, _) = spec_of(family, code, n);
        let plural = u32::from(spec.ips.is_plural()) + u32::from(spec.dps.is_plural());
        let crossbars = spec.crossbar_count();
        prop_assert_eq!(flexibility_of_spec(&spec), plural + crossbars);
    }

    #[test]
    fn upgrading_a_switch_to_crossbar_never_lowers_flexibility(
        family in 0u8..4, code in 0u8..16, n in 2u32..32, which in 0usize..5
    ) {
        let (spec, _, _) = spec_of(family, code, n);
        let relation = Relation::ALL[which];
        let before = flexibility_of_spec(&spec);
        let mut upgraded = spec.clone();
        upgraded.connectivity = upgraded
            .connectivity
            .with(relation, Link::crossbar_between(n.max(2), n.max(2)));
        prop_assert!(flexibility_of_spec(&upgraded) >= before);
    }

    #[test]
    fn row_notation_round_trips_through_the_dsl(family in 0u8..4, code in 0u8..16, n in 2u32..64) {
        let (spec, _, _) = spec_of(family, code, n);
        let row = spec.row_notation();
        let reparsed = dsl::parse_row(&spec.name, &row).unwrap();
        prop_assert_eq!(reparsed.row_notation(), row);
        prop_assert_eq!(reparsed.ips, spec.ips);
        prop_assert_eq!(reparsed.dps, spec.dps);
        prop_assert_eq!(reparsed.connectivity, spec.connectivity);
    }

    #[test]
    fn block_format_round_trips(family in 0u8..4, code in 0u8..16, n in 2u32..64) {
        let (spec, _, _) = spec_of(family, code, n);
        let printed = dsl::print_block(&spec);
        let parsed = dsl::parse_blocks(&printed).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].connectivity, &spec.connectivity);
    }

    #[test]
    fn estimates_are_monotone_in_n(family in 0u8..4, code in 0u8..16, n in 2u32..100) {
        let (spec, _, _) = spec_of(family, code, 2);
        // Template with symbolic counts so the params' n applies: rebuild
        // with symbolic n.
        let mut sym = spec.clone();
        if sym.ips.is_plural() { sym.ips = Count::n(); }
        if sym.dps.is_plural() { sym.dps = Count::n(); }
        let small = CostParams::default().with_n(n);
        let big = CostParams::default().with_n(n + 8);
        prop_assert!(estimate_area(&sym, &big).total() >= estimate_area(&sym, &small).total());
        prop_assert!(
            estimate_config_bits(&sym, &big).total() >= estimate_config_bits(&sym, &small).total()
        );
    }

    #[test]
    fn area_never_decreases_when_a_switch_upgrades(
        family in 0u8..4, code in 0u8..16, n in 2u32..32, which in 0usize..5
    ) {
        let (spec, _, _) = spec_of(family, code, n);
        let relation = Relation::ALL[which];
        // Only compare when the relation currently has a direct link with
        // the same extents (upgrade in place).
        if let Link::Connected(sw) = spec.connectivity.link(relation) {
            if !sw.is_crossbar() {
                let params = CostParams::default();
                let before = estimate_area(&spec, &params);
                let mut upgraded = spec.clone();
                upgraded.connectivity = upgraded.connectivity.with(
                    relation,
                    Link::Connected(skilltax::model::Switch::new(
                        skilltax::model::SwitchKind::Crossbar,
                        sw.left,
                        sw.right,
                    )),
                );
                let after = estimate_area(&upgraded, &params);
                prop_assert!(after.total_extended() >= before.total_extended());
                let cb_before = estimate_config_bits(&spec, &params).total_extended();
                let cb_after = estimate_config_bits(&upgraded, &params).total_extended();
                prop_assert!(cb_after >= cb_before);
            }
        }
    }

    #[test]
    fn simd_machines_match_the_reference_on_random_vectors(
        a in prop::collection::vec(-1000i64..1000, 1..12),
        subtype_idx in 0usize..4,
    ) {
        let b: Vec<i64> = a.iter().map(|x| x * 3 - 7).collect();
        let subtype = ArraySubtype::ALL[subtype_idx];
        let run = run_vector_add_array(subtype, &a, &b).unwrap();
        prop_assert_eq!(run.outputs, vector_add_reference(&a, &b));
    }

    #[test]
    fn dataflow_engine_matches_reference_on_random_expression_dags(
        ops in prop::collection::vec((0u8..5, 0usize..64, 0usize..64), 1..24),
        inputs in prop::collection::vec(-100i64..100, 4),
        dps in 2usize..6,
    ) {
        // Build a random DAG over 4 inputs: each op reads two existing
        // nodes (indices reduced mod current length).
        let mut g = GraphBuilder::new();
        let mut nodes = vec![g.input(0), g.input(1), g.input(2), g.input(3)];
        for (kind, ai, bi) in ops {
            let a = nodes[ai % nodes.len()];
            let b = nodes[bi % nodes.len()];
            let op = match kind {
                0 => OpKind::Add,
                1 => OpKind::Sub,
                2 => OpKind::Mul,
                3 => OpKind::Min,
                _ => OpKind::Max,
            };
            nodes.push(g.op(op, a, b));
        }
        let last = *nodes.last().unwrap();
        g.output(0, last);
        let graph = g.build().unwrap();
        let reference = graph.eval_reference(&inputs).unwrap();
        let machine = DataflowMachine::new(DataflowSubtype::IV, dps).unwrap();
        for placement in [Placement::RoundRobin, Placement::Islands] {
            let run = machine.run(&graph, &inputs, &placement).unwrap();
            prop_assert_eq!(&run.outputs, &reference);
        }
    }

    #[test]
    fn window_fabric_routability_is_symmetric_and_bounded(
        hops in 1usize..8, from in 0usize..32, to in 0usize..32
    ) {
        use skilltax::machine::interconnect::FabricTopology;
        let t = FabricTopology::Window { hops };
        let n = 32;
        prop_assert_eq!(t.routable(from, to, n), t.routable(to, from, n));
        if t.routable(from, to, n) {
            prop_assert!(from.abs_diff(to) <= hops);
        }
    }
}

//! Property-style invariants spanning the workspace, run as deterministic
//! seeded sweeps (`sweep_cases`) instead of `proptest` so the workspace
//! builds hermetically.

use skilltax::estimate::{estimate_area, estimate_config_bits, CostParams};
use skilltax::machine::array::ArraySubtype;
use skilltax::machine::dataflow::{
    DataflowMachine, DataflowSubtype, GraphBuilder, OpKind, Placement,
};
use skilltax::machine::workload::{run_vector_add_array, vector_add_reference};
use skilltax::model::rng::{sweep_cases, XorShift64};
use skilltax::model::{dsl, ArchSpec, Count, Link, Relation};
use skilltax::taxonomy::{classify, flexibility_of_spec};

/// Build a Table-I-shaped spec from a family selector and a sub-type code.
fn spec_of(family: u8, code: u8, n: u32) -> (ArchSpec, &'static str, u8) {
    let n = n.max(2);
    let x = |bit: bool| {
        if bit {
            Link::crossbar_between(n, n)
        } else {
            Link::direct_between(n, n)
        }
    };
    let opt = |bit: bool| {
        if bit {
            Link::crossbar_between(n, n)
        } else {
            Link::None
        }
    };
    match family {
        0 => {
            // DMP (code 0..4)
            let code = code % 4;
            let spec = ArchSpec::builder("p")
                .ips(Count::zero())
                .dps(Count::fixed(n))
                .link(Relation::DpDm, x(code & 0b10 != 0))
                .link(Relation::DpDp, opt(code & 0b01 != 0))
                .build_unchecked();
            (spec, "DMP", 2 + code)
        }
        1 => {
            // IAP (code 0..4)
            let code = code % 4;
            let spec = ArchSpec::builder("p")
                .ips(Count::one())
                .dps(Count::fixed(n))
                .link(Relation::IpDp, Link::direct_between(1, n))
                .link(Relation::IpIm, Link::direct_between(1, 1))
                .link(Relation::DpDm, x(code & 0b10 != 0))
                .link(Relation::DpDp, opt(code & 0b01 != 0))
                .build_unchecked();
            (spec, "IAP", 7 + code)
        }
        2 => {
            // IMP (code 0..16)
            let code = code % 16;
            let spec = ArchSpec::builder("p")
                .ips(Count::fixed(n))
                .dps(Count::fixed(n))
                .link(Relation::IpDp, x(code & 0b1000 != 0))
                .link(Relation::IpIm, x(code & 0b0100 != 0))
                .link(Relation::DpDm, x(code & 0b0010 != 0))
                .link(Relation::DpDp, opt(code & 0b0001 != 0))
                .build_unchecked();
            (spec, "IMP", 15 + code)
        }
        _ => {
            // ISP (code 0..16)
            let code = code % 16;
            let spec = ArchSpec::builder("p")
                .ips(Count::fixed(n))
                .dps(Count::fixed(n))
                .link(Relation::IpIp, Link::crossbar_between(n, n))
                .link(Relation::IpDp, x(code & 0b1000 != 0))
                .link(Relation::IpIm, x(code & 0b0100 != 0))
                .link(Relation::DpDm, x(code & 0b0010 != 0))
                .link(Relation::DpDp, opt(code & 0b0001 != 0))
                .build_unchecked();
            (spec, "ISP", 31 + code)
        }
    }
}

/// A random (family, code, n) triple in the ranges the old strategies used.
fn arb_shape(rng: &mut XorShift64, n_hi: u64) -> (u8, u8, u32) {
    (
        rng.below(4) as u8,
        rng.below(16) as u8,
        rng.range_u64(2, n_hi) as u32,
    )
}

#[test]
fn classification_matches_construction() {
    sweep_cases(0xF00, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 64);
        let (spec, stem, serial) = spec_of(family, code, n);
        let c = classify(&spec).unwrap();
        assert_eq!(c.serial(), serial, "case {case}");
        assert!(c.name().to_string().starts_with(stem), "case {case}");
    });
}

#[test]
fn flexibility_counts_plural_blocks_plus_crossbars() {
    sweep_cases(0xF01, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 64);
        let (spec, _, _) = spec_of(family, code, n);
        let plural = u32::from(spec.ips.is_plural()) + u32::from(spec.dps.is_plural());
        let crossbars = spec.crossbar_count();
        assert_eq!(
            flexibility_of_spec(&spec),
            plural + crossbars,
            "case {case}"
        );
    });
}

#[test]
fn upgrading_a_switch_to_crossbar_never_lowers_flexibility() {
    sweep_cases(0xF02, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 32);
        let (spec, _, _) = spec_of(family, code, n);
        let relation = *rng.pick(&Relation::ALL);
        let before = flexibility_of_spec(&spec);
        let mut upgraded = spec.clone();
        upgraded.connectivity = upgraded
            .connectivity
            .with(relation, Link::crossbar_between(n.max(2), n.max(2)));
        assert!(flexibility_of_spec(&upgraded) >= before, "case {case}");
    });
}

#[test]
fn row_notation_round_trips_through_the_dsl() {
    sweep_cases(0xF03, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 64);
        let (spec, _, _) = spec_of(family, code, n);
        let row = spec.row_notation();
        let reparsed = dsl::parse_row(&spec.name, &row).unwrap();
        assert_eq!(reparsed.row_notation(), row, "case {case}");
        assert_eq!(reparsed.ips, spec.ips, "case {case}");
        assert_eq!(reparsed.dps, spec.dps, "case {case}");
        assert_eq!(reparsed.connectivity, spec.connectivity, "case {case}");
    });
}

#[test]
fn block_format_round_trips() {
    sweep_cases(0xF04, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 64);
        let (spec, _, _) = spec_of(family, code, n);
        let printed = dsl::print_block(&spec);
        let parsed = dsl::parse_blocks(&printed).unwrap();
        assert_eq!(parsed.len(), 1, "case {case}");
        assert_eq!(&parsed[0].connectivity, &spec.connectivity, "case {case}");
    });
}

#[test]
fn estimates_are_monotone_in_n() {
    sweep_cases(0xF05, 128, |case, rng| {
        let (family, code, _) = arb_shape(rng, 64);
        let n = rng.range_u64(2, 100) as u32;
        let (spec, _, _) = spec_of(family, code, 2);
        // Template with symbolic counts so the params' n applies: rebuild
        // with symbolic n.
        let mut sym = spec.clone();
        if sym.ips.is_plural() {
            sym.ips = Count::n();
        }
        if sym.dps.is_plural() {
            sym.dps = Count::n();
        }
        let small = CostParams::default().with_n(n);
        let big = CostParams::default().with_n(n + 8);
        assert!(
            estimate_area(&sym, &big).total() >= estimate_area(&sym, &small).total(),
            "case {case}"
        );
        assert!(
            estimate_config_bits(&sym, &big).total() >= estimate_config_bits(&sym, &small).total(),
            "case {case}"
        );
    });
}

#[test]
fn area_never_decreases_when_a_switch_upgrades() {
    sweep_cases(0xF06, 128, |case, rng| {
        let (family, code, n) = arb_shape(rng, 32);
        let (spec, _, _) = spec_of(family, code, n);
        let relation = *rng.pick(&Relation::ALL);
        // Only compare when the relation currently has a direct link with
        // the same extents (upgrade in place).
        if let Link::Connected(sw) = spec.connectivity.link(relation) {
            if !sw.is_crossbar() {
                let params = CostParams::default();
                let before = estimate_area(&spec, &params);
                let mut upgraded = spec.clone();
                upgraded.connectivity = upgraded.connectivity.with(
                    relation,
                    Link::Connected(skilltax::model::Switch::new(
                        skilltax::model::SwitchKind::Crossbar,
                        sw.left,
                        sw.right,
                    )),
                );
                let after = estimate_area(&upgraded, &params);
                assert!(
                    after.total_extended() >= before.total_extended(),
                    "case {case}"
                );
                let cb_before = estimate_config_bits(&spec, &params).total_extended();
                let cb_after = estimate_config_bits(&upgraded, &params).total_extended();
                assert!(cb_after >= cb_before, "case {case}");
            }
        }
    });
}

#[test]
fn simd_machines_match_the_reference_on_random_vectors() {
    sweep_cases(0xF07, 128, |case, rng| {
        let a: Vec<i64> = (0..rng.range_usize(1, 12))
            .map(|_| rng.range_i64(-1000, 1000))
            .collect();
        let b: Vec<i64> = a.iter().map(|x| x * 3 - 7).collect();
        let subtype = *rng.pick(&ArraySubtype::ALL);
        let run = run_vector_add_array(subtype, &a, &b).unwrap();
        assert_eq!(run.outputs, vector_add_reference(&a, &b), "case {case}");
    });
}

#[test]
fn dataflow_engine_matches_reference_on_random_expression_dags() {
    sweep_cases(0xF08, 128, |case, rng| {
        // Build a random DAG over 4 inputs: each op reads two existing
        // nodes (indices reduced mod current length).
        let mut g = GraphBuilder::new();
        let mut nodes = vec![g.input(0), g.input(1), g.input(2), g.input(3)];
        for _ in 0..rng.range_usize(1, 24) {
            let a = nodes[rng.below_usize(nodes.len())];
            let b = nodes[rng.below_usize(nodes.len())];
            let op = match rng.below(5) {
                0 => OpKind::Add,
                1 => OpKind::Sub,
                2 => OpKind::Mul,
                3 => OpKind::Min,
                _ => OpKind::Max,
            };
            nodes.push(g.op(op, a, b));
        }
        let last = *nodes.last().unwrap();
        g.output(0, last);
        let graph = g.build().unwrap();
        let inputs: Vec<i64> = (0..4).map(|_| rng.range_i64(-100, 100)).collect();
        let reference = graph.eval_reference(&inputs).unwrap();
        let dps = rng.range_usize(2, 6);
        let machine = DataflowMachine::new(DataflowSubtype::IV, dps).unwrap();
        for placement in [Placement::RoundRobin, Placement::Islands] {
            let run = machine.run(&graph, &inputs, &placement).unwrap();
            assert_eq!(&run.outputs, &reference, "case {case} ({placement:?})");
        }
    });
}

#[test]
fn window_fabric_routability_is_symmetric_and_bounded() {
    sweep_cases(0xF09, 128, |case, rng| {
        use skilltax::machine::interconnect::FabricTopology;
        let hops = rng.range_usize(1, 8);
        let from = rng.below_usize(32);
        let to = rng.below_usize(32);
        let t = FabricTopology::Window { hops };
        let n = 32;
        assert_eq!(
            t.routable(from, to, n),
            t.routable(to, from, n),
            "case {case}"
        );
        if t.routable(from, to, n) {
            assert!(from.abs_diff(to) <= hops, "case {case}");
        }
    });
}

//! # skilltax-taxonomy
//!
//! The extended Skillicorn taxonomy of Shami & Hemani (IPPS 2012): the
//! 47-class table (Table I), the hierarchical naming scheme (Fig 2), the
//! classification engine, the flexibility scoring system (Table II) and
//! name-based comparison (Section III-A).
//!
//! ```
//! use skilltax_model::dsl::parse_row;
//! use skilltax_taxonomy::{classify, flexibility_of_spec};
//!
//! let drra = parse_row("DRRA", "n | n | nx14 | n-n | n-n | nx14 | nx14").unwrap();
//! let class = classify(&drra).unwrap();
//! assert_eq!(class.name().to_string(), "ISP-IV");
//! assert_eq!(flexibility_of_spec(&drra), 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod class;
pub mod classify;
pub mod compare;
pub mod error;
pub mod flexibility;
pub mod flynn;
pub mod hierarchy;
pub mod name;
pub mod requirements;
pub mod roman;
pub mod skillicorn;

pub use class::{Designation, Taxonomy, TaxonomyClass};
pub use classify::{classify, Classification};
pub use compare::{compare_names, crossbar_relations_of, NameComparison};
pub use error::TaxonomyError;
pub use flexibility::{
    breakdown_of_spec, comparable, flexibility_of_class, flexibility_of_name, flexibility_of_spec,
    flexibility_table, FlexibilityBreakdown, FlexibilityEntry,
};
pub use flynn::{classify_flynn, flynn_partition, FlynnClass};
pub use hierarchy::{hierarchy, HierarchyNode};
pub use name::{ClassName, MachineType, ProcessingType, SubType};
pub use requirements::{minimal_classes, provides, satisfying_classes, Capability};
pub use skillicorn::{new_classes, project, skillicorn_table, SkillicornClass};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::class::{Designation, Taxonomy, TaxonomyClass};
    pub use crate::classify::{classify, Classification};
    pub use crate::flexibility::{breakdown_of_spec, flexibility_of_spec, flexibility_table};
    pub use crate::name::{ClassName, MachineType, ProcessingType, SubType};
}

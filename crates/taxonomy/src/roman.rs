//! Roman-numeral helpers for sub-processing-type indices (I–XVI).
//!
//! The paper indexes sub-types with Roman numerals; only 1–16 ever occur
//! (IMP/ISP have sixteen sub-types), but the converter is exact for 1–3999.

use crate::error::TaxonomyError;

/// Render a positive integer as an upper-case Roman numeral.
///
/// # Panics
/// Panics if `value` is 0 or above 3999 (outside classical Roman range).
pub fn to_roman(value: u16) -> String {
    assert!(
        (1..=3999).contains(&value),
        "Roman numerals are defined for 1..=3999, got {value}"
    );
    const TABLE: [(u16, &str); 13] = [
        (1000, "M"),
        (900, "CM"),
        (500, "D"),
        (400, "CD"),
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut remaining = value;
    let mut out = String::new();
    for (weight, symbol) in TABLE {
        while remaining >= weight {
            out.push_str(symbol);
            remaining -= weight;
        }
    }
    out
}

/// Parse an upper-case Roman numeral.
pub fn from_roman(s: &str) -> Result<u16, TaxonomyError> {
    if s.is_empty() {
        return Err(TaxonomyError::roman_parse(s));
    }
    fn digit(c: char) -> Option<u16> {
        Some(match c {
            'I' => 1,
            'V' => 5,
            'X' => 10,
            'L' => 50,
            'C' => 100,
            'D' => 500,
            'M' => 1000,
            _ => return None,
        })
    }
    let mut total: i32 = 0;
    let chars: Vec<char> = s.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let v = digit(c).ok_or_else(|| TaxonomyError::roman_parse(s))? as i32;
        let next = chars.get(i + 1).and_then(|&c2| digit(c2)).unwrap_or(0) as i32;
        if v < next {
            total -= v;
        } else {
            total += v;
        }
    }
    if total <= 0 || total > 3999 {
        return Err(TaxonomyError::roman_parse(s));
    }
    let value = total as u16;
    // Reject non-canonical spellings ("IIII", "IXI") by round-tripping.
    if to_roman(value) != s {
        return Err(TaxonomyError::roman_parse(s));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sixteen_match_paper_usage() {
        let expected = [
            "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII", "XIII",
            "XIV", "XV", "XVI",
        ];
        for (i, e) in expected.iter().enumerate() {
            assert_eq!(to_roman(i as u16 + 1), *e);
            assert_eq!(from_roman(e).unwrap(), i as u16 + 1);
        }
    }

    #[test]
    fn round_trip_full_range() {
        for v in 1..=3999u16 {
            assert_eq!(from_roman(&to_roman(v)).unwrap(), v);
        }
    }

    #[test]
    fn rejects_noncanonical_and_garbage() {
        for bad in ["", "IIII", "IXI", "VX", "ABC", "iv"] {
            assert!(from_roman(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    #[should_panic]
    fn zero_panics() {
        let _ = to_roman(0);
    }
}

//! The classification engine: map an [`ArchSpec`] to its Table I class.
//!
//! Classification follows the decision procedure of Section II:
//!
//! 1. variable counts (fine-grained, role-exchangeable fabric) ⇒ Universal
//!    Flow ⇒ **USP** (class 47);
//! 2. zero IPs ⇒ Data Flow; one DP ⇒ **DUP**, `n` DPs ⇒ **DMP-(code+1)**;
//! 3. otherwise Instruction Flow:
//!    * 1 IP, 1 DP ⇒ **IUP**;
//!    * 1 IP, `n` DPs ⇒ **IAP-(code+1)**;
//!    * `n` IPs, 1 DP ⇒ **not implementable** (classes 11–14);
//!    * `n` IPs, `n` DPs ⇒ **ISP** if IP–IP connectivity exists, else
//!      **IMP**, sub-type from the 4-bit crossbar code.
//!
//! The *code* packs which relations are crossbars.  Following the paper's
//! own practice in Table III (PADDI-2's direct `48-48` DP–DP maps to IMP-I,
//! whose canonical DP–DP is `none`), a direct switch and an absent switch
//! both contribute a 0 bit: only crossbars score.

use skilltax_model::{ArchSpec, Count, Relation};

use crate::class::{Designation, Taxonomy, TaxonomyClass};
use crate::error::TaxonomyError;
use crate::name::ClassName;

/// The result of classifying an architecture: the matched Table I row plus
/// a human-readable trace of the decisions taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    serial: u8,
    name: ClassName,
    trace: Vec<String>,
}

impl Classification {
    /// Serial number of the matched Table I row.
    pub fn serial(&self) -> u8 {
        self.serial
    }

    /// The class name.
    pub fn name(&self) -> ClassName {
        self.name
    }

    /// The matched taxonomy row.
    pub fn class(&self) -> &'static TaxonomyClass {
        Taxonomy::extended()
            .by_serial(self.serial)
            .expect("classification serials are always valid")
    }

    /// The decision trace (one line per rule applied).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }
}

/// The 2-bit data-side crossbar code (DP–DM, DP–DP), used by DMP and IAP.
fn data_code(spec: &ArchSpec) -> u8 {
    let mut code = 0u8;
    if spec.connectivity.link(Relation::DpDm).is_crossbar() {
        code |= 0b10;
    }
    if spec.connectivity.link(Relation::DpDp).is_crossbar() {
        code |= 0b01;
    }
    code
}

/// The 4-bit crossbar code (IP–DP, IP–IM, DP–DM, DP–DP), used by IMP/ISP.
fn full_code(spec: &ArchSpec) -> u8 {
    let mut code = 0u8;
    if spec.connectivity.link(Relation::IpDp).is_crossbar() {
        code |= 0b1000;
    }
    if spec.connectivity.link(Relation::IpIm).is_crossbar() {
        code |= 0b0100;
    }
    if spec.connectivity.link(Relation::DpDm).is_crossbar() {
        code |= 0b0010;
    }
    if spec.connectivity.link(Relation::DpDp).is_crossbar() {
        code |= 0b0001;
    }
    code
}

/// Classify an architecture description into its extended-taxonomy class.
///
/// Returns [`TaxonomyError::NotImplementable`] for the class 11–14 shapes
/// and [`TaxonomyError::Unclassifiable`] for descriptions outside the model
/// (e.g. no data processors at all).
pub fn classify(spec: &ArchSpec) -> Result<Classification, TaxonomyError> {
    let mut trace = Vec::new();
    let taxonomy = Taxonomy::extended();

    let done = |serial: u8, mut trace: Vec<String>| -> Result<Classification, TaxonomyError> {
        let class = taxonomy.by_serial(serial)?;
        match class.designation {
            Designation::Named(name) => {
                trace.push(format!("matched Table I class {serial} => {name}"));
                Ok(Classification {
                    serial,
                    name,
                    trace,
                })
            }
            Designation::NotImplementable => Err(TaxonomyError::NotImplementable {
                serial,
                reason: "multiple instruction processors driving a single data processor \
                         cannot exist in a real system (Table I rows 11-14)"
                    .to_owned(),
            }),
        }
    };

    // 1. Universal flow?
    if spec.is_universal() {
        trace.push(format!(
            "IP count {} / DP count {}: variable under reconfiguration => Universal Flow",
            spec.ips, spec.dps
        ));
        return done(47, trace);
    }

    match (spec.ips, spec.dps) {
        (_, Count::Zero) => Err(TaxonomyError::unclassifiable(
            "no data processors: nothing in the machine processes data",
        )),
        // 2. Data flow.
        (Count::Zero, Count::One) => {
            trace.push("0 IPs => Data Flow; 1 DP => Uni Processor".to_owned());
            done(1, trace)
        }
        (Count::Zero, Count::Many(_)) => {
            let code = data_code(spec);
            trace.push("0 IPs => Data Flow; n DPs => Multi Processor".to_owned());
            trace.push(format!(
                "crossbar code (DP-DM, DP-DP) = {:02b} => sub-type {}",
                code,
                code + 1
            ));
            done(2 + code, trace)
        }
        // 3. Instruction flow.
        (Count::One, Count::One) => {
            trace.push("1 IP, 1 DP => Instruction Flow Uni Processor".to_owned());
            done(6, trace)
        }
        (Count::One, Count::Many(_)) => {
            let code = data_code(spec);
            trace.push("1 IP, n DPs => Instruction Flow Array Processor".to_owned());
            trace.push(format!(
                "crossbar code (DP-DM, DP-DP) = {:02b} => sub-type {}",
                code,
                code + 1
            ));
            done(7 + code, trace)
        }
        (Count::Many(_), Count::One) => {
            let ip_ip = spec.connectivity.link(Relation::IpIp).is_connected();
            let ip_im_x = spec.connectivity.link(Relation::IpIm).is_crossbar();
            let serial = 11 + (u8::from(ip_ip) << 1) + u8::from(ip_im_x);
            trace.push("n IPs, 1 DP => not implementable".to_owned());
            done(serial, trace)
        }
        (Count::Many(_), Count::Many(_)) => {
            let spatial = spec.connectivity.link(Relation::IpIp).is_connected();
            let code = full_code(spec);
            trace.push(if spatial {
                "n IPs, n DPs with IP-IP connectivity => Spatial Processor".to_owned()
            } else {
                "n IPs, n DPs, no IP-IP => Multi Processor".to_owned()
            });
            trace.push(format!(
                "crossbar code (IP-DP, IP-IM, DP-DM, DP-DP) = {:04b} => sub-type {}",
                code,
                code + 1
            ));
            done(if spatial { 31 + code } else { 15 + code }, trace)
        }
        // Remaining shapes have an IP but no DP counterpart in the model.
        (Count::Zero, Count::Variable)
        | (Count::One, Count::Variable)
        | (Count::Many(_), Count::Variable)
        | (Count::Variable, _) => unreachable!("variable counts handled by the universal branch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    fn classify_row(row: &str) -> Classification {
        classify(&parse_row("test", row).unwrap()).unwrap()
    }

    #[test]
    fn every_named_template_classifies_to_itself() {
        let t = Taxonomy::extended();
        for class in t.implementable() {
            let spec = class.template_spec();
            let got = classify(&spec)
                .unwrap_or_else(|e| panic!("class {} failed to classify: {e}", class.serial));
            assert_eq!(got.serial(), class.serial, "class {}", class.serial);
            assert_eq!(&got.name(), class.name());
        }
    }

    #[test]
    fn ni_templates_report_not_implementable_with_matching_serial() {
        let t = Taxonomy::extended();
        for serial in 11..=14u8 {
            let spec = t.by_serial(serial).unwrap().template_spec();
            match classify(&spec) {
                Err(TaxonomyError::NotImplementable { serial: got, .. }) => {
                    assert_eq!(got, serial)
                }
                other => panic!("expected NI for {serial}, got {other:?}"),
            }
        }
    }

    #[test]
    fn concrete_counts_classify_like_symbolic_ones() {
        // MorphoSys: 64 concrete DPs behave as `n`.
        let c = classify_row("1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64");
        assert_eq!(c.name().to_string(), "IAP-II");
        assert_eq!(c.serial(), 8);
    }

    #[test]
    fn direct_dp_dp_scores_zero_bit() {
        // PADDI-2: all-direct 48-processor MIMD machine => IMP-I.
        let c = classify_row("48 | 48 | none | 48-48 | 48-48 | 48-48 | 48-48");
        assert_eq!(c.name().to_string(), "IMP-I");
    }

    #[test]
    fn limited_crossbars_count_as_crossbars() {
        // DRRA: windowed (nx14) switches on IP-IP, DP-DM, DP-DP => ISP-IV.
        let c = classify_row("n | n | nx14 | n-n | n-n | nx14 | nx14");
        assert_eq!(c.name().to_string(), "ISP-IV");
        assert_eq!(c.serial(), 34);
    }

    #[test]
    fn fpga_classifies_as_usp() {
        let c = classify_row("v | v | vxv | vxv | vxv | vxv | vxv");
        assert_eq!(c.name().to_string(), "USP");
        assert_eq!(c.serial(), 47);
        assert!(c.trace().iter().any(|t| t.contains("Universal Flow")));
    }

    #[test]
    fn zero_dps_is_unclassifiable() {
        let spec = parse_row("no-dp", "1 | 0 | none | none | 1-1 | none | none").unwrap();
        assert!(matches!(
            classify(&spec),
            Err(TaxonomyError::Unclassifiable { .. })
        ));
    }

    #[test]
    fn trace_explains_decisions() {
        let c = classify_row("n | n | nxn | nxn | nxn | nxn | nxn");
        assert_eq!(c.name().to_string(), "ISP-XVI");
        let joined = c.trace().join("\n");
        assert!(joined.contains("Spatial"));
        assert!(joined.contains("1111"));
    }

    #[test]
    fn classification_class_accessor_returns_row() {
        let c = classify_row("0 | 16 | none | none | none | 16x6 | 16x16");
        assert_eq!(c.name().to_string(), "DMP-IV");
        assert_eq!(c.class().serial, 5);
    }
}

//! The hierarchical naming scheme (Section II-C, Fig 2).
//!
//! A class name has three parts:
//!
//! * **Machine Type** — Data Flow (`D`), Instruction Flow (`I`) or Universal
//!   Flow (`U`), decided by the presence / absence / configurability of
//!   instruction processors;
//! * **Processing Type** — Uni (`U`), Array (`A`), Multi (`M`) or Spatial
//!   (`S`) processor, decided by the counts of IPs and DPs (and, for
//!   Spatial, the IP–IP connectivity);
//! * **Sub-Processing Type** — a Roman numeral encoding *which* of the
//!   variable connectivity relations are crossbars.  The numeral is
//!   `1 + code` where `code` packs the crossbar bits in table order:
//!   for Multi/Spatial processors, bit 3 = IP–DP, bit 2 = IP–IM,
//!   bit 1 = DP–DM, bit 0 = DP–DP (sixteen sub-types); for Array and
//!   data-flow Multi processors only the low two bits apply (four
//!   sub-types).  Uni-processors have no sub-type.
//!
//! The resulting names — DUP, DMP-I..IV, IUP, IAP-I..IV, IMP-I..XVI,
//! ISP-I..XVI, USP — are exactly the "Comments" column of Table I.

use std::fmt;
use std::str::FromStr;

use crate::error::TaxonomyError;
use crate::roman::{from_roman, to_roman};

/// Primary branch of the naming hierarchy: how instructions reach data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MachineType {
    /// No instruction processor: data elements carry their instructions and
    /// fire on availability.
    DataFlow,
    /// Instruction processors fetch instructions that select the data to
    /// process.
    InstructionFlow,
    /// Fine-grained fabric that can implement either paradigm (FPGA).
    UniversalFlow,
}

impl MachineType {
    /// The leading letter of class names (`D`, `I`, `U`).
    pub fn letter(&self) -> char {
        match self {
            MachineType::DataFlow => 'D',
            MachineType::InstructionFlow => 'I',
            MachineType::UniversalFlow => 'U',
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            MachineType::DataFlow => "Data Flow",
            MachineType::InstructionFlow => "Instruction Flow",
            MachineType::UniversalFlow => "Universal Flow",
        }
    }
}

impl fmt::Display for MachineType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Secondary branch: degree of parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessingType {
    /// One processor (one DP, and for instruction flow one IP).
    Uni,
    /// One IP commanding `n` DPs (SIMD array).
    Array,
    /// `n` IPs and `n` DPs, no IP–IP connectivity (MIMD).
    Multi,
    /// IPs can connect to IPs: processors compose into larger processors.
    Spatial,
}

impl ProcessingType {
    /// The middle letter of class names (`U`, `A`, `M`, `S`).
    pub fn letter(&self) -> char {
        match self {
            ProcessingType::Uni => 'U',
            ProcessingType::Array => 'A',
            ProcessingType::Multi => 'M',
            ProcessingType::Spatial => 'S',
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ProcessingType::Uni => "Uni Processor",
            ProcessingType::Array => "Array Processor",
            ProcessingType::Multi => "Multi Processor",
            ProcessingType::Spatial => "Spatial Processor",
        }
    }

    /// Does this machine/processing combination exist in Table I?
    ///
    /// Data flow has only Uni and Multi processors; universal flow has only
    /// the Spatial processor; instruction flow has all four.
    pub fn exists_in(&self, machine: MachineType) -> bool {
        match (machine, self) {
            (MachineType::DataFlow, ProcessingType::Uni | ProcessingType::Multi) => true,
            (MachineType::DataFlow, _) => false,
            (MachineType::InstructionFlow, _) => true,
            (MachineType::UniversalFlow, ProcessingType::Spatial) => true,
            (MachineType::UniversalFlow, _) => false,
        }
    }

    /// How many sub-types this processing type has in each machine type
    /// (0 means "no numeral suffix").
    pub fn subtype_cardinality(&self, machine: MachineType) -> u8 {
        match (machine, self) {
            (MachineType::UniversalFlow, _) => 0,
            (_, ProcessingType::Uni) => 0,
            (MachineType::DataFlow, ProcessingType::Multi) => 4,
            (_, ProcessingType::Array) => 4,
            (_, ProcessingType::Multi) => 16,
            (_, ProcessingType::Spatial) => 16,
        }
    }
}

impl fmt::Display for ProcessingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The sub-processing-type numeral: `SubType(k)` prints as the Roman
/// numeral for `k` (1-based).  `SubType::NONE` means the class has no
/// numeral (uni-processors, USP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubType(Option<u8>);

impl SubType {
    /// No sub-type numeral.
    pub const NONE: SubType = SubType(None);

    /// A 1-based sub-type index (1..=16).
    pub fn new(index: u8) -> Result<Self, TaxonomyError> {
        if (1..=16).contains(&index) {
            Ok(SubType(Some(index)))
        } else {
            Err(TaxonomyError::name_parse(
                &index.to_string(),
                "sub-type index must be in 1..=16",
            ))
        }
    }

    /// Build from the crossbar bit-code (`index = code + 1`).
    pub fn from_code(code: u8) -> Self {
        SubType(Some(code + 1))
    }

    /// The 1-based index, if present.
    pub fn index(&self) -> Option<u8> {
        self.0
    }

    /// The crossbar bit-code (`index - 1`), if present.
    pub fn code(&self) -> Option<u8> {
        self.0.map(|i| i - 1)
    }

    /// Number of crossbar switches encoded by this sub-type (the popcount
    /// of the code).  `None` sub-types encode zero.
    pub fn crossbar_bits(&self) -> u8 {
        self.code().map_or(0, |c| c.count_ones() as u8)
    }
}

impl fmt::Display for SubType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => Ok(()),
            Some(i) => write!(f, "{}", to_roman(u16::from(i))),
        }
    }
}

/// A full hierarchical class name (e.g. `IMP-XIV`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassName {
    /// Machine type (first letter).
    pub machine: MachineType,
    /// Processing type (second letter; the paper's acronyms keep `P` for
    /// "Processor" as the third letter).
    pub processing: ProcessingType,
    /// Sub-processing type (Roman suffix).
    pub sub: SubType,
}

impl ClassName {
    /// Build a name, checking that the sub-type is consistent with the
    /// machine/processing pair (e.g. `IAP-V` does not exist).
    pub fn new(
        machine: MachineType,
        processing: ProcessingType,
        sub: SubType,
    ) -> Result<Self, TaxonomyError> {
        if !processing.exists_in(machine) {
            return Err(TaxonomyError::name_parse(
                &format!("{}{}P", machine.letter(), processing.letter()),
                format!(
                    "{} has no {} class in Table I",
                    machine.label(),
                    processing.label()
                ),
            ));
        }
        let cardinality = processing.subtype_cardinality(machine);
        match (cardinality, sub.index()) {
            (0, None) => Ok(ClassName {
                machine,
                processing,
                sub,
            }),
            (0, Some(_)) => Err(TaxonomyError::name_parse(
                &format!("{}{}P-{}", machine.letter(), processing.letter(), sub),
                "this class takes no sub-type numeral",
            )),
            (_, None) => Err(TaxonomyError::name_parse(
                &format!("{}{}P", machine.letter(), processing.letter()),
                "this class requires a sub-type numeral",
            )),
            (n, Some(i)) if i <= n => Ok(ClassName {
                machine,
                processing,
                sub,
            }),
            (n, Some(i)) => Err(TaxonomyError::name_parse(
                &format!("{}{}P-{}", machine.letter(), processing.letter(), sub),
                format!("sub-type {i} exceeds the {n} sub-types of this class"),
            )),
        }
    }

    /// The acronym without numeral (`DUP`, `IMP`, ...).
    pub fn acronym(&self) -> String {
        format!("{}{}P", self.machine.letter(), self.processing.letter())
    }

    /// The long-form reading of the name, mirroring the paper's
    /// "Instruction Flow —> Multi Processor" phrasing.
    pub fn long_form(&self) -> String {
        match self.sub.index() {
            None => format!("{} -> {}", self.machine.label(), self.processing.label()),
            Some(_) => format!(
                "{} -> {} (sub-type {})",
                self.machine.label(),
                self.processing.label(),
                self.sub
            ),
        }
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sub.index() {
            None => write!(f, "{}", self.acronym()),
            Some(_) => write!(f, "{}-{}", self.acronym(), self.sub),
        }
    }
}

impl FromStr for ClassName {
    type Err = TaxonomyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (acronym, numeral) = match s.split_once('-') {
            Some((a, n)) => (a, Some(n)),
            None => (s, None),
        };
        if acronym.len() != 3 || !acronym.ends_with('P') {
            return Err(TaxonomyError::name_parse(
                s,
                "expected a three-letter acronym ending in P (e.g. IMP)",
            ));
        }
        let mut chars = acronym.chars();
        let machine = match chars.next().unwrap() {
            'D' => MachineType::DataFlow,
            'I' => MachineType::InstructionFlow,
            'U' => MachineType::UniversalFlow,
            c => {
                return Err(TaxonomyError::name_parse(
                    s,
                    format!("unknown machine-type letter {c:?}"),
                ))
            }
        };
        let processing = match chars.next().unwrap() {
            'U' => ProcessingType::Uni,
            'A' => ProcessingType::Array,
            'M' => ProcessingType::Multi,
            'S' => ProcessingType::Spatial,
            c => {
                return Err(TaxonomyError::name_parse(
                    s,
                    format!("unknown processing-type letter {c:?}"),
                ))
            }
        };
        let sub = match numeral {
            None => SubType::NONE,
            Some(n) => {
                let idx = from_roman(n)?;
                if idx > 16 {
                    return Err(TaxonomyError::name_parse(s, "sub-type above XVI"));
                }
                SubType::new(idx as u8)?
            }
        };
        ClassName::new(machine, processing, sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_print_as_in_paper() {
        let dup =
            ClassName::new(MachineType::DataFlow, ProcessingType::Uni, SubType::NONE).unwrap();
        assert_eq!(dup.to_string(), "DUP");
        let imp14 = ClassName::new(
            MachineType::InstructionFlow,
            ProcessingType::Multi,
            SubType::new(14).unwrap(),
        )
        .unwrap();
        assert_eq!(imp14.to_string(), "IMP-XIV");
        let usp = ClassName::new(
            MachineType::UniversalFlow,
            ProcessingType::Spatial,
            SubType::NONE,
        )
        .unwrap();
        assert_eq!(usp.to_string(), "USP");
    }

    #[test]
    fn parse_round_trips_every_table_i_name() {
        let mut names = vec!["DUP".to_owned(), "IUP".to_owned(), "USP".to_owned()];
        for i in 1..=4u16 {
            names.push(format!("DMP-{}", to_roman(i)));
            names.push(format!("IAP-{}", to_roman(i)));
        }
        for i in 1..=16u16 {
            names.push(format!("IMP-{}", to_roman(i)));
            names.push(format!("ISP-{}", to_roman(i)));
        }
        assert_eq!(names.len(), 3 + 8 + 32);
        for n in names {
            let parsed: ClassName = n.parse().unwrap();
            assert_eq!(parsed.to_string(), n, "round trip of {n}");
        }
    }

    #[test]
    fn invalid_names_rejected() {
        for bad in [
            "IMP",      // missing required numeral
            "IAP-V",    // only four array sub-types
            "DMP-XVII", // out of range
            "DUP-I",    // uni processors take no numeral
            "USP-I",    // universal flow takes no numeral
            "XMP-I",    // unknown machine letter
            "IQP-I",    // unknown processing letter
            "IM-I",     // malformed acronym
            "imp-i",    // case-sensitive
            "DAP-I",    // data-flow array does not exist in Table I
        ] {
            // DAP-I parses structurally but has cardinality 0 in data flow.
            assert!(bad.parse::<ClassName>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn subtype_crossbar_bits_popcount() {
        assert_eq!(SubType::NONE.crossbar_bits(), 0);
        assert_eq!(SubType::new(1).unwrap().crossbar_bits(), 0); // code 0000
        assert_eq!(SubType::new(16).unwrap().crossbar_bits(), 4); // code 1111
        assert_eq!(SubType::new(14).unwrap().crossbar_bits(), 3); // code 1101
    }

    #[test]
    fn long_form_reads_like_the_paper() {
        let iap2: ClassName = "IAP-II".parse().unwrap();
        assert_eq!(
            iap2.long_form(),
            "Instruction Flow -> Array Processor (sub-type II)"
        );
    }

    #[test]
    fn same_subtype_means_same_connectivity_code() {
        // Section III-A: "IAP-I and IMP-I will have same ... connectivity".
        let iap1: ClassName = "IAP-I".parse().unwrap();
        let imp1: ClassName = "IMP-I".parse().unwrap();
        assert_eq!(iap1.sub.code(), imp1.sub.code());
    }
}

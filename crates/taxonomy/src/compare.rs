//! Name-based architecture comparison (Section III-A).
//!
//! "By just looking at the names of the classes … one can compare two or
//! more architectures in terms of similarities or differences."  The first
//! letter gives the machine type, the second the processing type, and the
//! numeral the interconnection pattern; two classes with the same numeral
//! have the same IP–IM / DP–DM / DP–DP (and IP–DP) switch kinds.

use std::fmt;

use skilltax_model::Relation;

use crate::flexibility::{comparable, flexibility_of_name};
use crate::name::{ClassName, MachineType, ProcessingType};

/// The crossbar relations implied by a class name's sub-type numeral.
pub fn crossbar_relations_of(name: &ClassName) -> Vec<Relation> {
    let mut rels = Vec::new();
    if name.machine == MachineType::UniversalFlow {
        return Relation::ALL.to_vec();
    }
    if name.processing == ProcessingType::Spatial {
        rels.push(Relation::IpIp);
    }
    if let Some(code) = name.sub.code() {
        match name.processing {
            ProcessingType::Multi if name.machine == MachineType::DataFlow => {
                if code & 0b10 != 0 {
                    rels.push(Relation::DpDm);
                }
                if code & 0b01 != 0 {
                    rels.push(Relation::DpDp);
                }
            }
            ProcessingType::Array => {
                if code & 0b10 != 0 {
                    rels.push(Relation::DpDm);
                }
                if code & 0b01 != 0 {
                    rels.push(Relation::DpDp);
                }
            }
            ProcessingType::Multi | ProcessingType::Spatial => {
                if code & 0b1000 != 0 {
                    rels.push(Relation::IpDp);
                }
                if code & 0b0100 != 0 {
                    rels.push(Relation::IpIm);
                }
                if code & 0b0010 != 0 {
                    rels.push(Relation::DpDm);
                }
                if code & 0b0001 != 0 {
                    rels.push(Relation::DpDp);
                }
            }
            ProcessingType::Uni => {}
        }
    }
    rels.sort();
    rels
}

/// A structured similarity/difference report between two class names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameComparison {
    /// Left-hand name.
    pub a: ClassName,
    /// Right-hand name.
    pub b: ClassName,
    /// Same machine type (first letter)?
    pub same_machine: bool,
    /// Same processing type (second letter)?
    pub same_processing: bool,
    /// Same sub-type numeral (⇒ same switch pattern)?
    pub same_sub_type: bool,
    /// Crossbar relations implied by both names.
    pub shared_crossbars: Vec<Relation>,
    /// Crossbar relations only `a` has.
    pub only_in_a: Vec<Relation>,
    /// Crossbar relations only `b` has.
    pub only_in_b: Vec<Relation>,
    /// Are the two flexibility numbers comparable (Section III-B)?
    pub flexibility_comparable: bool,
    /// Flexibility values, where the names exist in Table I.
    pub flexibility: (Option<u32>, Option<u32>),
}

/// Compare two class names.
pub fn compare_names(a: ClassName, b: ClassName) -> NameComparison {
    let xa = crossbar_relations_of(&a);
    let xb = crossbar_relations_of(&b);
    let shared: Vec<Relation> = xa.iter().copied().filter(|r| xb.contains(r)).collect();
    let only_a: Vec<Relation> = xa.iter().copied().filter(|r| !xb.contains(r)).collect();
    let only_b: Vec<Relation> = xb.iter().copied().filter(|r| !xa.contains(r)).collect();
    NameComparison {
        a,
        b,
        same_machine: a.machine == b.machine,
        same_processing: a.processing == b.processing,
        same_sub_type: a.sub == b.sub,
        shared_crossbars: shared,
        only_in_a: only_a,
        only_in_b: only_b,
        flexibility_comparable: comparable(a.machine, b.machine),
        flexibility: (flexibility_of_name(&a), flexibility_of_name(&b)),
    }
}

impl fmt::Display for NameComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} vs {}", self.a, self.b)?;
        writeln!(
            f,
            "  machine type:    {} / {} ({})",
            self.a.machine,
            self.b.machine,
            if self.same_machine {
                "same"
            } else {
                "different"
            }
        )?;
        writeln!(
            f,
            "  processing type: {} / {} ({})",
            self.a.processing,
            self.b.processing,
            if self.same_processing {
                "same"
            } else {
                "different"
            }
        )?;
        let fmt_rels = |rels: &[Relation]| -> String {
            if rels.is_empty() {
                "none".to_owned()
            } else {
                rels.iter()
                    .map(|r| r.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        writeln!(
            f,
            "  shared crossbars: {}",
            fmt_rels(&self.shared_crossbars)
        )?;
        if !self.only_in_a.is_empty() {
            writeln!(f, "  only {}: {}", self.a, fmt_rels(&self.only_in_a))?;
        }
        if !self.only_in_b.is_empty() {
            writeln!(f, "  only {}: {}", self.b, fmt_rels(&self.only_in_b))?;
        }
        match (self.flexibility_comparable, self.flexibility) {
            (true, (Some(fa), Some(fb))) => {
                writeln!(f, "  flexibility: {fa} vs {fb} (comparable)")
            }
            (false, (Some(fa), Some(fb))) => writeln!(
                f,
                "  flexibility: {fa} vs {fb} (NOT comparable: the machines cannot substitute each other)"
            ),
            _ => writeln!(f, "  flexibility: unavailable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> ClassName {
        s.parse().unwrap()
    }

    #[test]
    fn same_numeral_means_same_data_side_switches() {
        // Section III-A: IAP-I and IMP-I share IP-IM, DP-DM, DP-DP kinds.
        let cmp = compare_names(name("IAP-I"), name("IMP-I"));
        assert!(cmp.same_sub_type);
        assert!(cmp.shared_crossbars.is_empty());
        assert!(cmp.only_in_a.is_empty());
        assert!(cmp.only_in_b.is_empty());
    }

    #[test]
    fn crossbar_relations_follow_the_code() {
        assert_eq!(crossbar_relations_of(&name("IMP-I")), vec![]);
        assert_eq!(
            crossbar_relations_of(&name("IMP-XVI")),
            vec![
                Relation::IpDp,
                Relation::IpIm,
                Relation::DpDm,
                Relation::DpDp
            ]
        );
        assert_eq!(crossbar_relations_of(&name("ISP-I")), vec![Relation::IpIp]);
        assert_eq!(crossbar_relations_of(&name("IAP-II")), vec![Relation::DpDp]);
        assert_eq!(
            crossbar_relations_of(&name("DMP-III")),
            vec![Relation::DpDm]
        );
        assert_eq!(crossbar_relations_of(&name("USP")).len(), 5);
        assert_eq!(crossbar_relations_of(&name("IUP")), vec![]);
    }

    #[test]
    fn data_vs_instruction_flexibility_not_comparable() {
        let cmp = compare_names(name("DMP-IV"), name("IMP-IV"));
        assert!(!cmp.flexibility_comparable);
        let cmp = compare_names(name("DMP-IV"), name("USP"));
        assert!(cmp.flexibility_comparable);
    }

    #[test]
    fn isp_adds_ip_ip_over_imp() {
        let cmp = compare_names(name("ISP-VII"), name("IMP-VII"));
        assert!(cmp.same_sub_type);
        assert_eq!(cmp.only_in_a, vec![Relation::IpIp]);
        assert!(cmp.only_in_b.is_empty());
        assert_eq!(cmp.flexibility, (Some(5), Some(4)));
    }

    #[test]
    fn display_report_is_readable() {
        let text = compare_names(name("IAP-II"), name("DMP-II")).to_string();
        assert!(text.contains("different"));
        assert!(text.contains("NOT comparable"));
        assert!(text.contains("DP-DP"));
    }
}

//! Application requirements → minimal class (the designer flow of the
//! paper's conclusion).
//!
//! "By looking into this taxonomy, a designer can decide which computer
//! class offers the required flexibility with minimum configuration
//! overhead for single or set of target applications."  This module makes
//! that lookup mechanical: an application is characterised by the
//! *capabilities* it needs, each capability maps to a structural demand
//! (a count class or a crossbar on a relation), and the classes that
//! satisfy all demands are enumerated.

use skilltax_model::Relation;

use crate::class::{Taxonomy, TaxonomyClass};
use crate::compare::crossbar_relations_of;
use crate::name::{ClassName, MachineType, ProcessingType};

/// A capability an application needs from its execution substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// More than one data processor working at once (any parallelism).
    DataParallelism,
    /// Several *different* instruction streams at the same time (MIMD).
    MultipleInstructionStreams,
    /// Data exchanged directly between processing elements (DP–DP switch).
    LaneExchange,
    /// Any processor reaching any memory (DP–DM crossbar).
    SharedMemory,
    /// Cores loading programs from a common store (IP–IM crossbar).
    SharedProgramStore,
    /// Any instruction processor driving any data processor (IP–DP
    /// crossbar).
    ProcessorRebinding,
    /// Instruction processors composing into larger ones (IP–IP switch).
    ProcessorComposition,
    /// Execution driven purely by data availability (data-flow paradigm).
    DataflowExecution,
    /// Instruction-driven execution (fetch/decode control).
    InstructionExecution,
    /// Blocks that exchange roles under reconfiguration (fine-grained).
    RoleExchange,
}

impl Capability {
    /// All capabilities.
    pub const ALL: [Capability; 10] = [
        Capability::DataParallelism,
        Capability::MultipleInstructionStreams,
        Capability::LaneExchange,
        Capability::SharedMemory,
        Capability::SharedProgramStore,
        Capability::ProcessorRebinding,
        Capability::ProcessorComposition,
        Capability::DataflowExecution,
        Capability::InstructionExecution,
        Capability::RoleExchange,
    ];
}

/// Does a named class provide a capability?
pub fn provides(name: &ClassName, capability: Capability) -> bool {
    let crossbars = crossbar_relations_of(name);
    let universal = name.machine == MachineType::UniversalFlow;
    match capability {
        Capability::DataParallelism => universal || name.processing != ProcessingType::Uni,
        Capability::MultipleInstructionStreams => {
            universal
                || (name.machine == MachineType::InstructionFlow
                    && matches!(
                        name.processing,
                        ProcessingType::Multi | ProcessingType::Spatial
                    ))
        }
        Capability::LaneExchange => universal || crossbars.contains(&Relation::DpDp),
        Capability::SharedMemory => universal || crossbars.contains(&Relation::DpDm),
        Capability::SharedProgramStore => universal || crossbars.contains(&Relation::IpIm),
        Capability::ProcessorRebinding => universal || crossbars.contains(&Relation::IpDp),
        Capability::ProcessorComposition => universal || name.processing == ProcessingType::Spatial,
        Capability::DataflowExecution => universal || name.machine == MachineType::DataFlow,
        Capability::InstructionExecution => {
            universal || name.machine == MachineType::InstructionFlow
        }
        Capability::RoleExchange => universal,
    }
}

/// All Table I classes that provide *every* requested capability, in
/// serial order.
pub fn satisfying_classes(requirements: &[Capability]) -> Vec<&'static TaxonomyClass> {
    Taxonomy::extended()
        .implementable()
        .filter(|class| requirements.iter().all(|&r| provides(class.name(), r)))
        .collect()
}

/// The satisfying classes with the *lowest flexibility score* — the
/// paper's "required flexibility with minimum configuration overhead"
/// proxy at the taxonomy level (cost-aware refinement lives in
/// `skilltax-estimate`).
pub fn minimal_classes(requirements: &[Capability]) -> Vec<&'static TaxonomyClass> {
    let candidates = satisfying_classes(requirements);
    let min = candidates
        .iter()
        .map(|c| crate::flexibility::flexibility_of_class(c))
        .min();
    match min {
        None => Vec::new(),
        Some(m) => candidates
            .into_iter()
            .filter(|c| crate::flexibility::flexibility_of_class(c) == m)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(classes: &[&TaxonomyClass]) -> Vec<String> {
        classes.iter().map(|c| c.name().to_string()).collect()
    }

    #[test]
    fn no_requirements_admits_every_named_class() {
        assert_eq!(satisfying_classes(&[]).len(), 43);
    }

    #[test]
    fn usp_provides_everything() {
        let usp: ClassName = "USP".parse().unwrap();
        for cap in Capability::ALL {
            assert!(provides(&usp, cap), "{cap:?}");
        }
    }

    #[test]
    fn role_exchange_filters_to_usp_only() {
        assert_eq!(
            names(&satisfying_classes(&[Capability::RoleExchange])),
            vec!["USP"]
        );
    }

    #[test]
    fn mimd_plus_shared_memory_picks_imp_iii_family() {
        let reqs = [
            Capability::MultipleInstructionStreams,
            Capability::SharedMemory,
        ];
        let minimal = minimal_classes(&reqs);
        // Cheapest classes with n IPs + DP-DM crossbar: IMP-III (flex 3).
        assert_eq!(names(&minimal), vec!["IMP-III"]);
        for class in satisfying_classes(&reqs) {
            assert!(
                provides(class.name(), Capability::SharedMemory),
                "{}",
                class.name()
            );
        }
    }

    #[test]
    fn dataflow_and_instruction_flow_together_need_the_fpga() {
        let reqs = [
            Capability::DataflowExecution,
            Capability::InstructionExecution,
        ];
        assert_eq!(names(&satisfying_classes(&reqs)), vec!["USP"]);
    }

    #[test]
    fn lane_exchange_alone_is_cheapest_in_data_flow() {
        let minimal = minimal_classes(&[Capability::LaneExchange]);
        // DMP-II and IAP-II both score 2; data-flow and array variants tie.
        let got = names(&minimal);
        assert!(got.contains(&"DMP-II".to_owned()), "{got:?}");
        assert!(got.contains(&"IAP-II".to_owned()), "{got:?}");
    }

    #[test]
    fn composition_requires_spatial_or_universal() {
        for class in satisfying_classes(&[Capability::ProcessorComposition]) {
            let n = class.name();
            assert!(
                n.processing == ProcessingType::Spatial || n.machine == MachineType::UniversalFlow,
                "{n}"
            );
        }
    }

    #[test]
    fn impossible_combination_yields_empty_set() {
        // Data-flow execution + multiple instruction streams: only USP,
        // and adding a non-universal-only constraint that excludes it
        // would empty the set — e.g. requiring instruction execution is
        // still satisfied by USP, so use a stronger check: dataflow +
        // processor rebinding has USP only; nothing non-universal.
        let reqs = [
            Capability::DataflowExecution,
            Capability::ProcessorRebinding,
        ];
        assert_eq!(names(&satisfying_classes(&reqs)), vec!["USP"]);
    }

    #[test]
    fn minimal_classes_have_minimal_flexibility() {
        use crate::flexibility::flexibility_of_class;
        for combo in [
            vec![Capability::DataParallelism],
            vec![
                Capability::MultipleInstructionStreams,
                Capability::LaneExchange,
            ],
            vec![Capability::SharedProgramStore, Capability::SharedMemory],
        ] {
            let all = satisfying_classes(&combo);
            let minimal = minimal_classes(&combo);
            assert!(!minimal.is_empty());
            let min_flex = flexibility_of_class(minimal[0]);
            for c in &all {
                assert!(flexibility_of_class(c) >= min_flex);
            }
            for c in &minimal {
                assert_eq!(flexibility_of_class(c), min_flex);
            }
        }
    }
}

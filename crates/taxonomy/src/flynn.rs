//! Flynn's taxonomy (1966) — the oldest baseline the paper discusses.
//!
//! Flynn classifies by the multiplicity of instruction and data streams:
//! SISD, SIMD, MISD, MIMD.  The paper's (and Skillicorn's) criticism is
//! its *broadness*: radically different machines land in the same bucket.
//! Implementing it lets us quantify that criticism — see
//! [`flynn_partition`], which shows how many extended classes collapse
//! into each Flynn class.

use std::fmt;

use skilltax_model::{ArchSpec, Count};

use crate::class::Taxonomy;
use crate::error::TaxonomyError;

/// Flynn's four classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlynnClass {
    /// Single instruction stream, single data stream.
    Sisd,
    /// Single instruction stream, multiple data streams.
    Simd,
    /// Multiple instruction streams, single data stream.
    Misd,
    /// Multiple instruction streams, multiple data streams.
    Mimd,
}

impl FlynnClass {
    /// All four classes.
    pub const ALL: [FlynnClass; 4] = [
        FlynnClass::Sisd,
        FlynnClass::Simd,
        FlynnClass::Misd,
        FlynnClass::Mimd,
    ];

    /// The conventional acronym.
    pub fn acronym(&self) -> &'static str {
        match self {
            FlynnClass::Sisd => "SISD",
            FlynnClass::Simd => "SIMD",
            FlynnClass::Misd => "MISD",
            FlynnClass::Mimd => "MIMD",
        }
    }
}

impl fmt::Display for FlynnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.acronym())
    }
}

/// Classify an architecture under Flynn's taxonomy.
///
/// Instruction-stream multiplicity follows the IP count (a data-flow
/// machine has no instruction *stream* in Flynn's sense — Flynn predates
/// dataflow; we follow the common convention of treating token-driven DPs
/// as data-stream multiplicity with a single implicit control, i.e. 1 DP
/// → SISD, n DPs → SIMD).  Variable fabrics are unclassifiable (Flynn has
/// no `v`) — exactly the limitation the paper's extension addresses.
pub fn classify_flynn(spec: &ArchSpec) -> Result<FlynnClass, TaxonomyError> {
    if spec.is_universal() {
        return Err(TaxonomyError::Unclassifiable {
            reason: "Flynn's taxonomy has no class for fabrics whose instruction/data \
                     stream counts change under reconfiguration (the paper's 'v')"
                .to_owned(),
        });
    }
    let multi_instr = spec.ips.is_plural();
    let multi_data = spec.dps.is_plural();
    if matches!(spec.dps, Count::Zero) {
        return Err(TaxonomyError::Unclassifiable {
            reason: "no data stream at all".to_owned(),
        });
    }
    Ok(match (multi_instr, multi_data) {
        (false, false) => FlynnClass::Sisd,
        (false, true) => FlynnClass::Simd,
        (true, false) => FlynnClass::Misd,
        (true, true) => FlynnClass::Mimd,
    })
}

/// How the 43 named extended classes distribute over Flynn's buckets —
/// the broadness argument quantified.  Returns `(flynn, extended-class
/// names)` pairs plus the classes Flynn cannot place at all.
pub fn flynn_partition() -> (Vec<(FlynnClass, Vec<String>)>, Vec<String>) {
    let mut buckets: Vec<(FlynnClass, Vec<String>)> =
        FlynnClass::ALL.iter().map(|&f| (f, Vec::new())).collect();
    let mut unplaced = Vec::new();
    for class in Taxonomy::extended().implementable() {
        let spec = class.template_spec();
        match classify_flynn(&spec) {
            Ok(f) => buckets
                .iter_mut()
                .find(|(b, _)| *b == f)
                .expect("bucket exists")
                .1
                .push(class.name().to_string()),
            Err(_) => unplaced.push(class.name().to_string()),
        }
    }
    (buckets, unplaced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    fn flynn_of(row: &str) -> FlynnClass {
        classify_flynn(&parse_row("t", row).unwrap()).unwrap()
    }

    #[test]
    fn canonical_machines_get_their_flynn_classes() {
        assert_eq!(
            flynn_of("1 | 1 | none | 1-1 | 1-1 | 1-1 | none"),
            FlynnClass::Sisd
        );
        assert_eq!(
            flynn_of("1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64"),
            FlynnClass::Simd
        );
        assert_eq!(
            flynn_of("n | 1 | none | n-1 | n-n | 1-1 | none"),
            FlynnClass::Misd
        );
        assert_eq!(
            flynn_of("4 | 4 | none | 4-4 | 4-4 | 4-4 | none"),
            FlynnClass::Mimd
        );
    }

    #[test]
    fn fpga_is_outside_flynns_reach() {
        let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        assert!(classify_flynn(&fpga).is_err());
    }

    #[test]
    fn flynn_collapses_the_extended_taxonomy() {
        let (buckets, unplaced) = flynn_partition();
        let mimd = buckets
            .iter()
            .find(|(f, _)| *f == FlynnClass::Mimd)
            .unwrap();
        // All 32 IMP/ISP classes land in one MIMD bucket: the paper's
        // broadness criticism, quantified.
        assert_eq!(mimd.1.len(), 32);
        let simd = buckets
            .iter()
            .find(|(f, _)| *f == FlynnClass::Simd)
            .unwrap();
        // IAP-I..IV plus the four data-flow multiprocessors.
        assert_eq!(simd.1.len(), 8);
        let sisd = buckets
            .iter()
            .find(|(f, _)| *f == FlynnClass::Sisd)
            .unwrap();
        assert_eq!(sisd.1.len(), 2); // DUP, IUP
                                     // Only the USP is unplaceable.
        assert_eq!(unplaced, vec!["USP".to_owned()]);
        // Flynn's MISD bucket is empty of implementable machines —
        // consistent with the paper marking n-IP/1-DP rows NI.
        let misd = buckets
            .iter()
            .find(|(f, _)| *f == FlynnClass::Misd)
            .unwrap();
        assert!(misd.1.is_empty());
    }

    #[test]
    fn dataflow_machines_follow_the_data_stream_convention() {
        assert_eq!(
            flynn_of("0 | 1 | none | none | none | 1-1 | none"),
            FlynnClass::Sisd
        );
        assert_eq!(
            flynn_of("0 | 16 | none | none | none | 16x6 | 16x16"),
            FlynnClass::Simd
        );
    }
}

//! The extended taxonomy table (Table I): all 47 classes, *generated* from
//! the paper's enumeration rules rather than hard-coded.
//!
//! The enumeration follows Section II:
//!
//! | Serials | Family | Counts | Varying relations |
//! |---------|--------|--------|-------------------|
//! | 1       | DUP    | 0 IPs, 1 DP  | — |
//! | 2–5     | DMP-I..IV | 0, n | DP–DM ∈ {`n-n`,`nxn`}, DP–DP ∈ {none,`nxn`} |
//! | 6       | IUP    | 1, 1 | — |
//! | 7–10    | IAP-I..IV | 1, n | DP–DM, DP–DP as above |
//! | 11–14   | NI     | n, 1 | IP–IP ∈ {none,`nxn`}, IP–IM ∈ {`n-n`,`nxn`} |
//! | 15–30   | IMP-I..XVI | n, n | IP–DP, IP–IM, DP–DM ∈ {direct,`x`}, DP–DP ∈ {none,`x`} |
//! | 31–46   | ISP-I..XVI | n, n | same, plus IP–IP = `nxn` |
//! | 47      | USP    | v, v (LUTs) | all five = `vxv` |

use std::fmt;
use std::sync::OnceLock;

use skilltax_model::{
    ArchBuilder, ArchSpec, Connectivity, Count, Extent, Granularity, Link, Relation, Switch,
    SwitchKind,
};

use crate::error::TaxonomyError;
use crate::name::{ClassName, MachineType, ProcessingType, SubType};

/// Whether a Table I row is a named, realisable class or one of the
/// not-implementable rows (11–14: several IPs driving one DP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Designation {
    /// A named class (the "Comments" column of Table I).
    Named(ClassName),
    /// Not implementable ("NI" in Table I).
    NotImplementable,
}

impl Designation {
    /// The class name, if the row is implementable.
    pub fn name(&self) -> Option<&ClassName> {
        match self {
            Designation::Named(n) => Some(n),
            Designation::NotImplementable => None,
        }
    }
}

impl fmt::Display for Designation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Designation::Named(n) => write!(f, "{n}"),
            Designation::NotImplementable => write!(f, "NI"),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyClass {
    /// Serial number (the "S.N" column), 1..=47.
    pub serial: u8,
    /// Granularity column (`IP/DP` for 1–46, `LUTs` for 47).
    pub granularity: Granularity,
    /// Canonical IP count (`0`, `1`, `n` or `v`).
    pub ips: Count,
    /// Canonical DP count.
    pub dps: Count,
    /// Canonical connectivity (symbolic extents).
    pub connectivity: Connectivity,
    /// Name or NI.
    pub designation: Designation,
    /// Table I section header this row appears under.
    pub section: &'static str,
}

impl TaxonomyClass {
    /// The class name; errors for the NI rows.
    pub fn name(&self) -> &ClassName {
        self.designation
            .name()
            .expect("name() called on a not-implementable class; check designation first")
    }

    /// Is the row implementable?
    pub fn is_implementable(&self) -> bool {
        matches!(self.designation, Designation::Named(_))
    }

    /// A canonical [`ArchSpec`] template for this class, suitable for
    /// feeding back into the classifier or into the cost estimators.
    pub fn template_spec(&self) -> ArchSpec {
        ArchBuilder::new(format!("class-{}", self.serial))
            .granularity(self.granularity)
            .ips(self.ips)
            .dps(self.dps)
            .connectivity(self.connectivity)
            .build_unchecked()
    }

    /// The pipe-separated structural row (matches the paper's Table I
    /// columns IPs..DP-DP).
    pub fn row_notation(&self) -> String {
        self.template_spec().row_notation()
    }
}

impl fmt::Display for TaxonomyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}. [{}] {} => {}",
            self.serial,
            self.granularity,
            self.row_notation(),
            self.designation
        )
    }
}

/// The complete extended taxonomy (all 47 Table I rows).
#[derive(Debug)]
pub struct Taxonomy {
    classes: Vec<TaxonomyClass>,
}

/// Direct symbolic `1-n` link (one IP broadcasting to n DPs).
fn direct_1_n() -> Link {
    Link::Connected(Switch::new(SwitchKind::Direct, Extent::one(), Extent::n()))
}

/// Direct symbolic `n-1` link (n IPs driving one DP; the NI rows).
fn direct_n_1() -> Link {
    Link::Connected(Switch::new(SwitchKind::Direct, Extent::n(), Extent::one()))
}

/// Pick `n-n` or `nxn` by a crossbar bit.
fn n_n_or_x(crossbar: bool) -> Link {
    if crossbar {
        Link::crossbar_n_n()
    } else {
        Link::direct_n_n()
    }
}

/// Pick `none` or `nxn` by a crossbar bit (relations whose direct form is
/// absence, i.e. DP–DP).
fn none_or_x(crossbar: bool) -> Link {
    if crossbar {
        Link::crossbar_n_n()
    } else {
        Link::None
    }
}

impl Taxonomy {
    /// The shared, lazily-constructed extended taxonomy.
    pub fn extended() -> &'static Taxonomy {
        static TABLE: OnceLock<Taxonomy> = OnceLock::new();
        TABLE.get_or_init(Taxonomy::generate)
    }

    /// Generate all 47 rows from the enumeration rules.
    fn generate() -> Taxonomy {
        let mut classes = Vec::with_capacity(47);
        let named = |machine, processing, sub| {
            Designation::Named(
                ClassName::new(machine, processing, sub).expect("generated names are valid"),
            )
        };

        // 1. DUP — data-flow single processor.
        classes.push(TaxonomyClass {
            serial: 1,
            granularity: Granularity::CoarseIpDp,
            ips: Count::Zero,
            dps: Count::One,
            connectivity: Connectivity::none().with(Relation::DpDm, Link::direct_between(1, 1)),
            designation: named(MachineType::DataFlow, ProcessingType::Uni, SubType::NONE),
            section: "Data Flow Machines -> Single Processor",
        });

        // 2–5. DMP-I..IV — data-flow multi-processors.
        for code in 0u8..4 {
            let dp_dm_x = code & 0b10 != 0;
            let dp_dp_x = code & 0b01 != 0;
            classes.push(TaxonomyClass {
                serial: 2 + code,
                granularity: Granularity::CoarseIpDp,
                ips: Count::Zero,
                dps: Count::n(),
                connectivity: Connectivity::none()
                    .with(Relation::DpDm, n_n_or_x(dp_dm_x))
                    .with(Relation::DpDp, none_or_x(dp_dp_x)),
                designation: named(
                    MachineType::DataFlow,
                    ProcessingType::Multi,
                    SubType::from_code(code),
                ),
                section: "Data Flow Machines -> Multi Processors",
            });
        }

        // 6. IUP — instruction-flow uni-processor (Von Neumann).
        classes.push(TaxonomyClass {
            serial: 6,
            granularity: Granularity::CoarseIpDp,
            ips: Count::One,
            dps: Count::One,
            connectivity: Connectivity::none()
                .with(Relation::IpDp, Link::direct_between(1, 1))
                .with(Relation::IpIm, Link::direct_between(1, 1))
                .with(Relation::DpDm, Link::direct_between(1, 1)),
            designation: named(
                MachineType::InstructionFlow,
                ProcessingType::Uni,
                SubType::NONE,
            ),
            section: "Instruction Flow -> Single Processor",
        });

        // 7–10. IAP-I..IV — array processors.
        for code in 0u8..4 {
            let dp_dm_x = code & 0b10 != 0;
            let dp_dp_x = code & 0b01 != 0;
            classes.push(TaxonomyClass {
                serial: 7 + code,
                granularity: Granularity::CoarseIpDp,
                ips: Count::One,
                dps: Count::n(),
                connectivity: Connectivity::none()
                    .with(Relation::IpDp, direct_1_n())
                    .with(Relation::IpIm, Link::direct_between(1, 1))
                    .with(Relation::DpDm, n_n_or_x(dp_dm_x))
                    .with(Relation::DpDp, none_or_x(dp_dp_x)),
                designation: named(
                    MachineType::InstructionFlow,
                    ProcessingType::Array,
                    SubType::from_code(code),
                ),
                section: "Instruction Flow -> Array Processor",
            });
        }

        // 11–14. NI — n IPs driving a single DP.
        for code in 0u8..4 {
            let ip_ip_x = code & 0b10 != 0;
            let ip_im_x = code & 0b01 != 0;
            classes.push(TaxonomyClass {
                serial: 11 + code,
                granularity: Granularity::CoarseIpDp,
                ips: Count::n(),
                dps: Count::One,
                connectivity: Connectivity::none()
                    .with(Relation::IpIp, none_or_x(ip_ip_x))
                    .with(Relation::IpDp, direct_n_1())
                    .with(Relation::IpIm, n_n_or_x(ip_im_x))
                    .with(Relation::DpDm, Link::direct_between(1, 1)),
                designation: Designation::NotImplementable,
                section: "Instruction Flow -> Array Processor",
            });
        }

        // 15–30 (IMP) and 31–46 (ISP).
        for spatial in [false, true] {
            for code in 0u8..16 {
                let ip_dp_x = code & 0b1000 != 0;
                let ip_im_x = code & 0b0100 != 0;
                let dp_dm_x = code & 0b0010 != 0;
                let dp_dp_x = code & 0b0001 != 0;
                let serial = if spatial { 31 + code } else { 15 + code };
                classes.push(TaxonomyClass {
                    serial,
                    granularity: Granularity::CoarseIpDp,
                    ips: Count::n(),
                    dps: Count::n(),
                    connectivity: Connectivity::none()
                        .with(Relation::IpIp, none_or_x(spatial))
                        .with(Relation::IpDp, n_n_or_x(ip_dp_x))
                        .with(Relation::IpIm, n_n_or_x(ip_im_x))
                        .with(Relation::DpDm, n_n_or_x(dp_dm_x))
                        .with(Relation::DpDp, none_or_x(dp_dp_x)),
                    designation: named(
                        MachineType::InstructionFlow,
                        if spatial {
                            ProcessingType::Spatial
                        } else {
                            ProcessingType::Multi
                        },
                        SubType::from_code(code),
                    ),
                    section: "Instruction Flow -> Multi Processor",
                });
            }
        }

        // 47. USP — universal flow spatial computing (FPGA).
        classes.push(TaxonomyClass {
            serial: 47,
            granularity: Granularity::FineLut,
            ips: Count::Variable,
            dps: Count::Variable,
            connectivity: Connectivity::new(
                Link::crossbar_v_v(),
                Link::crossbar_v_v(),
                Link::crossbar_v_v(),
                Link::crossbar_v_v(),
                Link::crossbar_v_v(),
            ),
            designation: named(
                MachineType::UniversalFlow,
                ProcessingType::Spatial,
                SubType::NONE,
            ),
            section: "Universal Flow Machine -> Spatial Computing",
        });

        debug_assert_eq!(classes.len(), 47);
        Taxonomy { classes }
    }

    /// All rows, in serial order.
    pub fn classes(&self) -> &[TaxonomyClass] {
        &self.classes
    }

    /// Row by serial number (1..=47).
    pub fn by_serial(&self, serial: u8) -> Result<&TaxonomyClass, TaxonomyError> {
        if !(1..=47).contains(&serial) {
            return Err(TaxonomyError::BadSerial { serial });
        }
        Ok(&self.classes[usize::from(serial) - 1])
    }

    /// Row by class name; `None` for names that do not exist.
    pub fn by_name(&self, name: &ClassName) -> Option<&TaxonomyClass> {
        self.classes
            .iter()
            .find(|c| c.designation.name() == Some(name))
    }

    /// Only the implementable (named) rows.
    pub fn implementable(&self) -> impl Iterator<Item = &TaxonomyClass> {
        self.classes.iter().filter(|c| c.is_implementable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_47_rows_in_serial_order() {
        let t = Taxonomy::extended();
        assert_eq!(t.classes().len(), 47);
        for (i, c) in t.classes().iter().enumerate() {
            assert_eq!(usize::from(c.serial), i + 1);
        }
    }

    #[test]
    fn four_rows_are_not_implementable() {
        let t = Taxonomy::extended();
        let ni: Vec<u8> = t
            .classes()
            .iter()
            .filter(|c| !c.is_implementable())
            .map(|c| c.serial)
            .collect();
        assert_eq!(ni, vec![11, 12, 13, 14]);
        assert_eq!(t.implementable().count(), 43);
    }

    #[test]
    fn spot_check_rows_against_paper() {
        let t = Taxonomy::extended();
        // Row 1: DUP — 0 | 1 | none | none | none | 1-1 | none.
        assert_eq!(
            t.by_serial(1).unwrap().row_notation(),
            "0 | 1 | none | none | none | 1-1 | none"
        );
        // Row 3: DMP-II — 0 | n | none | none | none | n-n | nxn.
        let r3 = t.by_serial(3).unwrap();
        assert_eq!(r3.designation.to_string(), "DMP-II");
        assert_eq!(r3.row_notation(), "0 | n | none | none | none | n-n | nxn");
        // Row 6: IUP.
        assert_eq!(
            t.by_serial(6).unwrap().row_notation(),
            "1 | 1 | none | 1-1 | 1-1 | 1-1 | none"
        );
        // Row 10: IAP-IV — 1 | n | none | 1-n | 1-1 | nxn | nxn.
        let r10 = t.by_serial(10).unwrap();
        assert_eq!(r10.designation.to_string(), "IAP-IV");
        assert_eq!(r10.row_notation(), "1 | n | none | 1-n | 1-1 | nxn | nxn");
        // Row 14: NI — n | 1 | nxn | n-1 | nxn | 1-1 | none.
        let r14 = t.by_serial(14).unwrap();
        assert_eq!(r14.designation.to_string(), "NI");
        assert_eq!(r14.row_notation(), "n | 1 | nxn | n-1 | nxn | 1-1 | none");
        // Row 28: IMP-XIV — n | n | none | nxn | nxn | n-n | nxn.
        let r28 = t.by_serial(28).unwrap();
        assert_eq!(r28.designation.to_string(), "IMP-XIV");
        assert_eq!(r28.row_notation(), "n | n | none | nxn | nxn | n-n | nxn");
        // Row 31: ISP-I — n | n | nxn | n-n | n-n | n-n | none.
        let r31 = t.by_serial(31).unwrap();
        assert_eq!(r31.designation.to_string(), "ISP-I");
        assert_eq!(r31.row_notation(), "n | n | nxn | n-n | n-n | n-n | none");
        // Row 46: ISP-XVI — everything crossbar.
        let r46 = t.by_serial(46).unwrap();
        assert_eq!(r46.designation.to_string(), "ISP-XVI");
        assert_eq!(r46.row_notation(), "n | n | nxn | nxn | nxn | nxn | nxn");
        // Row 47: USP on LUTs.
        let r47 = t.by_serial(47).unwrap();
        assert_eq!(r47.granularity, Granularity::FineLut);
        assert_eq!(r47.row_notation(), "v | v | vxv | vxv | vxv | vxv | vxv");
    }

    #[test]
    fn by_name_finds_every_named_class() {
        let t = Taxonomy::extended();
        for c in t.implementable() {
            let found = t.by_name(c.name()).unwrap();
            assert_eq!(found.serial, c.serial);
        }
    }

    #[test]
    fn by_serial_bounds_checked() {
        let t = Taxonomy::extended();
        assert!(t.by_serial(0).is_err());
        assert!(t.by_serial(48).is_err());
        assert!(t.by_serial(47).is_ok());
    }

    #[test]
    fn template_specs_of_named_classes_are_valid() {
        // Every named class's canonical spec should pass hard validation
        // (the NI rows are excluded — they are the "impossible" shapes, but
        // note their impossibility is semantic, not structural).
        let t = Taxonomy::extended();
        for c in t.implementable() {
            let spec = c.template_spec();
            spec.validate()
                .unwrap_or_else(|e| panic!("class {} template invalid: {e}", c.serial));
        }
    }

    #[test]
    fn all_47_rows_are_structurally_distinct() {
        let t = Taxonomy::extended();
        for a in t.classes() {
            for b in t.classes() {
                if a.serial != b.serial {
                    assert!(
                        (a.ips, a.dps, a.connectivity, a.granularity)
                            != (b.ips, b.dps, b.connectivity, b.granularity),
                        "rows {} and {} coincide",
                        a.serial,
                        b.serial
                    );
                }
            }
        }
    }

    #[test]
    fn imp_and_isp_differ_only_in_ip_ip() {
        let t = Taxonomy::extended();
        for code in 0u8..16 {
            let imp = t.by_serial(15 + code).unwrap();
            let isp = t.by_serial(31 + code).unwrap();
            assert_eq!(imp.connectivity.link(Relation::IpIp), Link::None);
            assert_eq!(isp.connectivity.link(Relation::IpIp), Link::crossbar_n_n());
            for r in [
                Relation::IpDp,
                Relation::IpIm,
                Relation::DpDm,
                Relation::DpDp,
            ] {
                assert_eq!(imp.connectivity.link(r), isp.connectivity.link(r));
            }
        }
    }
}

//! The flexibility scoring system (Section III-B, Table II).
//!
//! Flexibility is "the ability of a computer architecture to morph into a
//! different computing machine".  The paper's scoring system:
//!
//! * the presence of `n` IPs or DPs each scores **1 point** (these are the
//!   "+k" group offsets printed in the Table II section headers);
//! * every switch of type `x` (crossbar) scores **1 point**;
//! * universal-flow machines get **one extra point** for the *variable*
//!   number of IPs and DPs.
//!
//! The numbers are relative: data-flow and instruction-flow scores are not
//! comparable with each other (the machines cannot substitute one another),
//! but both are comparable with a universal-flow machine's score.

use skilltax_model::ArchSpec;

use crate::class::{Taxonomy, TaxonomyClass};
use crate::name::{ClassName, MachineType};

/// Itemised flexibility score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlexibilityBreakdown {
    /// 1 point per plural (`n` or `v`) block count (IPs, DPs).
    pub count_points: u32,
    /// 1 extra point if the counts are variable (`v`) — the universal-flow
    /// bonus.
    pub variable_bonus: u32,
    /// 1 point per crossbar switch among the five relations.
    pub crossbar_points: u32,
}

impl FlexibilityBreakdown {
    /// Total flexibility value (the Table II number).
    pub fn total(&self) -> u32 {
        self.count_points + self.variable_bonus + self.crossbar_points
    }

    /// The "+k" group offset printed in the Table II section headers
    /// (everything except the per-crossbar points).
    pub fn group_offset(&self) -> u32 {
        self.count_points + self.variable_bonus
    }
}

/// Compute the itemised flexibility score of an architecture description.
pub fn breakdown_of_spec(spec: &ArchSpec) -> FlexibilityBreakdown {
    let count_points = u32::from(spec.ips.is_plural()) + u32::from(spec.dps.is_plural());
    let variable_bonus = u32::from(spec.is_universal());
    let crossbar_points = spec.connectivity.crossbar_count();
    FlexibilityBreakdown {
        count_points,
        variable_bonus,
        crossbar_points,
    }
}

/// Total flexibility value of an architecture description.
pub fn flexibility_of_spec(spec: &ArchSpec) -> u32 {
    breakdown_of_spec(spec).total()
}

/// Total flexibility value of a Table I class (via its canonical template).
pub fn flexibility_of_class(class: &TaxonomyClass) -> u32 {
    flexibility_of_spec(&class.template_spec())
}

/// Flexibility of a class *name* (convenience: looks the class up in the
/// extended taxonomy).  Returns `None` for names not in Table I.
pub fn flexibility_of_name(name: &ClassName) -> Option<u32> {
    Taxonomy::extended().by_name(name).map(flexibility_of_class)
}

/// One row of Table II: a named class and its relative flexibility value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexibilityEntry {
    /// The class name.
    pub name: ClassName,
    /// The Table II group header this class appears under.
    pub group: &'static str,
    /// The group's "+k" offset as printed in the paper's header.
    pub group_offset: u32,
    /// The flexibility value.
    pub flexibility: u32,
}

/// Regenerate Table II: every named class with its flexibility value, in
/// the paper's order (DUP; DMP; IUP; IAP; IMP; ISP; USP).
pub fn flexibility_table() -> Vec<FlexibilityEntry> {
    let group_label = |class: &TaxonomyClass| -> &'static str {
        let name = class.name();
        match (name.machine, name.processing) {
            (MachineType::DataFlow, crate::name::ProcessingType::Uni) => {
                "Data Flow -> Uni Processor (+0)"
            }
            (MachineType::DataFlow, _) => "Data Flow -> Multi Processor (+1)",
            (MachineType::InstructionFlow, crate::name::ProcessingType::Uni) => {
                "Instruction Flow -> Uni Processor (+0)"
            }
            (MachineType::InstructionFlow, crate::name::ProcessingType::Array) => {
                "Instruction Flow -> Array Processor (+1)"
            }
            (MachineType::InstructionFlow, _) => "Instruction Flow -> Multi Processor (+2)",
            (MachineType::UniversalFlow, _) => "Universal Flow -> Fine Grained (+3)",
        }
    };
    Taxonomy::extended()
        .implementable()
        .map(|class| {
            let breakdown = breakdown_of_spec(&class.template_spec());
            FlexibilityEntry {
                name: *class.name(),
                group: group_label(class),
                group_offset: breakdown.group_offset(),
                flexibility: breakdown.total(),
            }
        })
        .collect()
}

/// Are the flexibility values of two machine types comparable?
///
/// Per Section III-B: data-flow and instruction-flow numbers are **not**
/// comparable (the machines cannot replace each other), but each is
/// comparable with a universal-flow machine's number.
pub fn comparable(a: MachineType, b: MachineType) -> bool {
    a == b || a == MachineType::UniversalFlow || b == MachineType::UniversalFlow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roman::to_roman;
    use skilltax_model::dsl::parse_row;

    /// The complete Table II from the paper.
    fn paper_table_ii() -> Vec<(String, u32)> {
        let mut rows: Vec<(String, u32)> = vec![("DUP".into(), 0), ("IUP".into(), 0)];
        for (i, f) in [(1u16, 1u32), (2, 2), (3, 2), (4, 3)] {
            rows.push((format!("DMP-{}", to_roman(i)), f));
            rows.push((format!("IAP-{}", to_roman(i)), f));
        }
        let imp = [2u32, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6];
        for (i, f) in imp.iter().enumerate() {
            rows.push((format!("IMP-{}", to_roman(i as u16 + 1)), *f));
            rows.push((format!("ISP-{}", to_roman(i as u16 + 1)), *f + 1));
        }
        rows.push(("USP".into(), 8));
        rows
    }

    #[test]
    fn scoring_reproduces_table_ii_exactly() {
        for (name, expected) in paper_table_ii() {
            let parsed: ClassName = name.parse().unwrap();
            let got = flexibility_of_name(&parsed)
                .unwrap_or_else(|| panic!("{name} missing from taxonomy"));
            assert_eq!(got, expected, "flexibility of {name}");
        }
    }

    #[test]
    fn flexibility_table_covers_all_43_named_classes() {
        let table = flexibility_table();
        assert_eq!(table.len(), 43);
        let expected = paper_table_ii();
        for entry in &table {
            let want = expected
                .iter()
                .find(|(n, _)| *n == entry.name.to_string())
                .map(|(_, f)| *f)
                .unwrap();
            assert_eq!(entry.flexibility, want, "{}", entry.name);
        }
    }

    #[test]
    fn group_offsets_match_paper_headers() {
        let table = flexibility_table();
        for entry in &table {
            let expected_offset = match entry.group {
                g if g.contains("(+0)") => 0,
                g if g.contains("(+1)") => 1,
                g if g.contains("(+2)") => 2,
                g if g.contains("(+3)") => 3,
                g => panic!("unexpected group {g}"),
            };
            assert_eq!(
                entry.group_offset, expected_offset,
                "{} in group {}",
                entry.name, entry.group
            );
        }
    }

    #[test]
    fn breakdown_itemisation_sums_to_total() {
        let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        let b = breakdown_of_spec(&fpga);
        assert_eq!(b.count_points, 2);
        assert_eq!(b.variable_bonus, 1);
        assert_eq!(b.crossbar_points, 5);
        assert_eq!(b.total(), 8);
    }

    #[test]
    fn spec_level_scores_match_table_iii_spot_checks() {
        // (row, expected flexibility) from Table III.
        let rows = [
            ("1 | 1 | none | 1-1 | 1-1 | 1-1 | none", 0), // ARM7TDMI
            ("1 | 6 | none | 1-6 | 1-1 | 6-1 | 6x6", 2),  // IMAGINE
            ("1 | 5 | none | 1-5 | 1-1 | 5x10 | 5x5", 3), // Montium
            ("n | m | none | nxm | nxn | m-1 | mxm", 5),  // RaPiD (m≈n)
            ("0 | 64 | none | none | none | 22x1 | 64x64", 3), // Redefine
            ("n | n | nx14 | n-n | n-n | nx14 | nx14", 5), // DRRA
            ("n | n | nxn | nxn | nxn | nxn | nxn", 7),   // Matrix
            ("v | v | vxv | vxv | vxv | vxv | vxv", 8),   // FPGA
        ];
        for (row, expected) in rows {
            let spec = parse_row("spot", row).unwrap();
            assert_eq!(flexibility_of_spec(&spec), expected, "{row}");
        }
    }

    #[test]
    fn comparability_rules() {
        use MachineType::*;
        assert!(comparable(DataFlow, DataFlow));
        assert!(!comparable(DataFlow, InstructionFlow));
        assert!(comparable(DataFlow, UniversalFlow));
        assert!(comparable(InstructionFlow, UniversalFlow));
        assert!(comparable(UniversalFlow, UniversalFlow));
    }

    #[test]
    fn usp_is_the_most_flexible_class() {
        let table = flexibility_table();
        let usp = table.iter().find(|e| e.name.to_string() == "USP").unwrap();
        for entry in &table {
            assert!(entry.flexibility <= usp.flexibility, "{}", entry.name);
        }
    }
}

//! The naming hierarchy of Fig 2 as a data structure.
//!
//! Fig 2 draws the tree: *Computing Machines* splits into Data Flow,
//! Instruction Flow and Universal Flow; each machine type splits into its
//! processing types; each processing type carries its named classes.

use crate::class::Taxonomy;
use crate::name::{ClassName, MachineType, ProcessingType};

/// A node in the hierarchy tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyNode {
    /// Display label.
    pub label: String,
    /// Classes that live directly at this node (leaves carry them).
    pub classes: Vec<ClassName>,
    /// Child nodes.
    pub children: Vec<HierarchyNode>,
}

impl HierarchyNode {
    fn leaf(label: impl Into<String>, classes: Vec<ClassName>) -> Self {
        HierarchyNode {
            label: label.into(),
            classes,
            children: Vec::new(),
        }
    }

    fn branch(label: impl Into<String>, children: Vec<HierarchyNode>) -> Self {
        HierarchyNode {
            label: label.into(),
            classes: Vec::new(),
            children,
        }
    }

    /// Total number of classes in this subtree.
    pub fn class_count(&self) -> usize {
        self.classes.len()
            + self
                .children
                .iter()
                .map(HierarchyNode::class_count)
                .sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(HierarchyNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Find the node for a processing type under a machine type, if present.
    pub fn find(&self, label: &str) -> Option<&HierarchyNode> {
        if self.label == label {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(label))
    }

    /// Render the subtree as an indented ASCII tree (Fig 2).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, is_last: bool, is_root: bool) {
        if is_root {
            out.push_str(&self.label);
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "`-- " } else { "|-- " });
            out.push_str(&self.label);
        }
        if !self.classes.is_empty() {
            let names: Vec<String> = self.classes.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("  [{}]", summarise(&names)));
        }
        out.push('\n');
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "    " } else { "|   " })
        };
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == n, false);
        }
    }
}

/// Compress `["IMP-I", ..., "IMP-XVI"]` into `"IMP-I..XVI"` for rendering.
fn summarise(names: &[String]) -> String {
    if names.len() <= 2 {
        return names.join(", ");
    }
    let first = &names[0];
    let last = names.last().unwrap();
    match (first.split_once('-'), last.split_once('-')) {
        (Some((stem_a, lo)), Some((stem_b, hi))) if stem_a == stem_b => {
            format!("{stem_a}-{lo}..{hi}")
        }
        _ => names.join(", "),
    }
}

/// Build the Fig 2 hierarchy from the extended taxonomy.
pub fn hierarchy() -> HierarchyNode {
    let taxonomy = Taxonomy::extended();
    let classes_of = |machine: MachineType, processing: ProcessingType| -> Vec<ClassName> {
        taxonomy
            .implementable()
            .map(|c| *c.name())
            .filter(|n| n.machine == machine && n.processing == processing)
            .collect()
    };

    let data = HierarchyNode::branch(
        "Data Flow",
        vec![
            HierarchyNode::leaf(
                "Uni Processor",
                classes_of(MachineType::DataFlow, ProcessingType::Uni),
            ),
            HierarchyNode::leaf(
                "Multi Processor",
                classes_of(MachineType::DataFlow, ProcessingType::Multi),
            ),
        ],
    );
    let instruction = HierarchyNode::branch(
        "Instruction Flow",
        vec![
            HierarchyNode::leaf(
                "Uni Processor",
                classes_of(MachineType::InstructionFlow, ProcessingType::Uni),
            ),
            HierarchyNode::leaf(
                "Array Processor",
                classes_of(MachineType::InstructionFlow, ProcessingType::Array),
            ),
            HierarchyNode::leaf(
                "Multi Processor",
                classes_of(MachineType::InstructionFlow, ProcessingType::Multi),
            ),
            HierarchyNode::leaf(
                "Spatial Processor",
                classes_of(MachineType::InstructionFlow, ProcessingType::Spatial),
            ),
        ],
    );
    let universal = HierarchyNode::branch(
        "Universal Flow",
        vec![HierarchyNode::leaf(
            "Spatial Computing",
            classes_of(MachineType::UniversalFlow, ProcessingType::Spatial),
        )],
    );
    HierarchyNode::branch("Computing Machines", vec![data, instruction, universal])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_contains_all_named_classes() {
        assert_eq!(hierarchy().class_count(), 43);
    }

    #[test]
    fn hierarchy_shape_matches_fig_2() {
        let root = hierarchy();
        assert_eq!(root.children.len(), 3);
        assert_eq!(root.depth(), 3);
        let labels: Vec<&str> = root.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["Data Flow", "Instruction Flow", "Universal Flow"]);
        assert_eq!(root.children[0].children.len(), 2); // Uni, Multi
        assert_eq!(root.children[1].children.len(), 4); // Uni, Array, Multi, Spatial
        assert_eq!(root.children[2].children.len(), 1); // Spatial
    }

    #[test]
    fn find_locates_processing_nodes() {
        let root = hierarchy();
        let spatial = root.find("Spatial Processor").unwrap();
        assert_eq!(spatial.classes.len(), 16);
        assert!(root.find("Quantum Processor").is_none());
    }

    #[test]
    fn render_produces_tree_with_ranges() {
        let text = hierarchy().render();
        assert!(text.starts_with("Computing Machines"));
        assert!(text.contains("IMP-I..XVI"), "{text}");
        assert!(text.contains("DUP"));
        assert!(text.contains("USP"));
        // Every line after the root is tree-drawn.
        for line in text.lines().skip(1) {
            assert!(
                line.starts_with("|") || line.starts_with("`") || line.starts_with(' '),
                "bad tree line: {line}"
            );
        }
    }

    #[test]
    fn summarise_compresses_runs() {
        let names: Vec<String> = (1..=4)
            .map(|i| format!("DMP-{}", crate::roman::to_roman(i)))
            .collect();
        assert_eq!(summarise(&names), "DMP-I..IV");
        assert_eq!(summarise(&["DUP".to_owned()]), "DUP");
    }
}

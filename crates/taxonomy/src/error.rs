//! Typed errors for taxonomy operations.

use std::fmt;

/// Errors raised while naming or classifying architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// A Roman numeral could not be parsed.
    RomanParse {
        /// The offending token.
        token: String,
    },
    /// A class name could not be parsed (e.g. `"IMP-XVII"`).
    NameParse {
        /// The offending token.
        token: String,
        /// What went wrong.
        reason: String,
    },
    /// The architecture falls in one of the not-implementable classes
    /// (11–14 in Table I: multiple IPs driving a single DP).
    NotImplementable {
        /// The Table I serial number (11–14).
        serial: u8,
        /// Explanation of the structural contradiction.
        reason: String,
    },
    /// The description does not match any class of the extended taxonomy.
    Unclassifiable {
        /// Explanation of which rule failed.
        reason: String,
    },
    /// A serial number outside 1–47 was requested.
    BadSerial {
        /// The offending serial.
        serial: u8,
    },
}

impl TaxonomyError {
    pub(crate) fn roman_parse(token: &str) -> Self {
        TaxonomyError::RomanParse {
            token: token.to_owned(),
        }
    }

    pub(crate) fn name_parse(token: &str, reason: impl Into<String>) -> Self {
        TaxonomyError::NameParse {
            token: token.to_owned(),
            reason: reason.into(),
        }
    }

    pub(crate) fn unclassifiable(reason: impl Into<String>) -> Self {
        TaxonomyError::Unclassifiable {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::RomanParse { token } => {
                write!(f, "cannot parse Roman numeral {token:?}")
            }
            TaxonomyError::NameParse { token, reason } => {
                write!(f, "cannot parse class name {token:?}: {reason}")
            }
            TaxonomyError::NotImplementable { serial, reason } => {
                write!(f, "not implementable (Table I class {serial}): {reason}")
            }
            TaxonomyError::Unclassifiable { reason } => {
                write!(
                    f,
                    "architecture does not fit the extended taxonomy: {reason}"
                )
            }
            TaxonomyError::BadSerial { serial } => {
                write!(f, "class serial {serial} is outside 1..=47")
            }
        }
    }
}

impl std::error::Error for TaxonomyError {}

//! Skillicorn's original taxonomy (1988) — the baseline the paper
//! extends.
//!
//! Skillicorn classified by the counts of IPs and DPs (0, 1 or n) and by
//! the structure of four relations: IP–DP, IP–IM, DP–DM and DP–DP.  The
//! paper adds (a) the IP–IP relation and (b) the variable count `v`; the
//! abstract counts **19 new classes** from those two extensions.  This
//! module implements the baseline as a *projection*: every extended class
//! either maps onto a Skillicorn class (dropping nothing) or is one of
//! the 19 that did not exist in 1988.

use std::fmt;

use skilltax_model::{Connectivity, Count, Relation};

use crate::class::{Taxonomy, TaxonomyClass};

/// A class of the original 1988 taxonomy: counts plus the four original
/// relations (no IP–IP, no `v`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SkillicornClass {
    /// IP count (0, 1 or n — never `v`).
    pub ips: Count,
    /// DP count.
    pub dps: Count,
    /// The four original relations (IP–IP is always `none` here).
    pub connectivity: Connectivity,
}

impl fmt::Display for SkillicornClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | {} | {} | {}",
            self.ips,
            self.dps,
            self.connectivity.link(Relation::IpDp),
            self.connectivity.link(Relation::IpIm),
            self.connectivity.link(Relation::DpDm),
            self.connectivity.link(Relation::DpDp),
        )
    }
}

/// Project an extended class onto the original taxonomy.  Returns `None`
/// for the classes Skillicorn could not express:
///
/// * any class with IP–IP connectivity (rows 13–14 and 31–46), and
/// * the variable-count universal class (row 47).
pub fn project(class: &TaxonomyClass) -> Option<SkillicornClass> {
    if class.connectivity.link(Relation::IpIp).is_connected() {
        return None;
    }
    if class.ips.is_variable() || class.dps.is_variable() {
        return None;
    }
    Some(SkillicornClass {
        ips: class.ips,
        dps: class.dps,
        connectivity: class.connectivity,
    })
}

/// The baseline table: every extended row with a 1988 ancestor, as
/// `(extended serial, projection)`.
pub fn skillicorn_table() -> Vec<(u8, SkillicornClass)> {
    Taxonomy::extended()
        .classes()
        .iter()
        .filter_map(|c| project(c).map(|p| (c.serial, p)))
        .collect()
}

/// The extended rows that have **no** 1988 ancestor — the paper's
/// contribution, as `(serial, designation)` pairs.
pub fn new_classes() -> Vec<(u8, String)> {
    Taxonomy::extended()
        .classes()
        .iter()
        .filter(|c| project(c).is_none())
        .map(|c| (c.serial, c.designation.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_19_new_classes_as_the_abstract_claims() {
        // "we extend the well known Skillicorn taxonomy to create new
        // classes" — the abstract's count is 19.
        let new = new_classes();
        assert_eq!(new.len(), 19, "{new:?}");
        let serials: Vec<u8> = new.iter().map(|(s, _)| *s).collect();
        let expected: Vec<u8> = [13u8, 14].into_iter().chain(31..=47).collect();
        assert_eq!(serials, expected);
    }

    #[test]
    fn baseline_has_28_classes() {
        // 47 extended - 19 new = 28 rows expressible in 1988.
        assert_eq!(skillicorn_table().len(), 28);
    }

    #[test]
    fn projections_preserve_every_original_column() {
        for (serial, projection) in skillicorn_table() {
            let class = Taxonomy::extended().by_serial(serial).unwrap();
            assert_eq!(projection.ips, class.ips);
            assert_eq!(projection.dps, class.dps);
            for r in [
                Relation::IpDp,
                Relation::IpIm,
                Relation::DpDm,
                Relation::DpDp,
            ] {
                assert_eq!(
                    projection.connectivity.link(r),
                    class.connectivity.link(r),
                    "row {serial} {r}"
                );
            }
        }
    }

    #[test]
    fn all_spatial_and_universal_classes_are_new() {
        for (serial, name) in new_classes() {
            let is_isp = name.starts_with("ISP");
            let is_usp = name == "USP";
            let is_ni = name == "NI" && (13..=14).contains(&serial);
            assert!(is_isp || is_usp || is_ni, "{serial}: {name}");
        }
    }

    #[test]
    fn projections_are_distinct_rows() {
        let table = skillicorn_table();
        for (i, (_, a)) in table.iter().enumerate() {
            for (_, b) in table.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate baseline row");
            }
        }
    }

    #[test]
    fn display_prints_the_four_column_structure() {
        let (serial, dup) = &skillicorn_table()[0];
        assert_eq!(*serial, 1);
        assert_eq!(dup.to_string(), "0 | 1 | none | none | 1-1 | none");
    }
}

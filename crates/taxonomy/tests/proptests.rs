//! Property-style tests for the taxonomy: naming, classification and
//! scoring invariants over the whole class space.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_model::rng::{sweep_cases, XorShift64};
use skilltax_model::{Link, Relation};
use skilltax_taxonomy::{
    classify, compare_names, crossbar_relations_of, flexibility_of_class, flexibility_of_spec,
    provides, satisfying_classes, Capability, ClassName, Taxonomy,
};

fn class_index(rng: &mut XorShift64) -> usize {
    rng.below_usize(43)
}

fn named_class(i: usize) -> &'static skilltax_taxonomy::TaxonomyClass {
    Taxonomy::extended()
        .implementable()
        .nth(i)
        .expect("43 named classes")
}

#[test]
fn every_name_parses_back_to_itself() {
    // The class space is small: just cover it exhaustively.
    for i in 0..43 {
        let name = *named_class(i).name();
        let parsed: ClassName = name.to_string().parse().unwrap();
        assert_eq!(parsed, name);
    }
}

#[test]
fn subtype_numeral_encodes_exactly_the_crossbar_relations() {
    for i in 0..43 {
        let class = named_class(i);
        // The crossbar set derived from the *name* equals the crossbar set
        // present in the canonical *structure*.
        let from_name = crossbar_relations_of(class.name());
        let mut from_structure: Vec<Relation> = class.connectivity.crossbar_relations();
        from_structure.sort();
        assert_eq!(from_name, from_structure, "class {i}");
    }
}

#[test]
fn flexibility_equals_crossbars_plus_count_points() {
    for i in 0..43 {
        let class = named_class(i);
        let spec = class.template_spec();
        let expected = spec.connectivity.crossbar_count()
            + u32::from(spec.ips.is_plural())
            + u32::from(spec.dps.is_plural())
            + u32::from(spec.is_universal());
        assert_eq!(flexibility_of_spec(&spec), expected, "class {i}");
    }
}

#[test]
fn comparison_is_symmetric_in_structure() {
    sweep_cases(0x7A0, 200, |case, rng| {
        let (i, j) = (class_index(rng), class_index(rng));
        let (a, b) = (*named_class(i).name(), *named_class(j).name());
        let ab = compare_names(a, b);
        let ba = compare_names(b, a);
        assert_eq!(ab.same_machine, ba.same_machine, "case {case}");
        assert_eq!(ab.same_processing, ba.same_processing, "case {case}");
        assert_eq!(ab.same_sub_type, ba.same_sub_type, "case {case}");
        assert_eq!(ab.shared_crossbars, ba.shared_crossbars, "case {case}");
        assert_eq!(ab.only_in_a, ba.only_in_b, "case {case}");
        assert_eq!(
            ab.flexibility_comparable, ba.flexibility_comparable,
            "case {case}"
        );
    });
}

#[test]
fn downgrading_a_crossbar_lowers_or_keeps_class_flexibility() {
    for i in 0..43 {
        let class = named_class(i);
        let spec = class.template_spec();
        if spec.is_universal() {
            continue; // USP's links are variable; downgrades below cover coarse classes.
        }
        for relation in Relation::ALL {
            if let Link::Connected(sw) = spec.connectivity.link(relation) {
                if sw.is_crossbar() {
                    let mut downgraded = spec.clone();
                    downgraded.connectivity = downgraded.connectivity.with(
                        relation,
                        Link::Connected(skilltax_model::Switch::new(
                            skilltax_model::SwitchKind::Direct,
                            sw.left,
                            sw.right,
                        )),
                    );
                    assert!(
                        flexibility_of_spec(&downgraded) < flexibility_of_spec(&spec),
                        "class {i} relation {relation:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn capability_filtering_is_monotone() {
    sweep_cases(0x7A1, 200, |case, rng| {
        // Adding a requirement can only shrink the satisfying set.
        let i = class_index(rng);
        let caps: Vec<Capability> = (0..rng.below_usize(4))
            .map(|_| *rng.pick(&Capability::ALL))
            .collect();
        let full = satisfying_classes(&caps);
        let mut extended = caps.clone();
        extended.push(Capability::ALL[i % Capability::ALL.len()]);
        let shrunk = satisfying_classes(&extended);
        assert!(shrunk.len() <= full.len(), "case {case}");
        for class in &shrunk {
            assert!(full.iter().any(|c| c.serial == class.serial), "case {case}");
        }
    });
}

#[test]
fn provided_capabilities_never_exceed_flexibility_rank() {
    for i in 0..43 {
        // A class with zero flexibility provides no crossbar-backed
        // capability; capability count grows with flexibility.
        let class = named_class(i);
        let crossbar_caps = [
            Capability::LaneExchange,
            Capability::SharedMemory,
            Capability::SharedProgramStore,
            Capability::ProcessorRebinding,
        ];
        let provided = crossbar_caps
            .iter()
            .filter(|&&c| provides(class.name(), c))
            .count() as u32;
        assert!(provided <= flexibility_of_class(class), "class {i}");
    }
}

#[test]
fn roman_numerals_round_trip_under_random_probing() {
    use skilltax_taxonomy::roman::{from_roman, to_roman};
    // Exhaustive round trip over the whole supported domain.
    for n in 1..=3999u16 {
        assert_eq!(from_roman(&to_roman(n)), Ok(n), "value {n}");
    }
    // Seeded sweep: random single-character mutations of valid numerals
    // either fail to parse or parse to a value whose canonical spelling is
    // exactly the mutated string (the parser accepts *only* canonical
    // forms, never a sloppy variant).
    sweep_cases(0x7A2, 300, |case, rng| {
        let n = 1 + (rng.below(3999)) as u16;
        let mut s: Vec<char> = to_roman(n).chars().collect();
        let i = rng.below_usize(s.len());
        s[i] = *rng.pick(&['I', 'V', 'X', 'L', 'C', 'D', 'M', 'Q']);
        let mutated: String = s.iter().collect();
        if let Ok(v) = from_roman(&mutated) {
            assert_eq!(to_roman(v), mutated, "case {case}: non-canonical accept");
        }
    });
}

#[test]
fn roman_parser_rejects_malformed_numerals() {
    use skilltax_taxonomy::roman::from_roman;
    for bad in [
        "", "IIII", "VX", "IL", "IC", "XM", "IVX", "MMMM", "mcmxc", "iv", "MCMXC ", " I",
    ] {
        assert!(from_roman(bad).is_err(), "{bad:?} should be rejected");
    }
    assert_eq!(from_roman("MCMXC"), Ok(1990));
}

#[test]
fn classify_is_deterministic() {
    for i in 0..43 {
        let spec = named_class(i).template_spec();
        let a = classify(&spec).unwrap();
        let b = classify(&spec).unwrap();
        assert_eq!(a.serial(), b.serial());
        assert_eq!(a.name(), b.name());
    }
}

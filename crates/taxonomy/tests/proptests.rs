//! Property tests for the taxonomy: naming, classification and scoring
//! invariants over the whole class space.

use proptest::prelude::*;

use skilltax_model::{Link, Relation};
use skilltax_taxonomy::{
    classify, compare_names, crossbar_relations_of, flexibility_of_class, flexibility_of_spec,
    provides, satisfying_classes, Capability, ClassName, Taxonomy,
};

fn class_index() -> impl Strategy<Value = usize> {
    0usize..43
}

fn named_class(i: usize) -> &'static skilltax_taxonomy::TaxonomyClass {
    Taxonomy::extended().implementable().nth(i).expect("43 named classes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_name_parses_back_to_itself(i in class_index()) {
        let name = *named_class(i).name();
        let parsed: ClassName = name.to_string().parse().unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn subtype_numeral_encodes_exactly_the_crossbar_relations(i in class_index()) {
        let class = named_class(i);
        // The crossbar set derived from the *name* equals the crossbar set
        // present in the canonical *structure*.
        let from_name = crossbar_relations_of(class.name());
        let mut from_structure: Vec<Relation> = class
            .connectivity
            .crossbar_relations();
        from_structure.sort();
        prop_assert_eq!(from_name, from_structure);
    }

    #[test]
    fn flexibility_equals_crossbars_plus_count_points(i in class_index()) {
        let class = named_class(i);
        let spec = class.template_spec();
        let expected = spec.connectivity.crossbar_count()
            + u32::from(spec.ips.is_plural())
            + u32::from(spec.dps.is_plural())
            + u32::from(spec.is_universal());
        prop_assert_eq!(flexibility_of_spec(&spec), expected);
    }

    #[test]
    fn comparison_is_symmetric_in_structure(i in class_index(), j in class_index()) {
        let (a, b) = (*named_class(i).name(), *named_class(j).name());
        let ab = compare_names(a, b);
        let ba = compare_names(b, a);
        prop_assert_eq!(ab.same_machine, ba.same_machine);
        prop_assert_eq!(ab.same_processing, ba.same_processing);
        prop_assert_eq!(ab.same_sub_type, ba.same_sub_type);
        prop_assert_eq!(ab.shared_crossbars, ba.shared_crossbars);
        prop_assert_eq!(ab.only_in_a, ba.only_in_b);
        prop_assert_eq!(ab.flexibility_comparable, ba.flexibility_comparable);
    }

    #[test]
    fn downgrading_a_crossbar_lowers_or_keeps_class_flexibility(i in class_index(), which in 0usize..5) {
        let class = named_class(i);
        let spec = class.template_spec();
        let relation = Relation::ALL[which];
        if spec.is_universal() {
            return Ok(()); // USP's links are variable; downgrades below cover coarse classes.
        }
        if let Link::Connected(sw) = spec.connectivity.link(relation) {
            if sw.is_crossbar() {
                let mut downgraded = spec.clone();
                downgraded.connectivity = downgraded.connectivity.with(
                    relation,
                    Link::Connected(skilltax_model::Switch::new(
                        skilltax_model::SwitchKind::Direct,
                        sw.left,
                        sw.right,
                    )),
                );
                prop_assert!(flexibility_of_spec(&downgraded) < flexibility_of_spec(&spec));
            }
        }
    }

    #[test]
    fn capability_filtering_is_monotone(i in class_index(), caps in prop::collection::vec(0usize..10, 0..4)) {
        // Adding a requirement can only shrink the satisfying set.
        let caps: Vec<Capability> = caps.into_iter().map(|c| Capability::ALL[c]).collect();
        let full = satisfying_classes(&caps);
        let mut extended = caps.clone();
        extended.push(Capability::ALL[i % Capability::ALL.len()]);
        let shrunk = satisfying_classes(&extended);
        prop_assert!(shrunk.len() <= full.len());
        for class in &shrunk {
            prop_assert!(full.iter().any(|c| c.serial == class.serial));
        }
    }

    #[test]
    fn provided_capabilities_never_exceed_flexibility_rank(i in class_index()) {
        // A class with zero flexibility provides no crossbar-backed
        // capability; capability count grows with flexibility.
        let class = named_class(i);
        let crossbar_caps = [
            Capability::LaneExchange,
            Capability::SharedMemory,
            Capability::SharedProgramStore,
            Capability::ProcessorRebinding,
        ];
        let provided = crossbar_caps
            .iter()
            .filter(|&&c| provides(class.name(), c))
            .count() as u32;
        prop_assert!(provided <= flexibility_of_class(class));
    }

    #[test]
    fn classify_is_deterministic(i in class_index()) {
        let spec = named_class(i).template_spec();
        let a = classify(&spec).unwrap();
        let b = classify(&spec).unwrap();
        prop_assert_eq!(a.serial(), b.serial());
        prop_assert_eq!(a.name(), b.name());
    }
}

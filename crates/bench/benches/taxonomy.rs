//! Benchmarks behind Tables I–III: table enumeration, classification and
//! flexibility scoring (bench_table1 / bench_table2 / bench_table3).

use skilltax_bench::artifacts;
use skilltax_bench::microbench::Harness;
use skilltax_catalog::full_survey;
use skilltax_taxonomy::{classify, flexibility_of_spec, flexibility_table, ClassName, Taxonomy};

fn bench_table1(h: &mut Harness) {
    // The shared table is cached behind a OnceLock; measure the full
    // render, which touches every row.
    h.bench("table1/enumerate_47_classes", artifacts::table1);
    let specs: Vec<_> = Taxonomy::extended()
        .implementable()
        .map(|c| c.template_spec())
        .collect();
    h.bench("table1/classify_all_templates", || {
        for spec in &specs {
            std::hint::black_box(classify(spec).unwrap());
        }
    });
}

fn bench_table2(h: &mut Harness) {
    h.bench("table2/flexibility_table", flexibility_table);
    h.bench("table2/render", artifacts::table2);
}

fn bench_table3(h: &mut Harness) {
    let survey = full_survey();
    h.bench("table3/classify_25_survey_entries", || {
        for entry in &survey {
            let _ = std::hint::black_box(entry.classify());
            std::hint::black_box(flexibility_of_spec(&entry.spec));
        }
    });
    h.bench("table3/regenerate_full_table", artifacts::table3);
    h.bench("table3/build_catalog", full_survey);
}

fn bench_names(h: &mut Harness) {
    let names: Vec<String> = Taxonomy::extended()
        .implementable()
        .map(|cl| cl.name().to_string())
        .collect();
    h.bench("name_parse_round_trip_43", || {
        for n in &names {
            let parsed: ClassName = n.parse().unwrap();
            std::hint::black_box(parsed.to_string());
        }
    });
}

fn main() {
    let mut h = Harness::new();
    bench_table1(&mut h);
    bench_table2(&mut h);
    bench_table3(&mut h);
    bench_names(&mut h);
    h.finish();
}

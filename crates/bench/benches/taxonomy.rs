//! Benchmarks behind Tables I–III: table enumeration, classification and
//! flexibility scoring (bench_table1 / bench_table2 / bench_table3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skilltax_bench::artifacts;
use skilltax_catalog::full_survey;
use skilltax_taxonomy::{classify, flexibility_of_spec, flexibility_table, ClassName, Taxonomy};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("enumerate_47_classes", |b| {
        // The shared table is cached behind a OnceLock; measure the full
        // render, which touches every row.
        b.iter(|| std::hint::black_box(artifacts::table1()))
    });
    g.bench_function("classify_all_templates", |b| {
        let specs: Vec<_> = Taxonomy::extended()
            .implementable()
            .map(|c| c.template_spec())
            .collect();
        b.iter(|| {
            for spec in &specs {
                std::hint::black_box(classify(spec).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.bench_function("flexibility_table", |b| {
        b.iter(|| std::hint::black_box(flexibility_table()))
    });
    g.bench_function("render", |b| b.iter(|| std::hint::black_box(artifacts::table2())));
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    let survey = full_survey();
    g.bench_function("classify_25_survey_entries", |b| {
        b.iter(|| {
            for entry in &survey {
                let _ = std::hint::black_box(entry.classify());
                std::hint::black_box(flexibility_of_spec(&entry.spec));
            }
        })
    });
    g.bench_function("regenerate_full_table", |b| {
        b.iter(|| std::hint::black_box(artifacts::table3()))
    });
    g.bench_function("build_catalog", |b| {
        b.iter_batched(full_survey, std::hint::black_box, BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_names(c: &mut Criterion) {
    let names: Vec<String> = Taxonomy::extended()
        .implementable()
        .map(|cl| cl.name().to_string())
        .collect();
    c.bench_function("name_parse_round_trip_43", |b| {
        b.iter(|| {
            for n in &names {
                let parsed: ClassName = n.parse().unwrap();
                std::hint::black_box(parsed.to_string());
            }
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1, bench_table2, bench_table3, bench_names
}
criterion_main!(benches);

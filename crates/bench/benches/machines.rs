//! Benchmarks of the executable machines (bench_morph and the machine
//! ablations): the same workload across class families, showing where the
//! flexibility/parallelism trade-off lands in simulated cycles.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skilltax_machine::array::ArraySubtype;
use skilltax_machine::morph;
use skilltax_machine::multi::MultiSubtype;
use skilltax_machine::sweep::parallel_map;
use skilltax_machine::workload::{
    run_mimd_mix_multi, run_vector_add_array, run_vector_add_multi, run_vector_add_uni,
};
use skilltax_machine::Word;

fn vectors(n: usize) -> (Vec<Word>, Vec<Word>) {
    ((0..n as Word).collect(), (0..n as Word).rev().collect())
}

fn bench_vector_add_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_add");
    for n in [8usize, 32, 128] {
        let (a, b) = vectors(n);
        g.bench_with_input(BenchmarkId::new("IUP_sequential", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(run_vector_add_uni(&a, &b).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("IAP-I_simd", n), &n, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(run_vector_add_array(ArraySubtype::I, &a, &b).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("IMP-I_simd_emulated", n), &n, |bch, _| {
            bch.iter(|| {
                std::hint::black_box(
                    run_vector_add_multi(MultiSubtype::from_index(1).unwrap(), &a, &b).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_mimd_mix(c: &mut Criterion) {
    let slices: Vec<Vec<Word>> = (0..8).map(|i| (i..i + 16).collect()).collect();
    c.bench_function("mimd_mix_8_cores", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap(),
            )
        })
    });
}

fn bench_morph(c: &mut Criterion) {
    c.bench_function("morph_demonstrations", |b| {
        b.iter(|| std::hint::black_box(morph::demonstrate().unwrap()))
    });
}

fn bench_vliw(c: &mut Criterion) {
    use skilltax_machine::vliw::{Bundle, VliwMachine, VliwProgram};
    use skilltax_machine::Instr;
    // An 8-lane heterogeneous bundle stream, Montium style.
    let lanes = 8usize;
    let mut bundles = vec![
        Bundle::broadcast(lanes, Instr::MovI(0, 3)),
        Bundle::broadcast(lanes, Instr::MovI(1, 5)),
    ];
    for _ in 0..32 {
        bundles.push(Bundle {
            slots: (0..lanes)
                .map(|lane| {
                    Some(match lane % 4 {
                        0 => Instr::Add(2, 0, 1),
                        1 => Instr::Mul(2, 0, 1),
                        2 => Instr::Sub(2, 0, 1),
                        _ => Instr::Max(2, 0, 1),
                    })
                })
                .collect(),
            control: None,
        });
    }
    bundles.push(Bundle { slots: vec![None; lanes], control: Some(Instr::Halt) });
    let program = VliwProgram::new(bundles, lanes).unwrap();
    c.bench_function("vliw_8lane_32bundles", |b| {
        b.iter(|| {
            let mut m = VliwMachine::new(
                skilltax_machine::array::ArraySubtype::I,
                lanes,
                4,
            );
            std::hint::black_box(m.run(&program).unwrap())
        })
    });
}

fn bench_parallel_sweep(c: &mut Criterion) {
    // The harness's own fan-out: many simulations across threads.
    let sizes: Vec<usize> = (2..=33).collect();
    c.bench_function("parallel_sweep_32_simulations", |b| {
        b.iter(|| {
            let results = parallel_map(sizes.clone(), |&n| {
                let (a, bv) = vectors(n);
                run_vector_add_array(ArraySubtype::I, &a, &bv).unwrap().stats.cycles
            });
            std::hint::black_box(results)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vector_add_families, bench_mimd_mix, bench_morph, bench_vliw, bench_parallel_sweep
}
criterion_main!(benches);

//! Benchmarks of the executable machines (bench_morph and the machine
//! ablations): the same workload across class families, showing where the
//! flexibility/parallelism trade-off lands in simulated cycles.

use skilltax_bench::microbench::Harness;
use skilltax_machine::array::ArraySubtype;
use skilltax_machine::morph;
use skilltax_machine::multi::MultiSubtype;
use skilltax_machine::sweep::parallel_map;
use skilltax_machine::workload::{
    run_mimd_mix_multi, run_vector_add_array, run_vector_add_multi, run_vector_add_uni,
};
use skilltax_machine::Word;

fn vectors(n: usize) -> (Vec<Word>, Vec<Word>) {
    ((0..n as Word).collect(), (0..n as Word).rev().collect())
}

fn bench_vector_add_families(h: &mut Harness) {
    for n in [8usize, 32, 128] {
        let (a, b) = vectors(n);
        h.bench(&format!("vector_add/IUP_sequential/{n}"), || {
            run_vector_add_uni(&a, &b).unwrap()
        });
        h.bench(&format!("vector_add/IAP-I_simd/{n}"), || {
            run_vector_add_array(ArraySubtype::I, &a, &b).unwrap()
        });
        h.bench(&format!("vector_add/IMP-I_simd_emulated/{n}"), || {
            run_vector_add_multi(MultiSubtype::from_index(1).unwrap(), &a, &b).unwrap()
        });
    }
}

fn bench_mimd_mix(h: &mut Harness) {
    let slices: Vec<Vec<Word>> = (0..8).map(|i| (i..i + 16).collect()).collect();
    h.bench("mimd_mix_8_cores", || {
        run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap()
    });
}

fn bench_morph(h: &mut Harness) {
    h.bench("morph_demonstrations", || morph::demonstrate().unwrap());
}

fn bench_vliw(h: &mut Harness) {
    use skilltax_machine::vliw::{Bundle, VliwMachine, VliwProgram};
    use skilltax_machine::Instr;
    // An 8-lane heterogeneous bundle stream, Montium style.
    let lanes = 8usize;
    let mut bundles = vec![
        Bundle::broadcast(lanes, Instr::MovI(0, 3)),
        Bundle::broadcast(lanes, Instr::MovI(1, 5)),
    ];
    for _ in 0..32 {
        bundles.push(Bundle {
            slots: (0..lanes)
                .map(|lane| {
                    Some(match lane % 4 {
                        0 => Instr::Add(2, 0, 1),
                        1 => Instr::Mul(2, 0, 1),
                        2 => Instr::Sub(2, 0, 1),
                        _ => Instr::Max(2, 0, 1),
                    })
                })
                .collect(),
            control: None,
        });
    }
    bundles.push(Bundle {
        slots: vec![None; lanes],
        control: Some(Instr::Halt),
    });
    let program = VliwProgram::new(bundles, lanes).unwrap();
    h.bench("vliw_8lane_32bundles", || {
        let mut m = VliwMachine::new(skilltax_machine::array::ArraySubtype::I, lanes, 4);
        m.run(&program).unwrap()
    });
}

fn bench_parallel_sweep(h: &mut Harness) {
    // The harness's own fan-out: many simulations across threads.
    let sizes: Vec<usize> = (2..=33).collect();
    h.bench("parallel_sweep_32_simulations", || {
        parallel_map(sizes.clone(), |&n| {
            let (a, bv) = vectors(n);
            run_vector_add_array(ArraySubtype::I, &a, &bv)
                .unwrap()
                .stats
                .cycles
        })
    });
}

fn main() {
    let mut h = Harness::new();
    bench_vector_add_families(&mut h);
    bench_mimd_mix(&mut h);
    bench_morph(&mut h);
    bench_vliw(&mut h);
    bench_parallel_sweep(&mut h);
    h.finish();
}

//! Benchmarks of the data-flow engine and the universal (LUT) fabric —
//! the substrates behind the DMP and USP rows of the reproduction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skilltax_machine::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::universal::{program_counter, ripple_adder, LutFabric};
use skilltax_machine::Word;

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow_tree_sum");
    let graph = library::tree_sum(64);
    let inputs: Vec<Word> = (0..64).collect();
    for dps in [1usize, 4, 16] {
        let machine = if dps == 1 {
            DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap()
        } else {
            DataflowMachine::new(DataflowSubtype::IV, dps).unwrap()
        };
        g.bench_with_input(BenchmarkId::from_parameter(dps), &machine, |b, m| {
            b.iter(|| {
                std::hint::black_box(m.run(&graph, &inputs, &Placement::RoundRobin).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_fir_graph(c: &mut Criterion) {
    let graph = library::fir(&[1, -2, 3, -4, 5, -6, 7, -8]);
    let window: Vec<Word> = (0..8).collect();
    let machine = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    c.bench_function("dataflow_fir_8tap", |b| {
        b.iter(|| std::hint::black_box(machine.run(&graph, &window, &Placement::RoundRobin)))
    });
}

fn bench_universal(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_fabric");
    let fabric = LutFabric::new(256, 4, 32);
    let adder_bs = ripple_adder(&fabric, 8).unwrap();
    g.bench_function("configure_8bit_adder", |b| {
        b.iter(|| std::hint::black_box(fabric.configure(&adder_bs).unwrap()))
    });
    let adder = fabric.configure(&adder_bs).unwrap();
    let inputs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    g.bench_function("eval_8bit_adder", |b| {
        b.iter(|| std::hint::black_box(adder.eval(&inputs).unwrap()))
    });
    let pc_bs = program_counter(&fabric, 8).unwrap();
    let mut pc = fabric.configure(&pc_bs).unwrap();
    let no_branch = vec![false; 9];
    g.bench_function("step_8bit_program_counter", |b| {
        b.iter(|| std::hint::black_box(pc.step(&no_branch).unwrap()))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dataflow, bench_fir_graph, bench_universal
}
criterion_main!(benches);

//! Benchmarks of the data-flow engine and the universal (LUT) fabric —
//! the substrates behind the DMP and USP rows of the reproduction.

use skilltax_bench::microbench::Harness;
use skilltax_machine::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::universal::{program_counter, ripple_adder, LutFabric};
use skilltax_machine::Word;

fn bench_dataflow(h: &mut Harness) {
    let graph = library::tree_sum(64);
    let inputs: Vec<Word> = (0..64).collect();
    for dps in [1usize, 4, 16] {
        let machine = if dps == 1 {
            DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap()
        } else {
            DataflowMachine::new(DataflowSubtype::IV, dps).unwrap()
        };
        h.bench(&format!("dataflow_tree_sum/{dps}"), || {
            machine
                .run(&graph, &inputs, &Placement::RoundRobin)
                .unwrap()
        });
    }
}

fn bench_fir_graph(h: &mut Harness) {
    let graph = library::fir(&[1, -2, 3, -4, 5, -6, 7, -8]);
    let window: Vec<Word> = (0..8).collect();
    let machine = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    h.bench("dataflow_fir_8tap", || {
        machine.run(&graph, &window, &Placement::RoundRobin)
    });
}

fn bench_universal(h: &mut Harness) {
    let fabric = LutFabric::new(256, 4, 32);
    let adder_bs = ripple_adder(&fabric, 8).unwrap();
    h.bench("lut_fabric/configure_8bit_adder", || {
        fabric.configure(&adder_bs).unwrap()
    });
    let adder = fabric.configure(&adder_bs).unwrap();
    let inputs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    h.bench("lut_fabric/eval_8bit_adder", || {
        adder.eval(&inputs).unwrap()
    });
    let pc_bs = program_counter(&fabric, 8).unwrap();
    let mut pc = fabric.configure(&pc_bs).unwrap();
    let no_branch = vec![false; 9];
    h.bench("lut_fabric/step_8bit_program_counter", || {
        pc.step(&no_branch).unwrap()
    });
}

fn main() {
    let mut h = Harness::new();
    bench_dataflow(&mut h);
    bench_fir_graph(&mut h);
    bench_universal(&mut h);
    h.finish();
}

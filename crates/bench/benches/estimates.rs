//! Benchmarks behind Eq 1 / Eq 2 and the Pareto exploration
//! (bench_area / bench_config_bits / bench_pareto), including the n-sweep
//! that shows how predicted cost scales with machine size.

use skilltax_bench::microbench::Harness;
use skilltax_catalog::full_survey;
use skilltax_estimate::{
    estimate_area, estimate_config_bits, pareto_front, sweep_classes, CostParams,
};

fn bench_area(h: &mut Harness) {
    let survey = full_survey();
    let params = CostParams::default();
    h.bench("area_eq1_over_survey", || {
        for entry in &survey {
            std::hint::black_box(estimate_area(&entry.spec, &params).total());
        }
    });
}

fn bench_config_bits(h: &mut Harness) {
    let survey = full_survey();
    let params = CostParams::default();
    h.bench("config_bits_eq2_over_survey", || {
        for entry in &survey {
            std::hint::black_box(estimate_config_bits(&entry.spec, &params).total());
        }
    });
}

fn bench_n_sweep(h: &mut Harness) {
    // The designer's scaling question: how do Eq 1 / Eq 2 grow with n?
    let spec =
        skilltax_model::dsl::parse_row("IMP-XVI-template", "n | n | none | nxn | nxn | nxn | nxn")
            .unwrap();
    for n in [4u32, 16, 64, 256] {
        let params = CostParams::default().with_n(n);
        h.bench(&format!("estimate_n_sweep/{n}"), || {
            std::hint::black_box(estimate_area(&spec, &params).total());
            std::hint::black_box(estimate_config_bits(&spec, &params).total());
        });
    }
}

fn bench_pareto(h: &mut Harness) {
    let params = CostParams::default();
    h.bench("pareto_sweep_and_front", || {
        let points = sweep_classes(&params);
        std::hint::black_box(pareto_front(&points))
    });
}

fn main() {
    let mut h = Harness::new();
    bench_area(&mut h);
    bench_config_bits(&mut h);
    bench_n_sweep(&mut h);
    bench_pareto(&mut h);
    h.finish();
}

//! Benchmarks behind Eq 1 / Eq 2 and the Pareto exploration
//! (bench_area / bench_config_bits / bench_pareto), including the n-sweep
//! that shows how predicted cost scales with machine size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skilltax_catalog::full_survey;
use skilltax_estimate::{
    estimate_area, estimate_config_bits, pareto_front, sweep_classes, CostParams,
};

fn bench_area(c: &mut Criterion) {
    let survey = full_survey();
    let params = CostParams::default();
    c.bench_function("area_eq1_over_survey", |b| {
        b.iter(|| {
            for entry in &survey {
                std::hint::black_box(estimate_area(&entry.spec, &params).total());
            }
        })
    });
}

fn bench_config_bits(c: &mut Criterion) {
    let survey = full_survey();
    let params = CostParams::default();
    c.bench_function("config_bits_eq2_over_survey", |b| {
        b.iter(|| {
            for entry in &survey {
                std::hint::black_box(estimate_config_bits(&entry.spec, &params).total());
            }
        })
    });
}

fn bench_n_sweep(c: &mut Criterion) {
    // The designer's scaling question: how do Eq 1 / Eq 2 grow with n?
    let mut g = c.benchmark_group("estimate_n_sweep");
    let spec = skilltax_model::dsl::parse_row(
        "IMP-XVI-template",
        "n | n | none | nxn | nxn | nxn | nxn",
    )
    .unwrap();
    for n in [4u32, 16, 64, 256] {
        let params = CostParams::default().with_n(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, p| {
            b.iter(|| {
                std::hint::black_box(estimate_area(&spec, p).total());
                std::hint::black_box(estimate_config_bits(&spec, p).total());
            })
        });
    }
    g.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let params = CostParams::default();
    c.bench_function("pareto_sweep_and_front", |b| {
        b.iter(|| {
            let points = sweep_classes(&params);
            std::hint::black_box(pareto_front(&points))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_area, bench_config_bits, bench_n_sweep, bench_pareto
}
criterion_main!(benches);

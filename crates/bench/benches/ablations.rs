//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **interconnect ablation** — idealised crossbar mailboxes vs windowed
//!   fabric vs packet-switched mesh NoC for the same traffic pattern;
//! * **placement ablation** — round-robin vs island placement in the
//!   data-flow engine;
//! * **LUT-arity ablation** — configuration cost and evaluation speed of
//!   the universal fabric as k grows.

use skilltax_bench::microbench::Harness;
use skilltax_machine::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::interconnect::{FabricTopology, Mailboxes};
use skilltax_machine::noc::MeshNoc;
use skilltax_machine::universal::{ripple_adder, LutFabric};
use skilltax_machine::Word;

/// All-to-one traffic: 15 packets converging on node 5 of a 16-node
/// fabric.
fn bench_interconnect_ablation(h: &mut Harness) {
    h.bench("interconnect_ablation/crossbar_mailboxes", || {
        let mut mb = Mailboxes::new(16, FabricTopology::Crossbar);
        for src in 0..16 {
            if src != 5 {
                mb.send(src, 5, src as Word).unwrap();
            }
        }
        let mut got = 0;
        for src in 0..16 {
            if src != 5 {
                while mb.recv(5, src).unwrap().is_some() {
                    got += 1;
                }
            }
        }
        got
    });
    h.bench("interconnect_ablation/mesh_noc_4x4", || {
        let mut noc = MeshNoc::new(4, 4).unwrap();
        for src in 0..16 {
            if src != 5 {
                noc.inject(src, 5, src as Word).unwrap();
            }
        }
        noc.drain(10_000).unwrap().len()
    });
    h.bench("interconnect_ablation/window_fabric_hops3", || {
        let mut mb = Mailboxes::new(16, FabricTopology::Window { hops: 3 });
        let mut routable = 0;
        for src in 0..16usize {
            if src != 5 && mb.send(src, 5, src as Word).is_ok() {
                routable += 1;
            }
        }
        routable
    });
}

fn bench_placement_ablation(h: &mut Harness) {
    let graph = library::independent_chains(16);
    let inputs: Vec<Word> = (0..16).collect();
    let machine = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    for (label, placement) in [
        ("round_robin", Placement::RoundRobin),
        ("islands", Placement::Islands),
    ] {
        h.bench(&format!("dataflow_placement/{label}"), || {
            machine.run(&graph, &inputs, &placement).unwrap()
        });
    }
}

fn bench_lut_arity_ablation(h: &mut Harness) {
    for k in [3usize, 4, 6] {
        let fabric = LutFabric::new(256, k, 16);
        let bs = ripple_adder(&fabric, 8).unwrap();
        let configured = fabric.configure(&bs).unwrap();
        let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        h.bench(&format!("lut_arity/eval_adder/{k}"), || {
            configured.eval(&inputs).unwrap()
        });
        h.bench(&format!("lut_arity/config_bits/{k}"), || {
            bs.config_bits(&fabric)
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_interconnect_ablation(&mut h);
    bench_placement_ablation(&mut h);
    bench_lut_arity_ablation(&mut h);
    h.finish();
}

//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **interconnect ablation** — idealised crossbar mailboxes vs windowed
//!   fabric vs packet-switched mesh NoC for the same traffic pattern;
//! * **placement ablation** — round-robin vs island placement in the
//!   data-flow engine;
//! * **LUT-arity ablation** — configuration cost and evaluation speed of
//!   the universal fabric as k grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skilltax_machine::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::interconnect::{FabricTopology, Mailboxes};
use skilltax_machine::noc::MeshNoc;
use skilltax_machine::universal::{ripple_adder, LutFabric};
use skilltax_machine::Word;

/// All-to-one traffic: 15 packets converging on node 5 of a 16-node
/// fabric.
fn bench_interconnect_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("interconnect_ablation");
    g.bench_function("crossbar_mailboxes", |b| {
        b.iter(|| {
            let mut mb = Mailboxes::new(16, FabricTopology::Crossbar);
            for src in 0..16 {
                if src != 5 {
                    mb.send(src, 5, src as Word).unwrap();
                }
            }
            let mut got = 0;
            for src in 0..16 {
                if src != 5 {
                    while mb.recv(5, src).unwrap().is_some() {
                        got += 1;
                    }
                }
            }
            std::hint::black_box(got)
        })
    });
    g.bench_function("mesh_noc_4x4", |b| {
        b.iter(|| {
            let mut noc = MeshNoc::new(4, 4).unwrap();
            for src in 0..16 {
                if src != 5 {
                    noc.inject(src, 5, src as Word).unwrap();
                }
            }
            std::hint::black_box(noc.drain(10_000).unwrap().len())
        })
    });
    g.bench_function("window_fabric_hops3", |b| {
        b.iter(|| {
            let mut mb = Mailboxes::new(16, FabricTopology::Window { hops: 3 });
            let mut routable = 0;
            for src in 0..16usize {
                if src != 5 && mb.send(src, 5, src as Word).is_ok() {
                    routable += 1;
                }
            }
            std::hint::black_box(routable)
        })
    });
    g.finish();
}

fn bench_placement_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow_placement");
    let graph = library::independent_chains(16);
    let inputs: Vec<Word> = (0..16).collect();
    let machine = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    for (label, placement) in
        [("round_robin", Placement::RoundRobin), ("islands", Placement::Islands)]
    {
        g.bench_with_input(BenchmarkId::from_parameter(label), &placement, |b, p| {
            b.iter(|| std::hint::black_box(machine.run(&graph, &inputs, p).unwrap()))
        });
    }
    g.finish();
}

fn bench_lut_arity_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_arity");
    for k in [3usize, 4, 6] {
        let fabric = LutFabric::new(256, k, 16);
        let bs = ripple_adder(&fabric, 8).unwrap();
        let configured = fabric.configure(&bs).unwrap();
        let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        g.bench_with_input(BenchmarkId::new("eval_adder", k), &configured, |b, f| {
            b.iter(|| std::hint::black_box(f.eval(&inputs).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("config_bits", k), &bs, |b, bs| {
            b.iter(|| std::hint::black_box(bs.config_bits(&fabric)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_interconnect_ablation, bench_placement_ablation, bench_lut_arity_ablation
}
criterion_main!(benches);

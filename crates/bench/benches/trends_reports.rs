//! Benchmarks behind Fig 1 and Fig 7 regeneration (bench_fig1 /
//! bench_fig7) and the report renderers.

use skilltax_bench::artifacts;
use skilltax_bench::microbench::Harness;
use skilltax_trends::PublicationDatabase;

fn bench_fig1(h: &mut Harness) {
    h.bench("fig1/generate_database", || {
        PublicationDatabase::generate(2012)
    });
    h.bench("fig1/render_ascii", artifacts::fig1_ascii);
    h.bench("fig1/render_svg", artifacts::fig1_svg);
}

fn bench_fig7(h: &mut Harness) {
    h.bench("fig7/render_ascii", artifacts::fig7_ascii);
    h.bench("fig7/render_svg", artifacts::fig7_svg);
}

fn bench_reports(h: &mut Harness) {
    h.bench("reports/estimates_report", artifacts::estimates_report);
    h.bench("reports/pareto_report", artifacts::pareto_report);
    h.bench("reports/fig2_hierarchy", artifacts::fig2);
}

fn main() {
    let mut h = Harness::new();
    bench_fig1(&mut h);
    bench_fig7(&mut h);
    bench_reports(&mut h);
    h.finish();
}

//! Benchmarks behind Fig 1 and Fig 7 regeneration (bench_fig1 /
//! bench_fig7) and the report renderers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use skilltax_bench::artifacts;
use skilltax_trends::PublicationDatabase;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("generate_database", |b| {
        b.iter(|| std::hint::black_box(PublicationDatabase::generate(2012)))
    });
    g.bench_function("render_ascii", |b| {
        b.iter(|| std::hint::black_box(artifacts::fig1_ascii()))
    });
    g.bench_function("render_svg", |b| b.iter(|| std::hint::black_box(artifacts::fig1_svg())));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.bench_function("render_ascii", |b| {
        b.iter(|| std::hint::black_box(artifacts::fig7_ascii()))
    });
    g.bench_function("render_svg", |b| b.iter(|| std::hint::black_box(artifacts::fig7_svg())));
    g.finish();
}

fn bench_reports(c: &mut Criterion) {
    let mut g = c.benchmark_group("reports");
    g.bench_function("estimates_report", |b| {
        b.iter(|| std::hint::black_box(artifacts::estimates_report()))
    });
    g.bench_function("pareto_report", |b| {
        b.iter(|| std::hint::black_box(artifacts::pareto_report()))
    });
    g.bench_function("fig2_hierarchy", |b| b.iter(|| std::hint::black_box(artifacts::fig2())));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig1, bench_fig7, bench_reports
}
criterion_main!(benches);

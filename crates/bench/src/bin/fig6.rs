//! Regenerate the paper artifact `fig6` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::fig6());
}

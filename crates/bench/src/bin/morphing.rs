//! Regenerate the paper artifact `morphing` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::morph_report());
}

//! Regenerate the paper artifact `fig5` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::fig5());
}

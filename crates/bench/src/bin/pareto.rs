//! Regenerate the paper artifact `pareto` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::pareto_report());
}

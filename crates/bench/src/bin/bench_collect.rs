//! Run the registered benchmark suite and write a `BENCH_<label>.json`
//! artifact: robust wall-time statistics plus the deterministic
//! counters the regression gate (`bench_compare`) gates hard on.
//!
//! ```text
//! bench_collect [--quick | --deterministic-only] [--label NAME] [--out PATH] [--filter SUBSTR]
//! ```
//!
//! Defaults: full depth, label `local`, output `BENCH_<label>.json` in
//! the current directory.  Batch depth also honours the
//! `SKILLTAX_BENCH_BATCHES` / `SKILLTAX_BENCH_BATCH_MS` environment
//! variables (see `skilltax-bench`'s microbench docs).

use std::path::PathBuf;
use std::process::ExitCode;

use skilltax_bench::artifact::CollectionMode;
use skilltax_bench::collector;

fn main() -> ExitCode {
    let mut mode = CollectionMode::Full;
    let mut label = "local".to_owned();
    let mut out: Option<PathBuf> = None;
    let mut filter: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = CollectionMode::Quick,
            "--deterministic-only" => mode = CollectionMode::DeterministicOnly,
            "--label" => match args.next() {
                Some(value) => label = value,
                None => return usage("--label needs a value"),
            },
            "--out" => match args.next() {
                Some(value) => out = Some(PathBuf::from(value)),
                None => return usage("--out needs a value"),
            },
            "--filter" => match args.next() {
                Some(value) => filter = Some(value),
                None => return usage("--filter needs a value"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));
    eprintln!(
        "collecting suite (mode: {}, label: {label}) ...",
        mode.as_str()
    );
    let artifact = collector::collect_filtered(&label, mode, filter.as_deref());
    if let Err(e) = artifact.write_file(&path) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} benchmarks, schema v{})",
        path.display(),
        artifact.benchmarks.len(),
        artifact.schema_version
    );
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: bench_collect [--quick | --deterministic-only] [--label NAME] [--out PATH] \
         [--filter SUBSTR]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Regenerate the paper artifact `fig2` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::fig2());
}

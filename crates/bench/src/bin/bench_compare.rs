//! Diff a current bench artifact against a committed baseline and apply
//! the regression gate: deterministic-counter deltas fail hard (exit
//! code 1 — a real behavioral change that must be acknowledged),
//! wall-time drift beyond the measured noise floor is flagged softly
//! (exit code 0).
//!
//! ```text
//! bench_compare [--baseline PATH] [--current PATH] [--full] [--filter SUBSTR]
//! ```
//!
//! Defaults: baseline `artifacts/BENCH_baseline.json`; when no
//! `--current` artifact is given the suite is collected in-process in
//! quick mode (`--full` goes deep instead).  `--filter` restricts the
//! comparison — and the in-process collection — to benchmark names
//! containing the substring.

use std::path::PathBuf;
use std::process::ExitCode;

use skilltax_bench::artifact::{Artifact, CollectionMode};
use skilltax_bench::collector;
use skilltax_bench::compare::Comparison;

const DEFAULT_BASELINE: &str = "artifacts/BENCH_baseline.json";

fn main() -> ExitCode {
    let mut baseline_path = PathBuf::from(DEFAULT_BASELINE);
    let mut current_path: Option<PathBuf> = None;
    let mut mode = CollectionMode::Quick;
    let mut filter: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(value) => baseline_path = PathBuf::from(value),
                None => return usage("--baseline needs a value"),
            },
            "--current" => match args.next() {
                Some(value) => current_path = Some(PathBuf::from(value)),
                None => return usage("--current needs a value"),
            },
            "--full" => mode = CollectionMode::Full,
            "--filter" => match args.next() {
                Some(value) => filter = Some(value),
                None => return usage("--filter needs a value"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let mut baseline = match Artifact::read_file(&baseline_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut current = match current_path {
        Some(path) => match Artifact::read_file(&path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("collecting current suite (mode: {}) ...", mode.as_str());
            collector::collect_filtered("current", mode, filter.as_deref())
        }
    };
    if let Some(f) = filter.as_deref() {
        // Restrict both sides so out-of-scope benches neither gate nor
        // show up as missing/added noise.
        baseline.benchmarks.retain(|b| b.name.contains(f));
        current.benchmarks.retain(|b| b.name.contains(f));
    }

    println!(
        "baseline: {} ({}, {} benchmarks)  vs  current: {} ({}, {} benchmarks)",
        baseline.label,
        baseline.mode.as_str(),
        baseline.benchmarks.len(),
        current.label,
        current.mode.as_str(),
        current.benchmarks.len()
    );
    let comparison = Comparison::between(&baseline, &current);
    print!("{}", comparison.render());
    if comparison.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: bench_compare [--baseline PATH] [--current PATH] [--full] [--filter SUBSTR]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

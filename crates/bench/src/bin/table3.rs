//! Regenerate the paper artifact `table3` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::table3());
}

//! Regenerate the paper artifact `fig4` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::fig4());
}

//! Regenerate **every** paper artifact into an output directory:
//!
//! ```sh
//! cargo run -p skilltax-bench --bin repro [-- <out-dir>]   # default: artifacts/
//! ```
//!
//! Writes `table1.txt` … `fig7.txt`, the SVG figures, `table3.csv`, and
//! the supplementary reports, then prints an index.

use std::fs;
use std::path::PathBuf;

use skilltax_bench::artifacts;

fn main() -> std::io::Result<()> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "artifacts".to_owned())
        .into();
    fs::create_dir_all(&out)?;
    let files: Vec<(&str, String)> = vec![
        ("table1.txt", artifacts::table1()),
        ("table2.txt", artifacts::table2()),
        ("table3.txt", artifacts::table3()),
        ("table3.csv", artifacts::table3_csv()),
        ("fig1.txt", artifacts::fig1_ascii()),
        ("fig1.svg", artifacts::fig1_svg()),
        ("fig2.txt", artifacts::fig2()),
        ("fig3.txt", artifacts::fig3()),
        ("fig4.txt", artifacts::fig4()),
        ("fig5.txt", artifacts::fig5()),
        ("fig6.txt", artifacts::fig6()),
        ("fig7.txt", artifacts::fig7_ascii()),
        ("fig7.svg", artifacts::fig7_svg()),
        ("estimates.txt", artifacts::estimates_report()),
        ("pareto.txt", artifacts::pareto_report()),
        ("morphing.txt", artifacts::morph_report()),
        ("baselines.txt", artifacts::baselines_report()),
        ("modern.txt", artifacts::modern_report()),
        ("table3.json", artifacts::table3_json()),
        ("fig2.dot", artifacts::fig2_dot()),
        ("morph_lattice.dot", artifacts::morph_lattice_dot()),
    ];
    println!("writing {} artifacts to {}/", files.len(), out.display());
    for (name, content) in files {
        let path = out.join(name);
        fs::write(&path, &content)?;
        println!("  {:>12}  {:>7} bytes", name, content.len());
    }
    Ok(())
}

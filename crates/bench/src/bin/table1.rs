//! Regenerate the paper artifact `table1` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::table1());
}

//! Regenerate Fig 1 (research trends). Pass `--svg` for the SVG document.
fn main() {
    if std::env::args().any(|a| a == "--svg") {
        print!("{}", skilltax_bench::artifacts::fig1_svg());
    } else {
        print!("{}", skilltax_bench::artifacts::fig1_ascii());
    }
}

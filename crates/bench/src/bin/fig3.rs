//! Regenerate the paper artifact `fig3` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::fig3());
}

//! Print the Flynn / Skillicorn baseline comparison.
fn main() {
    print!("{}", skilltax_bench::artifacts::baselines_report());
}

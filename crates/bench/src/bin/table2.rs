//! Regenerate the paper artifact `table2` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::table2());
}

//! Regenerate Fig 7 (flexibility comparison). Pass `--svg` for SVG.
fn main() {
    if std::env::args().any(|a| a == "--svg") {
        print!("{}", skilltax_bench::artifacts::fig7_svg());
    } else {
        print!("{}", skilltax_bench::artifacts::fig7_ascii());
    }
}

//! Print the post-2012 classification report (taxonomy's predictive use).
fn main() {
    print!("{}", skilltax_bench::artifacts::modern_report());
}

//! Query and grow the perf-history store: the CLI over
//! `skilltax_bench::history`.
//!
//! ```text
//! bench_history record      --store DIR --commit C [--artifact PATH]
//!                           [--label L] [--full] [--filter SUBSTR]
//! bench_history list        --store DIR [--label L]
//! bench_history trajectory  --store DIR --bench NAME --counter KEY
//!                           [--label L] [--csv | --markdown]
//! bench_history compare     --store DIR --from C --to C [--label L] [--json]
//! bench_history prune       --store DIR --keep N [--label L]
//! ```
//!
//! `record` appends one artifact under its label at a commit id —
//! either a pre-collected `BENCH_*.json` (`--artifact`) or an in-process
//! collection (quick unless `--full`; `--filter` restricts by benchmark
//! name).  `trajectory` answers "how did counter KEY of benchmark NAME
//! move across stored commits", each step significance-classified;
//! `compare` prints the triaged diff of two commits.  `prune`
//! garbage-collects old entries, keeping the N newest per label (N is
//! clamped to at least 1, so the newest artifact always survives); with
//! no `--label` it prunes every label in the store.  Exit code is 1 on
//! any store or query error, never a panic — a corrupt stored artifact
//! is a diagnosable message.

use std::path::PathBuf;
use std::process::ExitCode;

use skilltax_bench::artifact::{Artifact, CollectionMode};
use skilltax_bench::collector;
use skilltax_bench::history::HistoryStore;
use skilltax_report::{trajectory_csv, trajectory_table};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) => c,
        None => return usage("missing subcommand"),
    };
    let rest: Vec<String> = args.collect();
    match command.as_str() {
        "record" => record(&rest),
        "list" => list(&rest),
        "trajectory" => trajectory(&rest),
        "compare" => compare(&rest),
        "prune" => prune(&rest),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

/// Tiny flag cursor over a subcommand's arguments: every flag takes a
/// value, strangers are errors.
struct Flags<'a> {
    args: std::slice::Iter<'a, String>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args: args.iter() }
    }

    fn next(&mut self) -> Option<&'a str> {
        self.args.next().map(String::as_str)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn record(args: &[String]) -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut commit: Option<String> = None;
    let mut artifact_path: Option<PathBuf> = None;
    let mut label = "history".to_owned();
    let mut mode = CollectionMode::Quick;
    let mut filter: Option<String> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--store" => match flags.value(flag) {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--commit" => match flags.value(flag) {
                Ok(v) => commit = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--artifact" => match flags.value(flag) {
                Ok(v) => artifact_path = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--label" => match flags.value(flag) {
                Ok(v) => label = v.to_owned(),
                Err(e) => return usage(&e),
            },
            "--full" => mode = CollectionMode::Full,
            "--filter" => match flags.value(flag) {
                Ok(v) => filter = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(store), Some(commit)) = (store, commit) else {
        return usage("record needs --store and --commit");
    };
    let artifact = match artifact_path {
        Some(path) => match Artifact::read_file(&path) {
            Ok(mut a) => {
                // The store files under the artifact's own label; an
                // explicit --label overrides what the file carries.
                if label != "history" {
                    a.label = label;
                }
                a
            }
            Err(e) => return fail(e),
        },
        None => {
            eprintln!("collecting suite (mode: {}) ...", mode.as_str());
            collector::collect_filtered(&label, mode, filter.as_deref())
        }
    };
    match HistoryStore::open(store).append(&commit, &artifact) {
        Ok(entry) => {
            println!(
                "recorded {} benchmark(s) as {}/{}-{}",
                artifact.benchmarks.len(),
                artifact.label,
                entry.seq_str(),
                entry.commit
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn list(args: &[String]) -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut label: Option<String> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--store" => match flags.value(flag) {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--label" => match flags.value(flag) {
                Ok(v) => label = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(store) = store else {
        return usage("list needs --store");
    };
    let store = HistoryStore::open(store);
    let labels = match label {
        Some(l) => vec![l],
        None => match store.labels() {
            Ok(labels) => labels,
            Err(e) => return fail(e),
        },
    };
    if labels.is_empty() {
        println!("(empty store)");
        return ExitCode::SUCCESS;
    }
    for label in labels {
        let entries = match store.entries(&label) {
            Ok(entries) => entries,
            Err(e) => return fail(e),
        };
        println!("{label}: {} entr(ies)", entries.len());
        for entry in entries {
            println!("  {}-{}", entry.seq_str(), entry.commit);
        }
    }
    ExitCode::SUCCESS
}

fn trajectory(args: &[String]) -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut label: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut counter: Option<String> = None;
    let mut csv = false;
    let mut markdown = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--store" => match flags.value(flag) {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--label" => match flags.value(flag) {
                Ok(v) => label = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--bench" => match flags.value(flag) {
                Ok(v) => bench = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--counter" => match flags.value(flag) {
                Ok(v) => counter = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--csv" => csv = true,
            "--markdown" => markdown = true,
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(store), Some(bench), Some(counter)) = (store, bench, counter) else {
        return usage("trajectory needs --store, --bench and --counter");
    };
    let store = HistoryStore::open(store);
    let label = match store.resolve_label(label.as_deref()) {
        Ok(label) => label,
        Err(e) => return fail(e),
    };
    let trajectory = match store.trajectory(&label, &bench, &counter) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let rows = trajectory.rows();
    if csv {
        print!("{}", trajectory_csv(&bench, &counter, &rows));
    } else if markdown {
        print!(
            "{}",
            trajectory_table(&bench, &counter, &rows).render_markdown()
        );
    } else {
        print!(
            "{}",
            trajectory_table(&bench, &counter, &rows).render_ascii()
        );
        println!(
            "overall: {} ({} point(s), {})",
            trajectory.relevance().label(),
            trajectory.points.len(),
            if trajectory.deterministic {
                "deterministic counter"
            } else {
                "wall pseudo-counter, noise-gated"
            }
        );
    }
    ExitCode::SUCCESS
}

fn compare(args: &[String]) -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut label: Option<String> = None;
    let mut from: Option<String> = None;
    let mut to: Option<String> = None;
    let mut json = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--store" => match flags.value(flag) {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--label" => match flags.value(flag) {
                Ok(v) => label = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--from" => match flags.value(flag) {
                Ok(v) => from = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--to" => match flags.value(flag) {
                Ok(v) => to = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(store), Some(from), Some(to)) = (store, from, to) else {
        return usage("compare needs --store, --from and --to");
    };
    let store = HistoryStore::open(store);
    let label = match store.resolve_label(label.as_deref()) {
        Ok(label) => label,
        Err(e) => return fail(e),
    };
    let triaged = match store.compare(&label, &from, &to) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    if json {
        println!("{}", triaged.to_json(&label, &from, &to).emit());
    } else {
        print!("{}", triaged.comparison.render());
        println!("{}", triaged.summary());
    }
    ExitCode::SUCCESS
}

fn prune(args: &[String]) -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut label: Option<String> = None;
    let mut keep: Option<usize> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--store" => match flags.value(flag) {
                Ok(v) => store = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--label" => match flags.value(flag) {
                Ok(v) => label = Some(v.to_owned()),
                Err(e) => return usage(&e),
            },
            "--keep" => match flags.value(flag) {
                Ok(v) => match v.parse::<usize>() {
                    Ok(n) => keep = Some(n),
                    Err(_) => return usage(&format!("--keep wants a number, got '{v}'")),
                },
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(store), Some(keep)) = (store, keep) else {
        return usage("prune needs --store and --keep");
    };
    let store = HistoryStore::open(store);
    // An explicit --label must exist (a typo is a typed UnknownLabel,
    // not a silent no-op); without one every label is pruned.
    let labels = match label {
        Some(l) => match store.resolve_label(Some(&l)) {
            Ok(l) => vec![l],
            Err(e) => return fail(e),
        },
        None => match store.labels() {
            Ok(labels) => labels,
            Err(e) => return fail(e),
        },
    };
    if labels.is_empty() {
        println!("(empty store, nothing to prune)");
        return ExitCode::SUCCESS;
    }
    for label in labels {
        let deleted = match store.prune(&label, keep) {
            Ok(deleted) => deleted,
            Err(e) => return fail(e),
        };
        println!("{label}: pruned {} entr(ies)", deleted.len());
        for entry in deleted {
            println!("  {}-{}", entry.seq_str(), entry.commit);
        }
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: bench_history <record|list|trajectory|compare|prune> ...\n\
         \x20 record      --store DIR --commit C [--artifact PATH] [--label L] [--full] [--filter SUBSTR]\n\
         \x20 list        --store DIR [--label L]\n\
         \x20 trajectory  --store DIR --bench NAME --counter KEY [--label L] [--csv | --markdown]\n\
         \x20 compare     --store DIR --from C --to C [--label L] [--json]\n\
         \x20 prune       --store DIR --keep N [--label L]   (keep clamps to >= 1)"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

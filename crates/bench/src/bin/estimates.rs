//! Regenerate the paper artifact `estimates` on stdout.
fn main() {
    print!("{}", skilltax_bench::artifacts::estimates_report());
}

//! Significance-aware triage of artifact comparisons.
//!
//! A port of rustc-perf's `compare.js` triage classification onto this
//! crate's robust statistics.  rustc-perf classifies every per-test
//! delta by its *significance factor* — the magnitude of the relative
//! change divided by a per-test significance threshold derived from
//! historical noise — and buckets the result for a human triager:
//! clearly **relevant**, **probably relevant**, or **noise**.  Here the
//! per-benchmark threshold is already measured: [`crate::stats`]'s
//! MAD-derived noise-floor fraction, stored in every artifact.
//!
//! * wall-time deltas use `factor = |rel_change| / noise_floor`, where
//!   the floor is the larger of the two runs' floors (a wild run widens
//!   the gate on both sides);
//! * deterministic counters have no noise: any delta is exact, so a
//!   changed counter is always [`Relevance::Relevant`].
//!
//! The magnitude scale (very small → very large) mirrors compare.js's
//! banding of relative changes and is orthogonal to relevance: a 30 %
//! swing on a hopelessly noisy benchmark is *very large* but still
//! *noise*; a 6 % swing on a quiet one is *medium* and *relevant*.

use skilltax_report::Json;

use crate::compare::{BenchComparison, Comparison};

/// Significance factors at the bucket boundaries (the compare.js
/// relevance thresholds): at least [`PROBABLY_RELEVANT_FACTOR`] floors
/// of movement to leave the noise bucket, at least
/// [`RELEVANT_FACTOR`] floors to be clearly relevant.
pub const PROBABLY_RELEVANT_FACTOR: f64 = 1.0;
/// See [`PROBABLY_RELEVANT_FACTOR`].
pub const RELEVANT_FACTOR: f64 = 2.0;

/// Relative-change boundaries of the magnitude bands, ascending:
/// very small < 1 % ≤ small < 4 % ≤ medium < 10 % ≤ large < 20 % ≤
/// very large.
pub const MAGNITUDE_BANDS: [f64; 4] = [0.01, 0.04, 0.10, 0.20];

/// How big a relative change is, ignoring whether it is significant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Magnitude {
    /// `|rel| < 1 %`.
    VerySmall,
    /// `1 % ≤ |rel| < 4 %`.
    Small,
    /// `4 % ≤ |rel| < 10 %`.
    Medium,
    /// `10 % ≤ |rel| < 20 %`.
    Large,
    /// `|rel| ≥ 20 %`.
    VeryLarge,
}

impl Magnitude {
    /// Band a relative change (sign ignored).
    pub fn of(rel_change: f64) -> Magnitude {
        let magnitude = rel_change.abs();
        if magnitude < MAGNITUDE_BANDS[0] {
            Magnitude::VerySmall
        } else if magnitude < MAGNITUDE_BANDS[1] {
            Magnitude::Small
        } else if magnitude < MAGNITUDE_BANDS[2] {
            Magnitude::Medium
        } else if magnitude < MAGNITUDE_BANDS[3] {
            Magnitude::Large
        } else {
            Magnitude::VeryLarge
        }
    }

    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Magnitude::VerySmall => "very-small",
            Magnitude::Small => "small",
            Magnitude::Medium => "medium",
            Magnitude::Large => "large",
            Magnitude::VeryLarge => "very-large",
        }
    }
}

/// The triage bucket: is this delta worth a human's attention?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Relevance {
    /// At least [`RELEVANT_FACTOR`] noise floors of movement (or any
    /// deterministic-counter change) — act on it.
    Relevant,
    /// Between one and [`RELEVANT_FACTOR`] floors — look if the trend
    /// repeats.
    ProbablyRelevant,
    /// Under one floor — indistinguishable from measurement noise.
    Noise,
}

impl Relevance {
    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Relevance::Relevant => "relevant",
            Relevance::ProbablyRelevant => "probably-relevant",
            Relevance::Noise => "noise",
        }
    }
}

/// Which way a metric moved (all tracked metrics are
/// smaller-is-better: wall nanoseconds, cycles, stalls, messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The metric grew.
    Regression,
    /// The metric shrank.
    Improvement,
    /// No change.
    Flat,
}

impl Direction {
    fn of(rel_change: f64) -> Direction {
        if rel_change > 0.0 {
            Direction::Regression
        } else if rel_change < 0.0 {
            Direction::Improvement
        } else {
            Direction::Flat
        }
    }

    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Direction::Regression => "regression",
            Direction::Improvement => "improvement",
            Direction::Flat => "flat",
        }
    }
}

/// One classified delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triage {
    /// Relative change `(to - from) / from`.
    pub rel_change: f64,
    /// Significance factor `|rel_change| / threshold` (infinite for a
    /// changed deterministic counter — the threshold is zero).
    pub factor: f64,
    /// Magnitude band of the change.
    pub magnitude: Magnitude,
    /// Triage bucket.
    pub relevance: Relevance,
    /// Which way the metric moved.
    pub direction: Direction,
}

/// Classify a noisy (wall-time) delta against its noise floor.
///
/// `floor` must be positive; artifact floors are clamped to
/// [`crate::stats::MIN_NOISE_FLOOR_FRAC`], so a zero floor can only
/// come from a hand-built summary and is treated as that clamp.
pub fn classify_wall(rel_change: f64, floor: f64) -> Triage {
    let floor = if floor > 0.0 {
        floor
    } else {
        crate::stats::MIN_NOISE_FLOOR_FRAC
    };
    let factor = rel_change.abs() / floor;
    let relevance = if factor >= RELEVANT_FACTOR {
        Relevance::Relevant
    } else if factor >= PROBABLY_RELEVANT_FACTOR {
        Relevance::ProbablyRelevant
    } else {
        Relevance::Noise
    };
    Triage {
        rel_change,
        factor,
        magnitude: Magnitude::of(rel_change),
        relevance,
        direction: Direction::of(rel_change),
    }
}

/// Classify a deterministic-counter delta: the engines are exact, so
/// any change is relevant regardless of size; an appearing or
/// disappearing counter is a very large relevant change.
pub fn classify_counter(from: Option<u64>, to: Option<u64>) -> Triage {
    let (rel_change, magnitude) = match (from, to) {
        (Some(f), Some(t)) if f > 0 => {
            let rel = (t as f64 - f as f64) / f as f64;
            (rel, Magnitude::of(rel))
        }
        (Some(_), Some(t)) => {
            let rel = if t > 0 { 1.0 } else { 0.0 };
            (rel, Magnitude::of(rel))
        }
        (None, _) => (1.0, Magnitude::VeryLarge),
        (_, None) => (-1.0, Magnitude::VeryLarge),
    };
    if from == to {
        return Triage {
            rel_change: 0.0,
            factor: 0.0,
            magnitude: Magnitude::VerySmall,
            relevance: Relevance::Noise,
            direction: Direction::Flat,
        };
    }
    Triage {
        rel_change,
        factor: f64::INFINITY,
        magnitude,
        relevance: Relevance::Relevant,
        direction: Direction::of(rel_change),
    }
}

/// One benchmark's triaged result in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TriagedBench {
    /// Benchmark name.
    pub name: String,
    /// Per-counter triage (only counters that changed).
    pub counters: Vec<(String, Triage)>,
    /// Wall-time triage, when both sides carried comparable wall times.
    pub wall: Option<Triage>,
}

impl TriagedBench {
    /// The benchmark's overall bucket: the most relevant of its rows.
    pub fn relevance(&self) -> Relevance {
        let mut best = Relevance::Noise;
        for (_, t) in &self.counters {
            best = best.min(t.relevance);
        }
        if let Some(w) = &self.wall {
            best = best.min(w.relevance);
        }
        best
    }
}

/// Bucket counts over a triaged comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriageCounts {
    /// Benchmarks in the relevant bucket.
    pub relevant: usize,
    /// Benchmarks in the probably-relevant bucket.
    pub probably_relevant: usize,
    /// Benchmarks in the noise bucket (including unchanged ones).
    pub noise: usize,
}

/// A [`Comparison`] with every delta significance-classified.
#[derive(Debug, Clone, PartialEq)]
pub struct TriagedComparison {
    /// The underlying diff (missing/added lists, raw deltas).
    pub comparison: Comparison,
    /// Per-benchmark triage, in baseline order.
    pub benches: Vec<TriagedBench>,
}

fn triage_bench(bench: &BenchComparison) -> TriagedBench {
    TriagedBench {
        name: bench.name.clone(),
        counters: bench
            .counter_deltas
            .iter()
            .map(|d| (d.key.clone(), classify_counter(d.baseline, d.current)))
            .collect(),
        wall: bench
            .wall
            .as_ref()
            .map(|w| classify_wall(w.rel_change, w.floor)),
    }
}

impl TriagedComparison {
    /// Classify every delta of `comparison`.
    pub fn of(comparison: Comparison) -> TriagedComparison {
        let benches = comparison.benches.iter().map(triage_bench).collect();
        TriagedComparison {
            comparison,
            benches,
        }
    }

    /// Bucket counts over the common benchmarks (missing benchmarks are
    /// counted as relevant — a vanished benchmark is always news).
    pub fn counts(&self) -> TriageCounts {
        let mut counts = TriageCounts {
            relevant: self.comparison.missing.len(),
            ..TriageCounts::default()
        };
        for bench in &self.benches {
            match bench.relevance() {
                Relevance::Relevant => counts.relevant += 1,
                Relevance::ProbablyRelevant => counts.probably_relevant += 1,
                Relevance::Noise => counts.noise += 1,
            }
        }
        counts
    }

    /// The comparison as the JSON body `GET /perf/compare` returns.
    pub fn to_json(&self, label: &str, from: &str, to: &str) -> Json {
        let counts = self.counts();
        let benches: Vec<Json> = self
            .benches
            .iter()
            // Only benchmarks carrying signal: a changed counter or a
            // wall drift above the noise bucket.  A triager reads the
            // short list; the bucket counts still cover everything.
            .filter(|b| {
                !b.counters.is_empty() || b.wall.is_some_and(|w| w.relevance != Relevance::Noise)
            })
            .map(|b| {
                let counters: Vec<Json> = b
                    .counters
                    .iter()
                    .map(|(key, t)| triage_json(t, Some(key)))
                    .collect();
                let mut fields = vec![
                    ("name", Json::str(&b.name)),
                    ("relevance", Json::str(b.relevance().label())),
                    ("counters", Json::Arr(counters)),
                ];
                if let Some(w) = &b.wall {
                    fields.push(("wall", triage_json(w, None)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("label", Json::str(label)),
            ("from", Json::str(from)),
            ("to", Json::str(to)),
            (
                "buckets",
                Json::obj(vec![
                    ("relevant", Json::int(counts.relevant as i64)),
                    (
                        "probably_relevant",
                        Json::int(counts.probably_relevant as i64),
                    ),
                    ("noise", Json::int(counts.noise as i64)),
                ]),
            ),
            (
                "missing",
                Json::Arr(self.comparison.missing.iter().map(Json::str).collect()),
            ),
            (
                "added",
                Json::Arr(self.comparison.added.iter().map(Json::str).collect()),
            ),
            ("benchmarks", Json::Arr(benches)),
        ])
    }

    /// One-line human verdict (the `bench_history compare` footer).
    pub fn summary(&self) -> String {
        let counts = self.counts();
        format!(
            "triage: {} relevant, {} probably relevant, {} noise over {} benchmarks",
            counts.relevant,
            counts.probably_relevant,
            counts.noise,
            self.benches.len() + self.comparison.missing.len()
        )
    }
}

fn triage_json(triage: &Triage, counter: Option<&str>) -> Json {
    let mut fields = Vec::with_capacity(6);
    if let Some(key) = counter {
        fields.push(("counter", Json::str(key)));
    }
    fields.extend([
        ("rel_change", Json::Num(triage.rel_change)),
        (
            "factor",
            if triage.factor.is_finite() {
                Json::Num(triage.factor)
            } else {
                Json::str("exact")
            },
        ),
        ("magnitude", Json::str(triage.magnitude.label())),
        ("relevance", Json::str(triage.relevance.label())),
        ("direction", Json::str(triage.direction.label())),
    ]);
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_bands_match_the_documented_boundaries() {
        assert_eq!(Magnitude::of(0.005), Magnitude::VerySmall);
        assert_eq!(Magnitude::of(-0.02), Magnitude::Small);
        assert_eq!(Magnitude::of(0.05), Magnitude::Medium);
        assert_eq!(Magnitude::of(-0.15), Magnitude::Large);
        assert_eq!(Magnitude::of(0.5), Magnitude::VeryLarge);
    }

    #[test]
    fn wall_relevance_is_the_significance_factor_against_the_floor() {
        // 6 % change on a 5 % floor: factor 1.2 — probably relevant.
        let t = classify_wall(0.06, 0.05);
        assert_eq!(t.relevance, Relevance::ProbablyRelevant);
        assert!((t.factor - 1.2).abs() < 1e-9);
        // 12 % change on a 5 % floor: factor 2.4 — relevant.
        assert_eq!(classify_wall(-0.12, 0.05).relevance, Relevance::Relevant);
        // 3 % change on a 5 % floor: noise, however it is banded.
        let t = classify_wall(0.03, 0.05);
        assert_eq!(t.relevance, Relevance::Noise);
        assert_eq!(t.magnitude, Magnitude::Small);
        assert_eq!(t.direction, Direction::Regression);
    }

    #[test]
    fn deterministic_counter_changes_are_always_relevant() {
        let t = classify_counter(Some(1_000_000), Some(1_000_001));
        assert_eq!(t.relevance, Relevance::Relevant);
        assert_eq!(t.magnitude, Magnitude::VerySmall);
        assert!(t.factor.is_infinite());
        assert_eq!(
            classify_counter(Some(5), Some(5)).relevance,
            Relevance::Noise
        );
        assert_eq!(
            classify_counter(None, Some(5)).magnitude,
            Magnitude::VeryLarge
        );
        assert_eq!(
            classify_counter(Some(5), None).direction,
            Direction::Improvement
        );
    }
}

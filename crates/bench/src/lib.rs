//! # skilltax-bench
//!
//! The reproduction harness: [`artifacts`] has one generator per paper
//! table and figure (Table I–III, Fig 1–7, plus the Eq 1/Eq 2 estimate,
//! Pareto and morphing reports); the `table*`/`fig*` binaries print them,
//! and the dependency-free [`microbench`] harness drives the benches in
//! `benches/` that measure the engines behind them.
//!
//! On top of the harness sits the continuous-performance collector
//! (`bench_collect` / `bench_compare`):
//!
//! * [`stats`] — robust statistics over batch timings (percentiles, MAD,
//!   outlier rejection, per-benchmark noise floor);
//! * [`collector`] — a registered suite covering every engine family,
//!   pairing wall-clock timings with deterministic telemetry counters;
//! * [`artifact`] — the `BENCH_<label>.json` schema, writer and typed
//!   reader (using the in-repo [`jsonio`] parser — the workspace stays
//!   hermetic);
//! * [`compare`] — the regression gate: deterministic counters gate
//!   hard, wall times gate soft against the measured noise floor;
//! * [`history`] — the append-only perf-history store (`bench_history`):
//!   artifacts indexed by label and commit, answering trajectory and
//!   comparison queries, mounted read-only behind the service's
//!   `GET /perf/*` endpoints;
//! * [`triage`] — the significance classifier over those queries
//!   (relevant / probably-relevant / noise, rustc-perf style).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod artifacts;
pub mod collector;
pub mod compare;
pub mod history;
pub mod jsonio;
pub mod microbench;
pub mod stats;
pub mod triage;

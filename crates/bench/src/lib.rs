//! # skilltax-bench
//!
//! The reproduction harness: [`artifacts`] has one generator per paper
//! table and figure (Table I–III, Fig 1–7, plus the Eq 1/Eq 2 estimate,
//! Pareto and morphing reports); the `table*`/`fig*` binaries print them,
//! and the dependency-free [`microbench`] harness drives the benches in
//! `benches/` that measure the engines behind them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifacts;
pub mod microbench;

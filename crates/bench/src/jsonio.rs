//! A minimal, dependency-free JSON *reader* for bench artifacts.
//!
//! The workspace is hermetic (no serde), so the report crate hand-rolls a
//! JSON emitter ([`skilltax_report::Json`]) and this module hand-rolls
//! the matching recursive-descent parser.  Together they let
//! `BENCH_*.json` artifacts round-trip: everything the emitter writes,
//! this parser reads back into the same [`Json`] tree.
//!
//! Scope: full JSON per RFC 8259 minus arbitrary-precision numbers (all
//! numbers become `f64`, matching the emitter) — exactly enough for the
//! continuous-performance collector, and nothing more.

use std::fmt;

use skilltax_report::Json;

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| self.error("non-hex in \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn escapes_and_unicode_parse() {
        assert_eq!(parse(r#""a\"b\\c\nd""#).unwrap(), Json::str("a\"b\\c\nd"));
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Json::str("Aé"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        assert_eq!(parse("\"é direct\"").unwrap(), Json::str("é direct"));
    }

    #[test]
    fn containers_parse_and_preserve_order() {
        let v = parse(r#"{"z":1,"a":[true,null,{}]}"#).unwrap();
        assert_eq!(
            v,
            Json::obj(vec![
                ("z", Json::Num(1.0)),
                (
                    "a",
                    Json::Arr(vec![Json::Bool(true), Json::Null, Json::Obj(vec![])])
                ),
            ])
        );
    }

    #[test]
    fn emitter_output_round_trips() {
        let original = Json::obj(vec![
            ("name", Json::str("bench/vector_add \"quoted\"\n")),
            ("p50", Json::Num(123.456)),
            ("counters", Json::obj(vec![("cycles", Json::int(999))])),
            ("tags", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(parse(&original.emit()).unwrap(), original);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nulls",
            "1 2",
            "\"\\q\"",
            "\"\u{1}\"",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} should fail");
            assert!(err.to_string().contains("JSON parse error"));
        }
    }
}

//! The `BENCH_<label>.json` artifact: schema, writer and typed reader.
//!
//! One artifact is one collector run: environment metadata plus, per
//! benchmark, the robust wall-time summary ([`SampleStats`], in ns per
//! iteration) and the *deterministic counters* captured from a traced
//! run (total cycles and per-event-class totals).  Wall times are always
//! machine-local — the artifact says so explicitly — but the counters
//! are exact replayable facts: any change between two artifacts is a
//! real behavioral change in the engines, which is what the regression
//! gate in [`crate::compare`] gates hard on.
//!
//! Writing uses the report crate's hand-rolled [`Json`] emitter; reading
//! uses the bench crate's own parser ([`crate::jsonio`]): the workspace
//! stays hermetic, and `write → read` round-trips every field.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use skilltax_report::Json;

use crate::jsonio::{self, JsonParseError};
use crate::stats::SampleStats;

/// Current artifact schema version.  Bump on any incompatible change;
/// the reader rejects every other version with a typed error.
pub const SCHEMA_VERSION: i64 = 1;

/// Longest label (or history commit id) accepted by [`validate_label`].
pub const MAX_LABEL_LEN: usize = 64;

/// Validate a label that will be interpolated into a file name
/// (`BENCH_<label>.json`, `artifacts/history/<label>/…`).
///
/// Accepted: 1–[`MAX_LABEL_LEN`] characters from `[A-Za-z0-9._-]`, with
/// at least one character that is not a dot (so `.` and `..` — path
/// traversal once a label names a directory — are rejected).  Everything
/// else is a typed [`ArtifactError::InvalidLabel`]: labels reach this
/// code from service requests, so `/`, `..` and friends must die at
/// write time, not escape the artifacts directory.
pub fn validate_label(label: &str) -> Result<(), ArtifactError> {
    let invalid = |reason: &str| {
        Err(ArtifactError::InvalidLabel {
            label: label.to_owned(),
            reason: reason.to_owned(),
        })
    };
    if label.is_empty() {
        return invalid("empty");
    }
    if label.len() > MAX_LABEL_LEN {
        return invalid("longer than 64 characters");
    }
    if !label
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return invalid("characters outside [A-Za-z0-9._-]");
    }
    if label.bytes().all(|b| b == b'.') {
        return invalid("only dots (path traversal)");
    }
    Ok(())
}

/// How deep the collection that produced an artifact went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionMode {
    /// Full-depth timing run (local perf work).
    Full,
    /// Few short batches (CI smoke).
    Quick,
    /// Counters are the payload; wall times taken minimally and only to
    /// keep the schema uniform (the committed baseline's mode).
    DeterministicOnly,
}

impl CollectionMode {
    /// The stable string stored in the artifact.
    pub fn as_str(&self) -> &'static str {
        match self {
            CollectionMode::Full => "full",
            CollectionMode::Quick => "quick",
            CollectionMode::DeterministicOnly => "deterministic-only",
        }
    }

    /// Parse the stable string form.
    pub fn from_str_opt(s: &str) -> Option<CollectionMode> {
        match s {
            "full" => Some(CollectionMode::Full),
            "quick" => Some(CollectionMode::Quick),
            "deterministic-only" => Some(CollectionMode::DeterministicOnly),
            _ => None,
        }
    }
}

/// Environment metadata recorded with every artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvMeta {
    /// `std::env::consts::OS` at collection time.
    pub os: String,
    /// `std::env::consts::ARCH` at collection time.
    pub arch: String,
    /// Timed batches per benchmark.
    pub batches: u64,
    /// Target duration of one timed batch, in milliseconds.
    pub batch_target_ms: u64,
}

impl EnvMeta {
    /// Metadata for the current process.
    pub fn current(batches: u64, batch_target_ms: u64) -> EnvMeta {
        EnvMeta {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            batches,
            batch_target_ms,
        }
    }
}

/// One benchmark's record in the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable benchmark name (`family/workload/size`).
    pub name: String,
    /// Suite group (e.g. `taxonomy`, `machine.array`).
    pub group: String,
    /// Iterations per timed batch after calibration.
    pub iters_per_batch: u64,
    /// Robust wall-time summary, in ns per iteration (machine-local).
    pub wall_ns: SampleStats,
    /// Deterministic counters from one traced run: `cycles` plus
    /// `event.<class>` totals.  Exactly reproducible, gated hard.
    pub counters: BTreeMap<String, u64>,
}

/// One collector run, ready to write as `BENCH_<label>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Schema version ([`SCHEMA_VERSION`] when written by this code).
    pub schema_version: i64,
    /// Run label (`baseline`, `smoke`, a branch name, ...).
    pub label: String,
    /// Collection depth.
    pub mode: CollectionMode,
    /// Environment metadata.
    pub env: EnvMeta,
    /// Per-benchmark records, in suite order.
    pub benchmarks: Vec<BenchRecord>,
}

/// Why an artifact could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The file could not be read.
    Io {
        /// Path we tried to read.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The bytes were not valid JSON.
    Parse(JsonParseError),
    /// The document is valid JSON but carries a different schema version.
    SchemaVersion {
        /// Version found in the document.
        found: i64,
        /// Version this reader understands.
        expected: i64,
    },
    /// The document is valid JSON of the right version but a field is
    /// missing or has the wrong shape.
    Malformed {
        /// Dotted path of the offending field.
        field: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The artifact label cannot safely name a file (see
    /// [`validate_label`]).
    InvalidLabel {
        /// The offending label.
        label: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, message } => {
                write!(f, "cannot read artifact {path}: {message}")
            }
            ArtifactError::Parse(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::SchemaVersion { found, expected } => write!(
                f,
                "artifact schema version {found} is not the supported version {expected}; \
                 re-record it with bench_collect"
            ),
            ArtifactError::Malformed { field, reason } => {
                write!(f, "artifact field '{field}' is malformed: {reason}")
            }
            ArtifactError::InvalidLabel { label, reason } => {
                write!(
                    f,
                    "artifact label {label:?} cannot name a file ({reason}); \
                     use 1-64 characters from [A-Za-z0-9._-]"
                )
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonParseError> for ArtifactError {
    fn from(e: JsonParseError) -> Self {
        ArtifactError::Parse(e)
    }
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn stats_to_json(s: &SampleStats) -> Json {
    Json::obj(vec![
        ("samples", Json::int(s.samples as i64)),
        ("non_finite", Json::int(s.non_finite as i64)),
        ("kept", Json::int(s.kept as i64)),
        ("min", num(s.min)),
        ("max", num(s.max)),
        ("mean", num(s.mean)),
        ("p10", num(s.p10)),
        ("p50", num(s.p50)),
        ("p90", num(s.p90)),
        ("mad", num(s.mad)),
        ("noise_floor_frac", num(s.noise_floor_frac)),
    ])
}

impl Artifact {
    /// The artifact as a [`Json`] tree (deterministic field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::int(self.schema_version)),
            ("tool", Json::str("skilltax-bench/collector")),
            ("label", Json::str(&self.label)),
            ("mode", Json::str(self.mode.as_str())),
            // Wall times never transfer across machines; say so in-band.
            ("wall_time_scope", Json::str("machine-local")),
            (
                "env",
                Json::obj(vec![
                    ("os", Json::str(&self.env.os)),
                    ("arch", Json::str(&self.env.arch)),
                    ("batches", Json::int(self.env.batches as i64)),
                    (
                        "batch_target_ms",
                        Json::int(self.env.batch_target_ms as i64),
                    ),
                ]),
            ),
            (
                "benchmarks",
                Json::Arr(
                    self.benchmarks
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("name", Json::str(&b.name)),
                                ("group", Json::str(&b.group)),
                                ("iters_per_batch", Json::int(b.iters_per_batch as i64)),
                                ("wall_ns", stats_to_json(&b.wall_ns)),
                                (
                                    "counters",
                                    Json::Obj(
                                        b.counters
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::int(*v as i64)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialise to the on-disk JSON form.
    pub fn emit(&self) -> String {
        let mut out = self.to_json().emit();
        out.push('\n');
        out
    }

    /// Write to `path` (see [`Artifact::emit`]), first rejecting labels
    /// that cannot safely name a file ([`validate_label`]): the label is
    /// interpolated into `BENCH_<label>.json`-style paths by every
    /// caller, so a `/` or `..` smuggled in by a service request must be
    /// a typed error here, not a file outside the artifacts directory.
    pub fn write_file(&self, path: &Path) -> Result<(), ArtifactError> {
        validate_label(&self.label)?;
        std::fs::write(path, self.emit()).map_err(|e| ArtifactError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Parse artifact text, rejecting unknown schema versions with a
    /// typed [`ArtifactError::SchemaVersion`].
    pub fn parse(text: &str) -> Result<Artifact, ArtifactError> {
        Artifact::from_json(&jsonio::parse(text)?)
    }

    /// Read and parse `path`.
    pub fn read_file(path: &Path) -> Result<Artifact, ArtifactError> {
        let text = std::fs::read_to_string(path).map_err(|e| ArtifactError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Artifact::parse(&text)
    }

    /// Build from an already-parsed [`Json`] tree.
    pub fn from_json(json: &Json) -> Result<Artifact, ArtifactError> {
        let root = as_obj(json, "$")?;
        let version = get_i64(root, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(ArtifactError::SchemaVersion {
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let mode_str = get_str(root, "mode")?;
        let mode = CollectionMode::from_str_opt(&mode_str)
            .ok_or_else(|| malformed("mode", format!("unknown collection mode '{mode_str}'")))?;
        let env_json = get(root, "env")?;
        let env_obj = as_obj(env_json, "env")?;
        let env = EnvMeta {
            os: get_str(env_obj, "env.os")?,
            arch: get_str(env_obj, "env.arch")?,
            batches: get_u64(env_obj, "env.batches")?,
            batch_target_ms: get_u64(env_obj, "env.batch_target_ms")?,
        };
        let benchmarks_json = get(root, "benchmarks")?;
        let Json::Arr(items) = benchmarks_json else {
            return Err(malformed("benchmarks", "expected an array"));
        };
        let mut benchmarks = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let field = format!("benchmarks[{i}]");
            let obj = as_obj(item, &field)?;
            let wall_json = get(obj, &format!("{field}.wall_ns"))?;
            let wall_obj = as_obj(wall_json, &format!("{field}.wall_ns"))?;
            let wall_ns = SampleStats {
                samples: get_u64(wall_obj, "wall_ns.samples")? as usize,
                // Absent in artifacts written before the non-finite
                // filter existed; default 0 keeps them readable.
                non_finite: get_u64_or(wall_obj, "wall_ns.non_finite", 0)? as usize,
                kept: get_u64(wall_obj, "wall_ns.kept")? as usize,
                min: get_f64(wall_obj, "wall_ns.min")?,
                max: get_f64(wall_obj, "wall_ns.max")?,
                mean: get_f64(wall_obj, "wall_ns.mean")?,
                p10: get_f64(wall_obj, "wall_ns.p10")?,
                p50: get_f64(wall_obj, "wall_ns.p50")?,
                p90: get_f64(wall_obj, "wall_ns.p90")?,
                mad: get_f64(wall_obj, "wall_ns.mad")?,
                noise_floor_frac: get_f64(wall_obj, "wall_ns.noise_floor_frac")?,
            };
            let counters_json = get(obj, &format!("{field}.counters"))?;
            let counters_obj = as_obj(counters_json, &format!("{field}.counters"))?;
            let mut counters = BTreeMap::new();
            for (key, value) in counters_obj {
                counters.insert(
                    key.clone(),
                    to_u64(value, &format!("{field}.counters.{key}"))?,
                );
            }
            benchmarks.push(BenchRecord {
                name: get_str(obj, &format!("{field}.name"))?,
                group: get_str(obj, &format!("{field}.group"))?,
                iters_per_batch: get_u64(obj, &format!("{field}.iters_per_batch"))?,
                wall_ns,
                counters,
            });
        }
        Ok(Artifact {
            schema_version: version,
            label: get_str(root, "label")?,
            mode,
            env,
            benchmarks,
        })
    }

    /// Look up one benchmark record by name.
    pub fn benchmark(&self, name: &str) -> Option<&BenchRecord> {
        self.benchmarks.iter().find(|b| b.name == name)
    }
}

fn malformed(field: &str, reason: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed {
        field: field.to_owned(),
        reason: reason.into(),
    }
}

fn as_obj<'a>(json: &'a Json, field: &str) -> Result<&'a Vec<(String, Json)>, ArtifactError> {
    match json {
        Json::Obj(pairs) => Ok(pairs),
        _ => Err(malformed(field, "expected an object")),
    }
}

fn get<'a>(obj: &'a [(String, Json)], field: &str) -> Result<&'a Json, ArtifactError> {
    let key = field.rsplit('.').next().expect("split is non-empty");
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| malformed(field, "missing"))
}

fn get_str(obj: &[(String, Json)], field: &str) -> Result<String, ArtifactError> {
    match get(obj, field)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(malformed(field, "expected a string")),
    }
}

fn get_f64(obj: &[(String, Json)], field: &str) -> Result<f64, ArtifactError> {
    match get(obj, field)? {
        Json::Num(n) => Ok(*n),
        _ => Err(malformed(field, "expected a number")),
    }
}

fn to_u64(json: &Json, field: &str) -> Result<u64, ArtifactError> {
    match json {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9e15 => Ok(*n as u64),
        Json::Num(_) => Err(malformed(field, "expected a non-negative integer")),
        _ => Err(malformed(field, "expected a number")),
    }
}

fn get_u64(obj: &[(String, Json)], field: &str) -> Result<u64, ArtifactError> {
    to_u64(get(obj, field)?, field)
}

/// Like [`get_u64`], but a *missing* field yields `default` (present
/// fields of the wrong shape still error).
fn get_u64_or(obj: &[(String, Json)], field: &str, default: u64) -> Result<u64, ArtifactError> {
    let key = field.rsplit('.').next().expect("split is non-empty");
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, value)) => to_u64(value, field),
        None => Ok(default),
    }
}

fn get_i64(obj: &[(String, Json)], field: &str) -> Result<i64, ArtifactError> {
    match get(obj, field)? {
        Json::Num(n) if n.fract() == 0.0 => Ok(*n as i64),
        _ => Err(malformed(field, "expected an integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-populated artifact for tests.
    pub(crate) fn sample_artifact() -> Artifact {
        let mut counters = BTreeMap::new();
        counters.insert("cycles".to_owned(), 123);
        counters.insert("event.issue".to_owned(), 45);
        Artifact {
            schema_version: SCHEMA_VERSION,
            label: "test".to_owned(),
            mode: CollectionMode::Quick,
            env: EnvMeta::current(3, 2),
            benchmarks: vec![BenchRecord {
                name: "machine/vector_add/uni/64".to_owned(),
                group: "machine.uni".to_owned(),
                iters_per_batch: 1024,
                wall_ns: SampleStats::from_samples(&[10.0, 11.0, 10.5, 12.0]),
                counters,
            }],
        }
    }

    #[test]
    fn write_read_round_trip_preserves_every_field() {
        let original = sample_artifact();
        let parsed = Artifact::parse(&original.emit()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn wrong_schema_version_is_a_typed_error() {
        let text = sample_artifact()
            .emit()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        match Artifact::parse(&text) {
            Err(ArtifactError::SchemaVersion { found, expected }) => {
                assert_eq!((found, expected), (999, SCHEMA_VERSION));
            }
            other => panic!("expected SchemaVersion error, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_is_a_malformed_error() {
        let text = sample_artifact().emit().replace("\"label\":\"test\",", "");
        match Artifact::parse(&text) {
            Err(ArtifactError::Malformed { field, .. }) => assert_eq!(field, "label"),
            other => panic!("expected Malformed error, got {other:?}"),
        }
    }

    #[test]
    fn labels_that_escape_the_artifacts_directory_are_rejected() {
        for bad in [
            "",
            ".",
            "..",
            "...",
            "../evil",
            "a/b",
            "a\\b",
            "a b",
            "a\nb",
            "label\0",
            &"x".repeat(65),
        ] {
            assert!(
                matches!(validate_label(bad), Err(ArtifactError::InvalidLabel { .. })),
                "{bad:?} should be rejected"
            );
        }
        for good in ["baseline", "pr-7", "v1.2.3", "a", "release_candidate.1"] {
            assert!(validate_label(good).is_ok(), "{good:?} should be accepted");
        }
    }

    #[test]
    fn write_file_refuses_a_traversal_label() {
        let mut artifact = sample_artifact();
        artifact.label = "../escape".to_owned();
        let path = std::env::temp_dir().join("skilltax_should_never_exist.json");
        match artifact.write_file(&path) {
            Err(ArtifactError::InvalidLabel { label, .. }) => assert_eq!(label, "../escape"),
            other => panic!("expected InvalidLabel, got {other:?}"),
        }
        assert!(!path.exists());
    }

    #[test]
    fn artifacts_without_the_non_finite_field_still_parse() {
        let text = sample_artifact().emit().replace("\"non_finite\":0,", "");
        let parsed = Artifact::parse(&text).expect("pre-non_finite artifacts stay readable");
        assert_eq!(parsed.benchmarks[0].wall_ns.non_finite, 0);
    }
}

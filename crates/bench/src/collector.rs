//! The continuous-performance collector: a registered suite covering
//! every engine family, each benchmark paired with deterministic
//! counters.
//!
//! Every suite entry is one closure run two ways:
//!
//! * **traced** once with a [`Telemetry`] tracer — the run's total
//!   cycles and per-event-class totals (plus domain work counters for
//!   the non-machine engines) become the benchmark's *deterministic
//!   counters*.  The engines are deterministic, so these are
//!   byte-identical across runs and machines, and the regression gate
//!   ([`crate::compare`]) gates **hard** on them;
//! * **untraced** under the [`Harness`] for wall-clock timing — noisy,
//!   machine-local, summarised robustly ([`crate::stats`]) and gated
//!   **soft** against the measured noise floor.
//!
//! [`collect`] runs the whole suite and returns the artifact
//! ([`crate::artifact`]) that `bench_collect` writes to
//! `BENCH_<label>.json`.

use std::collections::BTreeMap;
use std::time::Duration;

use skilltax_catalog::full_survey;
use skilltax_estimate::{estimate_area, estimate_config_bits, CostParams};
use skilltax_machine::array::ArraySubtype;
use skilltax_machine::dataflow::DataflowSubtype;
use skilltax_machine::fleet::{FleetExec, LaneKernels};
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::multi::MultiSubtype;
use skilltax_machine::profile::{NullProfiler, Phase, SpanProfile};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::telemetry::{EventKind, Telemetry, Tracer};
use skilltax_machine::universal::{program_counter, LutFabric};
use skilltax_machine::workload::{
    run_backoff_storm_multi_traced, run_fabric_counters_traced, run_mimd_mix_multi_traced,
    run_mimd_stagger_multi_sharded, run_mimd_stagger_multi_traced, run_reduce_dataflow_traced,
    run_reduce_dataflow_with, run_ring_shift_multi_traced, run_spin_swarm_uni_traced,
    run_stagger_spatial_sharded, run_stagger_spatial_traced, run_vector_add_array_traced,
    run_vector_add_multi_traced, run_vector_add_swarm_array_traced, run_vector_add_uni_traced,
};
use skilltax_machine::{Assembler, CancelToken, Instr, Program, Stats, Word};
use skilltax_service::admission::{DrrQueue, QueuedJob};
use skilltax_service::{
    run_chaos, ChaosConfig, Engine, EngineConfig, JobKind, JobOutcome, JobRequest,
    Scheduler as ServiceScheduler,
};
use skilltax_taxonomy::{classify, flexibility_of_spec, Taxonomy};

use crate::artifact::{Artifact, BenchRecord, CollectionMode, EnvMeta, SCHEMA_VERSION};
use crate::microbench::{
    env_batch_target, env_batches, Harness, DEFAULT_BATCHES, DEFAULT_BATCH_TARGET,
};

/// The tracer a suite closure is handed: off for timing, on for counter
/// capture.  A concrete enum (not a trait object) so the machine run
/// loops stay monomorphised.
#[derive(Debug, Default)]
pub enum BenchTracer {
    /// Timing mode: behave like a `NullTracer`.
    #[default]
    Off,
    /// Counter-capture mode.
    On(Telemetry),
}

impl BenchTracer {
    /// The captured telemetry, if this tracer was on.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        match self {
            BenchTracer::Off => None,
            BenchTracer::On(t) => Some(t),
        }
    }
}

impl Tracer for BenchTracer {
    fn enabled(&self) -> bool {
        matches!(self, BenchTracer::On(_))
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        if let BenchTracer::On(t) = self {
            t.record(cycle, kind);
        }
    }

    fn record_many(&mut self, cycle: u64, kind: EventKind, n: u64) {
        if let BenchTracer::On(t) = self {
            t.record_many(cycle, kind, n);
        }
    }

    fn counter(&mut self, name: &str, delta: u64) {
        if let BenchTracer::On(t) = self {
            t.counter(name, delta);
        }
    }

    fn sample(&mut self, name: &str, value: u64) {
        if let BenchTracer::On(t) = self {
            t.sample(name, value);
        }
    }
}

/// Forks the tracer hooks the way [`skilltax_machine::Profiled`] does,
/// but over a borrowed suite tracer: counters and events keep flowing to
/// the [`BenchTracer`], span hooks go to `profiler`.  The run loops
/// monomorphise over the pair, so with a [`NullProfiler`] every span
/// hook is a deleted no-op and the loop is the baseline loop — which is
/// what the `/nullprofiler` overhead twin exists to demonstrate.
struct SpanFork<'a, P> {
    inner: &'a mut BenchTracer,
    profiler: P,
}

impl<P: Tracer> Tracer for SpanFork<'_, P> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.inner.record(cycle, kind);
        self.profiler.record(cycle, kind);
    }

    fn record_many(&mut self, cycle: u64, kind: EventKind, n: u64) {
        self.inner.record_many(cycle, kind, n);
        self.profiler.record_many(cycle, kind, n);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn sample(&mut self, name: &str, value: u64) {
        self.inner.sample(name, value);
    }

    fn span_enter(&mut self, cycle: u64, phase: Phase) {
        self.profiler.span_enter(cycle, phase);
    }

    fn span_exit(&mut self, cycle: u64) {
        self.profiler.span_exit(cycle);
    }

    fn span_mark(&mut self, cycle: u64, phase: Phase) {
        self.profiler.span_mark(cycle, phase);
    }
}

/// The boxed workload a suite entry runs, traced or untraced.
type BenchFn = Box<dyn Fn(&mut BenchTracer) -> BTreeMap<String, u64>>;

/// One registered suite entry: a name, its group, and the closure run
/// both traced (counters) and untraced (timing).
pub struct SuiteBench {
    name: &'static str,
    group: &'static str,
    run: BenchFn,
}

impl SuiteBench {
    fn new(
        name: &'static str,
        group: &'static str,
        run: impl Fn(&mut BenchTracer) -> BTreeMap<String, u64> + 'static,
    ) -> SuiteBench {
        SuiteBench {
            name,
            group,
            run: Box::new(run),
        }
    }

    /// Stable benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Suite group (engine family).
    pub fn group(&self) -> &'static str {
        self.group
    }

    /// One traced run: the benchmark's deterministic counters.
    pub fn capture_counters(&self) -> BTreeMap<String, u64> {
        let mut tracer = BenchTracer::On(Telemetry::new());
        let mut counters = (self.run)(&mut tracer);
        if let Some(telemetry) = tracer.telemetry() {
            for (label, count) in telemetry.trace.class_counts() {
                counters.insert(format!("event.{label}"), count);
            }
        }
        counters
    }
}

/// Counters shared by every machine-family benchmark: total cycles (the
/// event-class totals are appended by [`SuiteBench::capture_counters`]).
fn stats_counters(stats: &Stats) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    m.insert("cycles".to_owned(), stats.cycles);
    m.insert("instructions".to_owned(), stats.instructions);
    m
}

/// Domain counters for text-rendering benchmarks: output size plus a
/// byte-sum checksum (both exact and platform-independent).
fn text_counters(rendered: &str) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    m.insert("work.bytes".to_owned(), rendered.len() as u64);
    m.insert(
        "work.checksum".to_owned(),
        rendered.bytes().map(u64::from).sum(),
    );
    m
}

/// `x` in exact thousandths — the deterministic integer form of an `f64`
/// model output (identical FP op order ⇒ identical value everywhere).
fn milli(x: f64) -> u64 {
    (x * 1000.0).round() as u64
}

fn vectors(n: usize) -> (Vec<Word>, Vec<Word>) {
    ((0..n as Word).collect(), (0..n as Word).rev().collect())
}

/// `mem[0] = 2 + 3` with a load back — the spatial per-core program.
fn scalar_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 2)
        .movi(1, 3)
        .emit(Instr::Add(2, 0, 1))
        .movi(3, 0)
        .emit(Instr::Store(3, 2))
        .emit(Instr::Load(4, 3))
        .emit(Instr::Halt);
    asm.assemble().expect("scalar program is well formed")
}

/// The registered suite: every engine family behind the paper's tables
/// and figures, in stable order.
pub fn suite() -> Vec<SuiteBench> {
    let mut benches = Vec::new();

    // --- taxonomy: classification and flexibility (Tables I-III) -----
    benches.push(SuiteBench::new(
        "taxonomy/classify_templates",
        "taxonomy",
        |_| {
            let specs: Vec<_> = Taxonomy::extended()
                .implementable()
                .map(|c| c.template_spec())
                .collect();
            let mut classified = 0u64;
            for spec in &specs {
                classify(spec).expect("template specs classify");
                classified += 1;
            }
            let mut m = BTreeMap::new();
            m.insert("work.classified".to_owned(), classified);
            m
        },
    ));
    benches.push(SuiteBench::new(
        "taxonomy/flexibility_survey",
        "taxonomy",
        |_| {
            let survey = full_survey();
            let flex_sum: u64 = survey
                .iter()
                .map(|e| u64::from(flexibility_of_spec(&e.spec)))
                .sum();
            let mut m = BTreeMap::new();
            m.insert("work.entries".to_owned(), survey.len() as u64);
            m.insert("work.flexibility_sum".to_owned(), flex_sum);
            m
        },
    ));

    // --- estimate: Eq 1 / Eq 2 sweeps --------------------------------
    benches.push(SuiteBench::new(
        "estimate/area_eq1_survey",
        "estimate",
        |_| {
            let survey = full_survey();
            let params = CostParams::default();
            let area_sum: f64 = survey
                .iter()
                .map(|e| estimate_area(&e.spec, &params).total())
                .sum();
            let mut m = BTreeMap::new();
            m.insert("work.entries".to_owned(), survey.len() as u64);
            m.insert("work.area_sum_milli".to_owned(), milli(area_sum));
            m
        },
    ));
    benches.push(SuiteBench::new(
        "estimate/config_bits_eq2_sweep",
        "estimate",
        |_| {
            let spec = skilltax_model::dsl::parse_row(
                "IMP-XVI-template",
                "n | n | none | nxn | nxn | nxn | nxn",
            )
            .expect("template row parses");
            let mut bits_sum = 0u64;
            let mut area_sum = 0.0f64;
            for n in [4u32, 16, 64, 256] {
                let params = CostParams::default().with_n(n);
                bits_sum += estimate_config_bits(&spec, &params).total();
                area_sum += estimate_area(&spec, &params).total();
            }
            let mut m = BTreeMap::new();
            m.insert("work.config_bits_sum".to_owned(), bits_sum);
            m.insert("work.area_sum_milli".to_owned(), milli(area_sum));
            m
        },
    ));

    // --- machine run loops: one per family ---------------------------
    benches.push(SuiteBench::new(
        "machine/vector_add/uni/64",
        "machine.uni",
        |tracer| {
            let (a, b) = vectors(64);
            let run = run_vector_add_uni_traced(&a, &b, tracer).expect("IUP runs vector add");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/vector_add/array-I/64",
        "machine.array",
        |tracer| {
            let (a, b) = vectors(64);
            let run = run_vector_add_array_traced(ArraySubtype::I, &a, &b, tracer)
                .expect("IAP-I runs vector add");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/vector_add/multi-simd/8",
        "machine.multi",
        |tracer| {
            let (a, b) = vectors(8);
            let subtype = MultiSubtype::from_index(1).expect("IMP-I exists");
            let run =
                run_vector_add_multi_traced(subtype, &a, &b, tracer).expect("IMP emulates SIMD");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/mimd_mix/multi/8x16",
        "machine.multi",
        |tracer| {
            let slices: Vec<Vec<Word>> = (0..8).map(|i| (i..i + 16).collect()).collect();
            let subtype = MultiSubtype::from_index(1).expect("IMP-I exists");
            let run =
                run_mimd_mix_multi_traced(subtype, &slices, tracer).expect("IMP runs MIMD mix");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spatial/fused_pair/4",
        "machine.spatial",
        |tracer| {
            let mut machine = SpatialMachine::new(
                MultiSubtype::from_code(0).expect("code 0 is ISP-I"),
                FabricTopology::Crossbar,
                4,
                8,
            )
            .expect("spatial machine builds");
            machine.fuse(0, 1).expect("crossbar IP-IP fuses");
            let programs: Vec<Program> = (0..4).map(|_| scalar_program()).collect();
            let stats = machine
                .run_traced(&programs, tracer)
                .expect("fused groups run");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/dataflow/reduce/4dp/64",
        "machine.dataflow",
        |tracer| {
            let data: Vec<Word> = (0..64).collect();
            let run = run_reduce_dataflow_traced(DataflowSubtype::IV, 4, &data, tracer)
                .expect("DMP-IV reduces");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/fabric/program_counter/8bit",
        "machine.fabric",
        |tracer| {
            let fabric = LutFabric::new(256, 4, 32);
            let bitstream = program_counter(&fabric, 8).expect("8-bit PC maps");
            let mut pc = fabric.configure(&bitstream).expect("bitstream configures");
            let no_branch = vec![false; 9];
            let (_, stats) = pc
                .run_until_traced(
                    &no_branch,
                    1_000,
                    |out| {
                        out.iter()
                            .enumerate()
                            .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i))
                            == 50
                    },
                    tracer,
                )
                .expect("PC reaches 50 inside the budget");
            stats_counters(&stats)
        },
    ));

    // --- event-driven scheduler vs dense reference twins -------------
    //
    // Each workload below appears twice: the default event-driven
    // scheduler and its `/dense` twin forcing the per-cycle reference
    // loop.  Deterministic counters are identical by construction
    // (enforced by the scheduler-identity suite); only wall time
    // differs, which is exactly what EXPERIMENTS.md X7 records.
    benches.push(SuiteBench::new(
        "machine/mimd_stagger/multi/256",
        "machine.multi",
        |tracer| {
            let run = run_mimd_stagger_multi_traced(256, 4096, false, tracer)
                .expect("staggered MIMD runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/mimd_stagger/multi/256/dense",
        "machine.multi",
        |tracer| {
            let run = run_mimd_stagger_multi_traced(256, 4096, true, tracer)
                .expect("staggered MIMD runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spatial_stagger/64",
        "machine.spatial",
        |tracer| {
            let run =
                run_stagger_spatial_traced(64, 4096, false, tracer).expect("staggered ISP runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spatial_stagger/64/dense",
        "machine.spatial",
        |tracer| {
            let run =
                run_stagger_spatial_traced(64, 4096, true, tracer).expect("staggered ISP runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/dataflow/reduce/8dp/2048",
        "machine.dataflow",
        |tracer| {
            let data: Vec<Word> = (0..2048).collect();
            let run = run_reduce_dataflow_with(DataflowSubtype::IV, 8, &data, false, tracer)
                .expect("DMP-IV reduces");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/dataflow/reduce/8dp/2048/dense",
        "machine.dataflow",
        |tracer| {
            let data: Vec<Word> = (0..2048).collect();
            let run = run_reduce_dataflow_with(DataflowSubtype::IV, 8, &data, true, tracer)
                .expect("DMP-IV reduces");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/backoff_storm/multi/60k",
        "machine.multi",
        |tracer| {
            let run = run_backoff_storm_multi_traced(60_000, 80, false, tracer)
                .expect("the storm delivers");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/backoff_storm/multi/60k/dense",
        "machine.multi",
        |tracer| {
            let run = run_backoff_storm_multi_traced(60_000, 80, true, tracer)
                .expect("the storm delivers");
            stats_counters(&run.stats)
        },
    ));

    // --- shard-parallel twins ----------------------------------------
    //
    // The `/sharded` twin of a workload splits the machine across two
    // worker threads (`with_shards(2)` — fixed, so the counters don't
    // depend on the host's core count).  Deterministic counters are
    // identical to the single-threaded entry by construction (enforced
    // by the shard-identity suite); wall time is where sharding shows
    // up, and only on multi-core hosts.
    benches.push(SuiteBench::new(
        "machine/mimd_stagger/multi/256/sharded",
        "machine.multi",
        |tracer| {
            let run =
                run_mimd_stagger_multi_sharded(256, 4096, 2, tracer).expect("staggered MIMD runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spatial_stagger/64/sharded",
        "machine.spatial",
        |tracer| {
            let run = run_stagger_spatial_sharded(64, 4096, 2, tracer).expect("staggered ISP runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/ring_shift/multi/64",
        "machine.multi",
        |tracer| {
            let run = run_ring_shift_multi_traced(64, 1, tracer).expect("the ring delivers");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/ring_shift/multi/64/sharded",
        "machine.multi",
        |tracer| {
            let run = run_ring_shift_multi_traced(64, 2, tracer).expect("the ring delivers");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/fabric_counters/12",
        "machine.fabric",
        |tracer| {
            let run = run_fabric_counters_traced(12, 1, 1_000, tracer).expect("the chains go high");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/fabric_counters/12/sharded",
        "machine.fabric",
        |tracer| {
            let run = run_fabric_counters_traced(12, 2, 1_000, tracer).expect("the chains go high");
            stats_counters(&run.stats)
        },
    ));

    // --- span-profiler overhead twins --------------------------------
    //
    // `/nullprofiler` forks the span hooks into a [`NullProfiler`] —
    // all no-ops the monomorphiser deletes, so this is the compiled
    // proof that a disabled profiler costs nothing: its wall time must
    // sit in the baseline's noise floor.  `/profiled` forks into a live
    // [`SpanProfile`], pricing the enabled profiler.  Both twins'
    // deterministic counters are gated hard identical to the baseline
    // entry (profiling observes a run, it never perturbs one).
    benches.push(SuiteBench::new(
        "machine/mimd_stagger/multi/256/nullprofiler",
        "machine.multi",
        |tracer| {
            let mut fork = SpanFork {
                inner: tracer,
                profiler: NullProfiler,
            };
            let run = run_mimd_stagger_multi_traced(256, 4096, false, &mut fork)
                .expect("staggered MIMD runs");
            stats_counters(&run.stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/mimd_stagger/multi/256/profiled",
        "machine.multi",
        |tracer| {
            let mut fork = SpanFork {
                inner: tracer,
                profiler: SpanProfile::new(),
            };
            let run = run_mimd_stagger_multi_traced(256, 4096, false, &mut fork)
                .expect("staggered MIMD runs");
            fork.profiler.seal();
            assert_eq!(
                fork.profiler.leaf_cycle_total(),
                run.stats.cycles,
                "profiled twin leaves must tile the run"
            );
            stats_counters(&run.stats)
        },
    ));

    // --- fleet twins (structure-of-arrays batch execution) -----------
    //
    // Each swarm workload appears three times: the baseline runs its N
    // instances sequentially on the dense reference machines, the
    // `/fleet` twin routes the same population through the SoA executors
    // in `machine::fleet` (DESIGN.md §14) with the scalar lane kernels,
    // and the `/fleet_simd` twin drives the wide lane kernels over the
    // same range runs (8-wide unrolled; AVX2/SSE2 under `--features
    // simd` with runtime CPU detection, and without the feature the
    // wide request degrades to the scalar loops — so the twin exists in
    // every build and the hard counter gate below always holds).
    // Deterministic counters are identical by construction (enforced by
    // the fleet-identity suite and the test below); wall time is where
    // the amortisation shows — the fleet twins are expected to beat N
    // sequential runs at these populations, and `/fleet_simd` to beat
    // `/fleet` on the divergence-free array family.
    benches.push(SuiteBench::new(
        "machine/spin_swarm/uni/96",
        "machine.uni",
        |tracer| {
            let stats = run_spin_swarm_uni_traced(96, 150, FleetExec::Sequential, tracer)
                .expect("the swarm spins");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spin_swarm/uni/96/fleet",
        "machine.uni",
        |tracer| {
            let stats =
                run_spin_swarm_uni_traced(96, 150, FleetExec::Fleet(LaneKernels::Scalar), tracer)
                    .expect("the swarm spins");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/spin_swarm/uni/96/fleet_simd",
        "machine.uni",
        |tracer| {
            let stats =
                run_spin_swarm_uni_traced(96, 150, FleetExec::Fleet(LaneKernels::Wide), tracer)
                    .expect("the swarm spins");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/vector_add_swarm/array-I/64x4",
        "machine.array",
        |tracer| {
            let stats = run_vector_add_swarm_array_traced(
                ArraySubtype::I,
                64,
                4,
                FleetExec::Sequential,
                tracer,
            )
            .expect("the swarm adds");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/vector_add_swarm/array-I/64x4/fleet",
        "machine.array",
        |tracer| {
            let stats = run_vector_add_swarm_array_traced(
                ArraySubtype::I,
                64,
                4,
                FleetExec::Fleet(LaneKernels::Scalar),
                tracer,
            )
            .expect("the swarm adds");
            stats_counters(&stats)
        },
    ));
    benches.push(SuiteBench::new(
        "machine/vector_add_swarm/array-I/64x4/fleet_simd",
        "machine.array",
        |tracer| {
            let stats = run_vector_add_swarm_array_traced(
                ArraySubtype::I,
                64,
                4,
                FleetExec::Fleet(LaneKernels::Wide),
                tracer,
            )
            .expect("the swarm adds");
            stats_counters(&stats)
        },
    ));

    // --- report rendering --------------------------------------------
    benches.push(SuiteBench::new("report/table3_render", "report", |_| {
        text_counters(&crate::artifacts::table3())
    }));
    benches.push(SuiteBench::new("report/fig7_render", "report", |_| {
        text_counters(&crate::artifacts::fig7_ascii())
    }));

    // --- job service -------------------------------------------------
    //
    // The multi-tenant service layer.  Its deterministic counters come
    // from the same cycle-exact engines as the machine entries plus the
    // chaos harness's scripted admission clock, so they are gated hard
    // like everything else; wall time here is the service overhead
    // (queueing, dispatch, pooling) around the simulation itself.
    benches.push(SuiteBench::new(
        "service/admission/drr/1k",
        "service",
        |_| {
            let mut queue = DrrQueue::new(1024, 4);
            let tenants = ["a", "b", "c", "d"];
            for i in 0..1024u64 {
                let tenant = tenants[(i % 4) as usize];
                let cost = 1 + i % 7;
                queue
                    .push(tenant, QueuedJob { payload: i, cost })
                    .expect("under capacity");
            }
            let mut pops = 0u64;
            let mut order_checksum = 0u64;
            while let Some(job) = queue.pop() {
                pops += 1;
                // FNV-style fold kept in 32 bits so the counter survives
                // the JSON round-trip exactly.
                order_checksum = (order_checksum
                    .wrapping_mul(0x0100_01B3)
                    .wrapping_add(job.payload))
                    & 0xFFFF_FFFF;
            }
            let mut m = BTreeMap::new();
            m.insert("work.pops".to_owned(), pops);
            m.insert("work.order_checksum".to_owned(), order_checksum);
            m
        },
    ));
    {
        let engine = std::sync::Arc::new(Engine::new(EngineConfig::default()));
        engine.pool().prewarm(1);
        benches.push(SuiteBench::new(
            "service/pooled_request/uni/400",
            "service",
            move |_| {
                let request = JobRequest {
                    tenant: "bench".to_owned(),
                    kind: JobKind::Simulate {
                        cores: 1,
                        iters: 400,
                        scheduler: ServiceScheduler::Event,
                        fault_seed: None,
                    },
                    deadline_cycles: None,
                };
                let outcome = engine.execute(&request, &CancelToken::new());
                let stats = match &outcome {
                    JobOutcome::Completed {
                        stats: Some(stats), ..
                    } => stats,
                    other => panic!("warm pooled request completes: {other:?}"),
                };
                stats_counters(stats)
            },
        ));
    }
    benches.push(SuiteBench::new(
        "service/chaos/soak/3rounds",
        "service",
        |_| {
            let report = run_chaos(&ChaosConfig {
                rounds: 3,
                workers: 2,
                queue_capacity: 8,
                ..ChaosConfig::default()
            });
            assert!(report.passed(), "the bench soak holds its invariants");
            let mut m = BTreeMap::new();
            m.insert("work.submitted".to_owned(), report.submitted);
            m.insert("work.admitted".to_owned(), report.admitted);
            m.insert("work.peak_depth".to_owned(), report.peak_depth as u64);
            m.insert(
                "work.rejections".to_owned(),
                report.rejections.values().sum(),
            );
            for (label, count) in &report.outcomes {
                m.insert(format!("work.outcome.{label}"), *count);
            }
            m
        },
    ));

    benches
}

/// Batch depth for a mode, with the `SKILLTAX_BENCH_*` environment
/// variables taking precedence (the documented quick defaults keep the
/// CI smoke step in the seconds range).
pub fn depth_for(mode: CollectionMode) -> (usize, Duration) {
    let default_batches = match mode {
        CollectionMode::Full => DEFAULT_BATCHES,
        CollectionMode::Quick => 3,
        CollectionMode::DeterministicOnly => 2,
    };
    let default_target = match mode {
        CollectionMode::Full => DEFAULT_BATCH_TARGET,
        CollectionMode::Quick => Duration::from_millis(2),
        CollectionMode::DeterministicOnly => Duration::from_millis(1),
    };
    (
        env_batches().unwrap_or(default_batches),
        env_batch_target().unwrap_or(default_target),
    )
}

/// Run the full suite: one traced run per benchmark for the
/// deterministic counters, then the timing batches, returning the
/// artifact to write.
pub fn collect(label: &str, mode: CollectionMode) -> Artifact {
    collect_filtered(label, mode, None)
}

/// [`collect`] restricted to suite entries whose name contains `filter`
/// (case-sensitive substring; `None` runs everything).
pub fn collect_filtered(label: &str, mode: CollectionMode, filter: Option<&str>) -> Artifact {
    let (batches, batch_target) = depth_for(mode);
    let mut harness = Harness::new()
        .with_batches(batches)
        .with_batch_target(batch_target);
    let mut records = Vec::new();
    for bench in suite()
        .into_iter()
        .filter(|b| filter.is_none_or(|f| b.name().contains(f)))
    {
        let counters = bench.capture_counters();
        let measurement = harness.bench(bench.name(), || {
            let mut off = BenchTracer::Off;
            (bench.run)(&mut off)
        });
        records.push(BenchRecord {
            name: bench.name().to_owned(),
            group: bench.group().to_owned(),
            iters_per_batch: measurement.iters_per_batch,
            wall_ns: measurement.robust(),
            counters,
        });
    }
    Artifact {
        schema_version: SCHEMA_VERSION,
        label: label.to_owned(),
        mode,
        env: EnvMeta::current(batches as u64, batch_target.as_millis() as u64),
        benchmarks: records,
    }
}

/// The deterministic half only — every benchmark's counters from one
/// traced run each, with no timing batches (used by tests and tooling
/// that only care about the hard-gated facts).
pub fn collect_counters() -> Vec<(String, BTreeMap<String, u64>)> {
    suite()
        .iter()
        .map(|b| (b.name().to_owned(), b.capture_counters()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_engine_family() {
        let groups: std::collections::BTreeSet<&str> = suite().iter().map(|b| b.group()).collect();
        for family in [
            "taxonomy",
            "estimate",
            "machine.uni",
            "machine.array",
            "machine.multi",
            "machine.spatial",
            "machine.dataflow",
            "machine.fabric",
            "report",
            "service",
        ] {
            assert!(groups.contains(family), "suite is missing {family}");
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<&str> = suite().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn deterministic_counters_are_identical_across_runs() {
        assert_eq!(collect_counters(), collect_counters());
    }

    #[test]
    fn scheduler_twins_report_identical_counters() {
        let suite = suite();
        let find = |name: &str| {
            suite
                .iter()
                .find(|b| b.name() == name)
                .expect("registered")
                .capture_counters()
        };
        for base in [
            "machine/mimd_stagger/multi/256",
            "machine/spatial_stagger/64",
            "machine/dataflow/reduce/8dp/2048",
            "machine/backoff_storm/multi/60k",
        ] {
            assert_eq!(find(base), find(&format!("{base}/dense")), "{base}");
        }
    }

    #[test]
    fn sharded_twins_report_identical_counters() {
        let suite = suite();
        let find = |name: &str| {
            suite
                .iter()
                .find(|b| b.name() == name)
                .expect("registered")
                .capture_counters()
        };
        for base in [
            "machine/mimd_stagger/multi/256",
            "machine/spatial_stagger/64",
            "machine/ring_shift/multi/64",
            "machine/fabric_counters/12",
        ] {
            assert_eq!(find(base), find(&format!("{base}/sharded")), "{base}");
        }
    }

    #[test]
    fn profiler_twins_report_identical_counters() {
        let suite = suite();
        let find = |name: &str| {
            suite
                .iter()
                .find(|b| b.name() == name)
                .expect("registered")
                .capture_counters()
        };
        let baseline = find("machine/mimd_stagger/multi/256");
        assert_eq!(
            baseline,
            find("machine/mimd_stagger/multi/256/nullprofiler"),
            "a disabled profiler must not change a single counter"
        );
        assert_eq!(
            baseline,
            find("machine/mimd_stagger/multi/256/profiled"),
            "an enabled profiler observes the run, it never perturbs it"
        );
    }

    #[test]
    fn fleet_twins_report_identical_counters() {
        let suite = suite();
        let find = |name: &str| {
            suite
                .iter()
                .find(|b| b.name() == name)
                .expect("registered")
                .capture_counters()
        };
        for base in [
            "machine/spin_swarm/uni/96",
            "machine/vector_add_swarm/array-I/64x4",
        ] {
            assert_eq!(
                find(base),
                find(&format!("{base}/fleet")),
                "{base}: SoA fleet execution must not change a single counter"
            );
            assert_eq!(
                find(base),
                find(&format!("{base}/fleet_simd")),
                "{base}: wide lane kernels must not change a single counter"
            );
        }
    }

    #[test]
    fn filtered_collection_restricts_the_suite() {
        let artifact = collect_filtered(
            "test",
            CollectionMode::DeterministicOnly,
            Some("vector_add"),
        );
        assert!(!artifact.benchmarks.is_empty());
        assert!(artifact
            .benchmarks
            .iter()
            .all(|b| b.name.contains("vector_add")));
    }

    #[test]
    fn machine_benchmarks_capture_cycles_and_event_classes() {
        let counters = suite()
            .iter()
            .find(|b| b.name() == "machine/vector_add/uni/64")
            .expect("registered")
            .capture_counters();
        assert!(counters["cycles"] > 0);
        assert!(counters["event.issue"] > 0);
        assert!(counters.contains_key("event.stall"));
    }
}

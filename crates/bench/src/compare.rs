//! The regression gate: diff a current artifact against a baseline.
//!
//! The gating policy has two tiers, matching what each measurement can
//! actually promise:
//!
//! * **Deterministic counters gate hard.**  The engines are
//!   deterministic, so any counter delta — more cycles, fewer messages,
//!   a benchmark disappearing from the suite — is a real behavioral
//!   change.  It must be acknowledged: either the change is a bug to
//!   fix, or the baseline must be re-recorded alongside the PR that
//!   explains it.  [`Comparison::is_clean`] is false and
//!   `bench_compare` exits non-zero.
//! * **Wall times gate soft.**  They are machine-local noise-bearing
//!   observations; a p50 delta is only *flagged* when it exceeds the
//!   measured noise floor of both runs, and never fails the gate.
//!   Against a `deterministic-only` baseline (the committed one) wall
//!   comparison is skipped entirely.

use skilltax_report::{regression_summary, regression_table, RegressionRow, Severity};

use crate::artifact::{Artifact, BenchRecord, CollectionMode};

/// One deterministic counter that differs between baseline and current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter key (`cycles`, `event.issue`, `work.checksum`, ...).
    pub key: String,
    /// Baseline value (`None` when the counter is new).
    pub baseline: Option<u64>,
    /// Current value (`None` when the counter disappeared).
    pub current: Option<u64>,
}

/// The wall-time comparison of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WallDelta {
    /// Baseline p50, ns per iteration.
    pub baseline_p50: f64,
    /// Current p50, ns per iteration.
    pub current_p50: f64,
    /// Relative change `(current - baseline) / baseline`.
    pub rel_change: f64,
    /// The gate threshold: the larger of the two runs' noise floors.
    pub floor: f64,
    /// Did the delta exceed the floor?
    pub flagged: bool,
}

/// One benchmark's comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Benchmark name.
    pub name: String,
    /// Counters that differ (empty means deterministically unchanged).
    pub counter_deltas: Vec<CounterDelta>,
    /// Wall-time delta, when both sides carry comparable wall times.
    pub wall: Option<WallDelta>,
}

/// The full diff of two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmarks in the baseline that the current run no longer has
    /// (a suite regression — gated hard).
    pub missing: Vec<String>,
    /// Benchmarks new in the current run (informational; re-record the
    /// baseline to start gating them).
    pub added: Vec<String>,
    /// Per-benchmark results for the common set, in baseline order.
    pub benches: Vec<BenchComparison>,
    /// False when wall comparison was skipped (deterministic-only side).
    pub wall_compared: bool,
}

fn wall_delta(base: &BenchRecord, cur: &BenchRecord) -> Option<WallDelta> {
    if base.wall_ns.p50 <= 0.0 {
        return None;
    }
    let rel_change = (cur.wall_ns.p50 - base.wall_ns.p50) / base.wall_ns.p50;
    let floor = base
        .wall_ns
        .noise_floor_frac
        .max(cur.wall_ns.noise_floor_frac);
    Some(WallDelta {
        baseline_p50: base.wall_ns.p50,
        current_p50: cur.wall_ns.p50,
        rel_change,
        floor,
        flagged: rel_change.abs() > floor,
    })
}

impl Comparison {
    /// Diff `current` against `baseline`.
    pub fn between(baseline: &Artifact, current: &Artifact) -> Comparison {
        let wall_compared = baseline.mode != CollectionMode::DeterministicOnly
            && current.mode != CollectionMode::DeterministicOnly;
        let mut missing = Vec::new();
        let mut benches = Vec::new();
        for base in &baseline.benchmarks {
            let Some(cur) = current.benchmark(&base.name) else {
                missing.push(base.name.clone());
                continue;
            };
            let mut counter_deltas = Vec::new();
            let keys: std::collections::BTreeSet<&String> =
                base.counters.keys().chain(cur.counters.keys()).collect();
            for key in keys {
                let b = base.counters.get(key).copied();
                let c = cur.counters.get(key).copied();
                if b != c {
                    counter_deltas.push(CounterDelta {
                        key: key.clone(),
                        baseline: b,
                        current: c,
                    });
                }
            }
            benches.push(BenchComparison {
                name: base.name.clone(),
                counter_deltas,
                wall: if wall_compared {
                    wall_delta(base, cur)
                } else {
                    None
                },
            });
        }
        let added = current
            .benchmarks
            .iter()
            .filter(|b| baseline.benchmark(&b.name).is_none())
            .map(|b| b.name.clone())
            .collect();
        Comparison {
            missing,
            added,
            benches,
            wall_compared,
        }
    }

    /// Benchmarks with hard (deterministic) regressions: counter deltas
    /// plus benchmarks missing from the current run.
    pub fn hard_regressions(&self) -> Vec<&str> {
        self.missing
            .iter()
            .map(String::as_str)
            .chain(
                self.benches
                    .iter()
                    .filter(|b| !b.counter_deltas.is_empty())
                    .map(|b| b.name.as_str()),
            )
            .collect()
    }

    /// Benchmarks whose wall-time drift exceeds the noise floor.
    pub fn soft_flags(&self) -> Vec<&str> {
        self.benches
            .iter()
            .filter(|b| b.wall.as_ref().is_some_and(|w| w.flagged))
            .map(|b| b.name.as_str())
            .collect()
    }

    /// True when the gate passes (no hard regressions; soft drift is
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.hard_regressions().is_empty()
    }

    /// The report rows (plain data for [`skilltax_report::regression`]).
    pub fn rows(&self) -> Vec<RegressionRow> {
        let mut rows = Vec::new();
        for name in &self.missing {
            rows.push(RegressionRow {
                benchmark: name.clone(),
                metric: "benchmark".to_owned(),
                baseline: "present".to_owned(),
                current: "missing".to_owned(),
                delta: "-".to_owned(),
                severity: Severity::Hard,
            });
        }
        for name in &self.added {
            rows.push(RegressionRow {
                benchmark: name.clone(),
                metric: "benchmark".to_owned(),
                baseline: "absent".to_owned(),
                current: "new".to_owned(),
                delta: "+".to_owned(),
                severity: Severity::Info,
            });
        }
        for bench in &self.benches {
            for delta in &bench.counter_deltas {
                let fmt = |v: Option<u64>| match v {
                    Some(v) => v.to_string(),
                    None => "(none)".to_owned(),
                };
                let diff = match (delta.baseline, delta.current) {
                    (Some(b), Some(c)) => {
                        let signed = c as i128 - b as i128;
                        format!("{signed:+}")
                    }
                    _ => "±".to_owned(),
                };
                rows.push(RegressionRow {
                    benchmark: bench.name.clone(),
                    metric: format!("counter {}", delta.key),
                    baseline: fmt(delta.baseline),
                    current: fmt(delta.current),
                    delta: diff,
                    severity: Severity::Hard,
                });
            }
            if let Some(wall) = bench.wall.as_ref().filter(|w| w.flagged) {
                rows.push(RegressionRow {
                    benchmark: bench.name.clone(),
                    metric: "wall p50".to_owned(),
                    baseline: format!("{:.1} ns", wall.baseline_p50),
                    current: format!("{:.1} ns", wall.current_p50),
                    delta: format!(
                        "{:+.1}% (floor {:.1}%)",
                        wall.rel_change * 100.0,
                        wall.floor * 100.0
                    ),
                    severity: Severity::Soft,
                });
            }
        }
        if !self.wall_compared {
            rows.push(RegressionRow {
                benchmark: "(all)".to_owned(),
                metric: "wall".to_owned(),
                baseline: "machine-local".to_owned(),
                current: "machine-local".to_owned(),
                delta: "skipped".to_owned(),
                severity: Severity::Info,
            });
        }
        rows
    }

    /// Render the full ASCII report: the regression table (when anything
    /// moved) and the verdict line.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let hard = self.hard_regressions().len();
        let soft = self.soft_flags().len();
        let info = rows.iter().filter(|r| r.severity == Severity::Info).count();
        let mut out = String::new();
        if !rows.is_empty() {
            out.push_str(&regression_table(&rows).render_ascii());
            out.push('\n');
        }
        out.push_str(&regression_summary(self.benches.len(), hard, soft, info));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BenchRecord, EnvMeta, SCHEMA_VERSION};
    use crate::stats::SampleStats;
    use std::collections::BTreeMap;

    fn record(name: &str, cycles: u64, p50: f64) -> BenchRecord {
        let mut counters = BTreeMap::new();
        counters.insert("cycles".to_owned(), cycles);
        let samples = vec![p50 * 0.98, p50, p50 * 1.02];
        BenchRecord {
            name: name.to_owned(),
            group: "test".to_owned(),
            iters_per_batch: 100,
            wall_ns: SampleStats::from_samples(&samples),
            counters,
        }
    }

    fn artifact(mode: CollectionMode, benchmarks: Vec<BenchRecord>) -> Artifact {
        Artifact {
            schema_version: SCHEMA_VERSION,
            label: "test".to_owned(),
            mode,
            env: EnvMeta::current(3, 2),
            benchmarks,
        }
    }

    #[test]
    fn identical_artifacts_are_clean() {
        let a = artifact(CollectionMode::Quick, vec![record("x", 100, 50.0)]);
        let cmp = Comparison::between(&a, &a.clone());
        assert!(cmp.is_clean());
        assert!(cmp.soft_flags().is_empty());
        assert!(cmp.render().contains("OK:"));
    }

    #[test]
    fn counter_change_is_a_hard_regression_naming_the_benchmark() {
        let base = artifact(CollectionMode::Quick, vec![record("x", 100, 50.0)]);
        let cur = artifact(CollectionMode::Quick, vec![record("x", 200, 50.0)]);
        let cmp = Comparison::between(&base, &cur);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.hard_regressions(), vec!["x"]);
        let report = cmp.render();
        assert!(report.contains("FAIL"));
        assert!(report.contains("counter cycles"));
        assert!(report.contains("+100"));
    }

    #[test]
    fn missing_benchmark_gates_hard_and_new_one_is_info() {
        let base = artifact(CollectionMode::Quick, vec![record("old", 1, 50.0)]);
        let cur = artifact(CollectionMode::Quick, vec![record("new", 1, 50.0)]);
        let cmp = Comparison::between(&base, &cur);
        assert_eq!(cmp.missing, vec!["old"]);
        assert_eq!(cmp.added, vec!["new"]);
        assert!(!cmp.is_clean());
    }

    #[test]
    fn wall_drift_beyond_floor_is_soft_only() {
        let base = artifact(CollectionMode::Quick, vec![record("x", 100, 50.0)]);
        let cur = artifact(CollectionMode::Quick, vec![record("x", 100, 500.0)]);
        let cmp = Comparison::between(&base, &cur);
        assert!(cmp.is_clean(), "wall drift never gates hard");
        assert_eq!(cmp.soft_flags(), vec!["x"]);
        assert!(cmp.render().contains("OK (with drift)"));
    }

    #[test]
    fn deterministic_only_baseline_skips_wall_comparison() {
        let base = artifact(
            CollectionMode::DeterministicOnly,
            vec![record("x", 100, 50.0)],
        );
        let cur = artifact(CollectionMode::Quick, vec![record("x", 100, 500.0)]);
        let cmp = Comparison::between(&base, &cur);
        assert!(!cmp.wall_compared);
        assert!(cmp.soft_flags().is_empty());
        assert!(cmp.is_clean());
    }
}

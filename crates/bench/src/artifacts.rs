//! Artifact generators: one function per paper table/figure, returning the
//! regenerated artifact as text (ASCII, markdown or SVG).  The `table1`,
//! `fig7`, ... binaries are thin wrappers over these, and the integration
//! tests assert their contents against the paper.

use skilltax_catalog::regenerate_table_iii;
use skilltax_estimate::{
    estimate_area, estimate_config_bits, pareto_front, sweep_classes, CostParams, TechNode,
};
use skilltax_machine::morph;
use skilltax_model::dsl::parse_row;
use skilltax_model::ArchSpec;
use skilltax_report::{
    ascii_bar_chart, ascii_trend_chart, diagram, figure, svg_bar_chart, svg_line_chart, Align, Bar,
    CsvWriter, Series, Table,
};
use skilltax_taxonomy::{flexibility_table, hierarchy, Taxonomy};
use skilltax_trends::{PublicationDatabase, Topic};

/// Table I — the extended taxonomy table (all 47 classes).
pub fn table1() -> String {
    let mut table = Table::new(vec![
        "S.N", "Gran.", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP", "Comments",
    ])
    .with_title("TABLE I: EXTENDED TABLE FROM SKILLICORN'S TAXONOMY")
    .with_aligns(vec![
        Align::Right,
        Align::Left,
        Align::Center,
        Align::Center,
        Align::Center,
        Align::Center,
        Align::Center,
        Align::Center,
        Align::Center,
        Align::Left,
    ]);
    let mut section = "";
    for class in Taxonomy::extended().classes() {
        if class.section != section {
            section = class.section;
            table.push_row(vec![format!("-- {section} --")]);
        }
        let spec = class.template_spec();
        let mut cells = vec![format!("{}.", class.serial), class.granularity.to_string()];
        cells.push(spec.ips.to_string());
        cells.push(spec.dps.to_string());
        for (_, link) in spec.connectivity.iter() {
            cells.push(link.to_string());
        }
        cells.push(class.designation.to_string());
        table.push_row(cells);
    }
    table.render_ascii()
}

/// Table II — relative flexibility values for every named class.
pub fn table2() -> String {
    let mut table = Table::new(vec!["Group", "Class", "Flexibility"])
        .with_title("TABLE II: RELATIVE FLEXIBILITY VALUES FOR DIFFERENT CLASSES")
        .with_aligns(vec![Align::Left, Align::Left, Align::Right]);
    let mut group = "";
    for entry in flexibility_table() {
        let group_cell = if entry.group != group {
            group = entry.group;
            entry.group
        } else {
            ""
        };
        table.push_row(vec![
            group_cell.to_owned(),
            entry.name.to_string(),
            entry.flexibility.to_string(),
        ]);
    }
    table.render_ascii()
}

/// Table III — the survey of 25 architectures, re-derived by the engine.
pub fn table3() -> String {
    let mut table = Table::new(vec![
        "Architecture",
        "IPs | DPs | IP-IP | IP-DP | IP-IM | DP-DM | DP-DP",
        "Name",
        "Flex",
        "Paper",
        "Note",
    ])
    .with_title("TABLE III: SURVEY OF MODERN PARALLEL AND RECONFIGURABLE ARCHITECTURES")
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Left,
    ]);
    for row in regenerate_table_iii() {
        let paper = format!("{}/{}", row.paper.0, row.paper.1);
        let note = if row.erratum.is_some() {
            "erratum: see EXPERIMENTS.md"
        } else {
            ""
        };
        table.push_row(vec![
            row.name,
            row.structure,
            row.class,
            row.flexibility.to_string(),
            paper,
            note.to_owned(),
        ]);
    }
    table.render_ascii()
}

/// Table III as CSV (for downstream tooling).
pub fn table3_csv() -> String {
    let mut csv = CsvWriter::new();
    csv.header(&[
        "architecture",
        "structure",
        "class",
        "flexibility",
        "paper_class",
        "paper_flexibility",
    ]);
    for row in regenerate_table_iii() {
        csv.row(&[
            row.name.clone(),
            row.structure.clone(),
            row.class.clone(),
            row.flexibility.to_string(),
            row.paper.0.to_owned(),
            row.paper.1.to_string(),
        ]);
    }
    csv.finish()
}

fn fig1_series() -> Vec<Series> {
    let db = PublicationDatabase::default();
    Topic::ALL
        .iter()
        .map(|&topic| Series {
            label: topic.label().to_owned(),
            points: db
                .series(topic)
                .into_iter()
                .map(|(y, c)| (f64::from(y), f64::from(c)))
                .collect(),
        })
        .collect()
}

/// Fig 1 — research trends (ASCII view).
pub fn fig1_ascii() -> String {
    let mut out = ascii_trend_chart(
        "Fig 1: Research Trends in Parallel Computing, 1995-2010 \
         (synthetic IEEE-database substitute, seed 2012)",
        &fig1_series(),
    );
    let db = PublicationDatabase::default();
    out.push_str("\nGrowth in the last five years vs the five before (the paper's observation):\n");
    for topic in Topic::ALL {
        out.push_str(&format!(
            "  {:<26} x{:.1}\n",
            topic.label(),
            db.last_five_year_growth(topic)
        ));
    }
    out
}

/// Fig 1 — research trends (SVG).
pub fn fig1_svg() -> String {
    svg_line_chart(
        "Fig 1: Research Trends in Parallel Computing (synthetic)",
        &fig1_series(),
    )
}

/// Fig 2 — the naming hierarchy tree.
pub fn fig2() -> String {
    format!(
        "Fig 2: Hierarchy of Computing Machines\n\n{}",
        hierarchy().render()
    )
}

fn subtype_specs(rows: &[(&str, &str)]) -> Vec<ArchSpec> {
    rows.iter()
        .map(|(name, row)| parse_row(name, row).expect("figure rows are well formed"))
        .collect()
}

/// Fig 3 — data-flow machine sub-types (DMP I–IV organisations).
pub fn fig3() -> String {
    figure(
        "Fig 3: Skillicorn's Data Flow Machine with Sub-Types defined in this paper",
        &subtype_specs(&[
            ("DMP-I", "0 | n | none | none | none | n-n | none"),
            ("DMP-II", "0 | n | none | none | none | n-n | nxn"),
            ("DMP-III", "0 | n | none | none | none | nxn | none"),
            ("DMP-IV", "0 | n | none | none | none | nxn | nxn"),
        ]),
    )
}

/// Fig 4 — array-processor sub-types (IAP I–IV organisations).
pub fn fig4() -> String {
    figure(
        "Fig 4: Skillicorn's Array Processor with Sub-Types defined in this paper",
        &subtype_specs(&[
            ("IAP-I", "1 | n | none | 1-n | 1-1 | n-n | none"),
            ("IAP-II", "1 | n | none | 1-n | 1-1 | n-n | nxn"),
            ("IAP-III", "1 | n | none | 1-n | 1-1 | nxn | none"),
            ("IAP-IV", "1 | n | none | 1-n | 1-1 | nxn | nxn"),
        ]),
    )
}

/// Fig 5 — instruction-flow spatial processors.
pub fn fig5() -> String {
    let mut out = figure(
        "Fig 5: An Illustration of Instruction Flow Spatial Processors",
        &subtype_specs(&[
            (
                "ISP-I (IPs composable)",
                "n | n | nxn | n-n | n-n | n-n | none",
            ),
            (
                "ISP-XVI (everything switched)",
                "n | n | nxn | nxn | nxn | nxn | nxn",
            ),
        ]),
    );
    out.push_str(
        "\nIn a spatial machine the IP-IP switch lets instruction processors\n\
         compose: two small IPs fuse into one wider IP driving both DPs\n\
         (executable demonstration: `skilltax_machine::spatial`).\n",
    );
    out
}

/// Fig 6 — universal-flow spatial processors.
pub fn fig6() -> String {
    let mut out = figure(
        "Fig 6: An Illustration of Universal Flow Spatial Processors",
        &subtype_specs(&[("USP (FPGA)", "v | v | vxv | vxv | vxv | vxv | vxv")]),
    );
    out.push_str(
        "\nEvery cell is a LUT that can take the role of IP, DP, IM or DM on\n\
         reconfiguration; the same fabric runs a ripple-carry adder (data\n\
         flow) and a program counter (instruction flow) — see\n\
         `skilltax_machine::universal::mapper`.\n",
    );
    out
}

fn fig7_bars() -> Vec<Bar> {
    regenerate_table_iii()
        .into_iter()
        .map(|row| Bar {
            label: row.name,
            value: f64::from(row.flexibility),
        })
        .collect()
}

/// Fig 7 — flexibility comparison of the 25 surveyed architectures (ASCII).
pub fn fig7_ascii() -> String {
    ascii_bar_chart(
        "Fig 7: Comparison of Published Architectures w.r.t their Relative Flexibility",
        &fig7_bars(),
        48,
    )
}

/// Fig 7 — SVG.
pub fn fig7_svg() -> String {
    svg_bar_chart(
        "Fig 7: Relative flexibility of the surveyed architectures",
        &fig7_bars(),
    )
}

/// Eq 1 / Eq 2 report: itemised area and configuration bits over the
/// survey at a given technology node.
pub fn estimates_report() -> String {
    let params = CostParams::default();
    let node = TechNode::N90;
    let mut table = Table::new(vec![
        "Architecture",
        "Class",
        "Flex",
        "Area [kGE]",
        "Area @90nm [mm2]",
        "Config bits",
        "Interconnect share",
    ])
    .with_title("Eq 1 (area) and Eq 2 (configuration bits) over the survey, CostParams::default()")
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for entry in skilltax_catalog::full_survey() {
        let area = estimate_area(&entry.spec, &params);
        let cb = estimate_config_bits(&entry.spec, &params);
        let class = entry
            .classify()
            .map(|c| c.name().to_string())
            .unwrap_or_else(|e| format!("<{e}>"));
        table.push_row(vec![
            entry.spec.name.clone(),
            class,
            entry.computed_flexibility().to_string(),
            format!("{:.0}", area.total() / 1_000.0),
            format!("{:.2}", node.ge_to_mm2(area.total())),
            cb.total().to_string(),
            format!("{:.0}%", area.interconnect_fraction() * 100.0),
        ]);
    }
    table.render_ascii()
}

/// The designer-facing Pareto report (flexibility vs area vs config bits
/// over all 43 named classes).
pub fn pareto_report() -> String {
    let params = CostParams::default();
    let points = sweep_classes(&params);
    let front = pareto_front(&points);
    let mut table = Table::new(vec![
        "Class",
        "Flexibility",
        "Area [kGE]",
        "Config bits",
        "Pareto",
    ])
    .with_title("Design-space sweep over the 43 named classes (n = 16 substitution)")
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Center,
    ]);
    for p in &points {
        let on_front = front.iter().any(|q| q.label == p.label);
        table.push_row(vec![
            p.label.clone(),
            p.flexibility.to_string(),
            format!("{:.0}", p.area_ge / 1_000.0),
            p.config_bits.to_string(),
            if on_front { "*" } else { "" }.to_owned(),
        ]);
    }
    table.render_ascii()
}

/// The morphing demonstration report (Section III-B's claims, executed).
pub fn morph_report() -> String {
    let mut out = String::from(
        "Morphing demonstrations (Section III-B claims run on the executable machines)\n\n",
    );
    match morph::demonstrate() {
        Ok(evidence) => {
            for ev in evidence {
                out.push_str(&format!(
                    "  {} as {}: predicted {} / observed {} -- {}\n",
                    ev.emulator,
                    ev.target,
                    if ev.predicted { "CAN" } else { "CANNOT" },
                    if ev.observed { "DID" } else { "DID NOT" },
                    ev.note
                ));
            }
        }
        Err(e) => out.push_str(&format!("  demonstration failed: {e}\n")),
    }
    out
}

/// Baseline comparison: how Flynn (1966) and Skillicorn (1988) relate to
/// the extended taxonomy — the quantified version of Section I's
/// motivation.
pub fn baselines_report() -> String {
    use skilltax_taxonomy::{flynn_partition, new_classes, skillicorn_table};
    let mut out =
        String::from("Baselines: Flynn (1966) and Skillicorn (1988) vs the extension\n\n");
    let (buckets, unplaced) = flynn_partition();
    out.push_str("Flynn's four classes absorb the 43 named extended classes as:\n");
    for (flynn, members) in buckets {
        out.push_str(&format!(
            "  {:<4} <- {:>2} classes ({})\n",
            flynn.acronym(),
            members.len(),
            summarize(&members)
        ));
    }
    out.push_str(&format!(
        "  unplaceable: {unplaced:?} (Flynn has no variable stream count)\n\n"
    ));
    out.push_str(&format!(
        "Skillicorn's original table expresses {} of the 47 extended rows;\n",
        skillicorn_table().len()
    ));
    let new = new_classes();
    out.push_str(&format!(
        "the IP-IP switch and the variable count add {} new classes: {:?}\n",
        new.len(),
        new.iter()
            .map(|(s, n)| format!("{s}:{n}"))
            .collect::<Vec<_>>()
    ));
    out
}

fn summarize(names: &[String]) -> String {
    if names.is_empty() {
        return "-".to_owned();
    }
    if names.len() <= 4 {
        return names.join(", ");
    }
    format!("{}, ..., {}", names[0], names[names.len() - 1])
}

/// Beyond the paper: classify post-2012 architectures with the same
/// engine (the taxonomy's predictive use).
pub fn modern_report() -> String {
    let mut table = Table::new(vec![
        "Architecture",
        "Structure",
        "Class",
        "Flex",
        "Rationale",
    ])
    .with_title("Beyond the paper: post-2012 architectures under the extended taxonomy")
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Left,
    ]);
    for case in skilltax_catalog::modern_cases() {
        let class = skilltax_taxonomy::classify(&case.spec)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|e| format!("<{e}>"));
        let flex = skilltax_taxonomy::flexibility_of_spec(&case.spec);
        let rationale: String = case.rationale.chars().take(60).collect();
        table.push_row(vec![
            case.spec.name.clone(),
            case.spec.row_notation(),
            class,
            flex.to_string(),
            format!("{rationale}..."),
        ]);
    }
    table.render_ascii()
}

/// Machine-readable export of the re-derived survey (JSON).
pub fn table3_json() -> String {
    use skilltax_report::Json;
    let rows: Vec<Json> = regenerate_table_iii()
        .into_iter()
        .map(|row| {
            Json::obj(vec![
                ("architecture", Json::str(&row.name)),
                ("structure", Json::str(&row.structure)),
                ("citation", Json::str(&row.citation)),
                ("class", Json::str(&row.class)),
                ("flexibility", Json::int(i64::from(row.flexibility))),
                ("paper_class", Json::str(row.paper.0)),
                ("paper_flexibility", Json::int(i64::from(row.paper.1))),
                ("erratum", row.erratum.map(Json::str).unwrap_or(Json::Null)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("source", Json::str("Shami & Hemani, IPPS 2012, Table III")),
        ("rows", Json::Arr(rows)),
    ])
    .emit()
}

/// The morphing partial order over the 43 named classes as a Graphviz
/// Hasse diagram (render with `dot -Tsvg`): an edge `A -> B` means B can
/// be morphed to act as A and nothing sits strictly between them.
pub fn morph_lattice_dot() -> String {
    use skilltax_machine::morph::can_emulate;
    use skilltax_report::{hasse_edges, DotGraph};
    use skilltax_taxonomy::MachineType;

    let names: Vec<skilltax_taxonomy::ClassName> = Taxonomy::extended()
        .implementable()
        .map(|c| *c.name())
        .collect();
    let refs: Vec<&skilltax_taxonomy::ClassName> = names.iter().collect();
    let mut g = DotGraph::new("morph-lattice");
    for name in &names {
        let fill = match name.machine {
            MachineType::DataFlow => "lightgoldenrod",
            MachineType::InstructionFlow => "lightblue",
            MachineType::UniversalFlow => "lightpink",
        };
        g.filled_node(name.to_string(), name.to_string(), fill);
    }
    // Order: a <= b iff b can emulate a (so arrows point at the more
    // capable machine).
    for (a, b) in hasse_edges(&refs, |x, y| can_emulate(y, x)) {
        g.edge(a.to_string(), b.to_string());
    }
    g.emit()
}

/// The Fig 2 hierarchy as Graphviz DOT.
pub fn fig2_dot() -> String {
    use skilltax_report::DotGraph;
    fn add(
        g: &mut DotGraph,
        node: &skilltax_taxonomy::HierarchyNode,
        parent: Option<&str>,
        path: String,
    ) {
        let label = if node.classes.is_empty() {
            node.label.clone()
        } else {
            let names: Vec<String> = node.classes.iter().map(|c| c.to_string()).collect();
            format!("{}\n{}", node.label, names.join(" "))
        };
        g.node(path.clone(), label);
        if let Some(p) = parent {
            g.edge(p.to_string(), path.clone());
        }
        for (i, child) in node.children.iter().enumerate() {
            add(g, child, Some(&path), format!("{path}/{i}"));
        }
    }
    let mut g = DotGraph::new("fig2-hierarchy");
    add(&mut g, &hierarchy(), None, "root".to_owned());
    g.emit()
}

/// A sample architecture diagram (for the quickstart docs).
pub fn sample_diagram() -> String {
    let spec =
        parse_row("MorphoSys", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").expect("well formed");
    diagram(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_47_rows_and_sections() {
        let t = table1();
        assert!(t.contains("47."));
        assert!(t.contains("Data Flow Machines -> Single Processor"));
        assert!(t.contains("Universal Flow Machine -> Spatial Computing"));
        assert!(t.contains("IMP-XVI"));
        assert!(t.contains("NI"));
        assert!(t.contains("USP"));
    }

    #[test]
    fn table2_contains_the_key_scores() {
        let t = table2();
        for needle in [
            "DUP", "DMP-IV", "IAP-II", "IMP-XVI", "ISP-XVI", "USP", "(+3)",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table3_reproduces_all_25_architectures() {
        let t = table3();
        for name in [
            "ARM7TDMI",
            "MorphoSys",
            "PACT XPP",
            "DRRA",
            "Matrix",
            "FPGA",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("erratum"));
        let csv = table3_csv();
        assert_eq!(csv.lines().count(), 26); // header + 25 rows
    }

    #[test]
    fn figures_render() {
        assert!(fig1_ascii().contains("Multicore"));
        assert!(fig1_svg().starts_with("<svg"));
        assert!(fig2().contains("Computing Machines"));
        assert!(fig3().contains("DMP-IV"));
        assert!(fig4().contains("IAP-III"));
        assert!(fig5().contains("compose"));
        assert!(fig6().contains("LUT"));
        assert!(fig7_ascii().contains("FPGA"));
        assert!(fig7_svg().contains("</svg>"));
    }

    #[test]
    fn estimate_and_pareto_reports_render() {
        let e = estimates_report();
        assert!(e.contains("MorphoSys"));
        assert!(e.contains("mm2"));
        let p = pareto_report();
        assert!(p.contains("IUP"));
        assert!(p.contains("*"));
    }

    #[test]
    fn morph_report_shows_all_four_demonstrations() {
        let m = morph_report();
        assert_eq!(m.matches("predicted").count(), 5);
        assert!(m.contains("IMP-I as IAP-I: predicted CAN / observed DID"));
        assert!(m.contains("IAP-IV as IMP-I: predicted CANNOT / observed DID NOT"));
    }

    #[test]
    fn baselines_report_quantifies_the_motivation() {
        let b = baselines_report();
        assert!(b.contains("MIMD <- 32"));
        assert!(b.contains("28 of the 47"));
        assert!(b.contains("19 new classes"));
    }

    #[test]
    fn modern_report_and_json_export_render() {
        let m = modern_report();
        assert!(m.contains("GPU-SM"));
        assert!(m.contains("IAP-IV"));
        let j = table3_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"PACT XPP\""));
        assert_eq!(j.matches("\"architecture\"").count(), 25);
    }

    #[test]
    fn dot_exports_are_well_formed() {
        let lattice = morph_lattice_dot();
        assert!(lattice.starts_with("digraph"));
        assert_eq!(lattice.matches("[label=").count(), 43);
        // The bottom elements (DUP, IUP) and the top (USP) all appear.
        assert!(lattice.contains("\"DUP\"") && lattice.contains("\"USP\""));
        // Hasse reduction: USP covers only the maximal coarse classes, so
        // far fewer than 42 edges point into it.
        let usp_in_edges = lattice.matches("-> \"USP\"").count();
        assert!(usp_in_edges > 0 && usp_in_edges < 10, "{usp_in_edges}");
        let tree = fig2_dot();
        assert!(tree.contains("Computing Machines"));
        assert!(tree.contains("IMP-I IMP-II"));
    }

    #[test]
    fn sample_diagram_shows_the_crossbar() {
        assert!(sample_diagram().contains("DP-DP: 64x64 (crossbar)"));
    }
}

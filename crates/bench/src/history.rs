//! The perf-history store: an append-only, file-backed database of
//! bench artifacts indexed by label and commit.
//!
//! Layout (under a root such as `artifacts/history/`):
//!
//! ```text
//! history/
//!   <label>/                     one directory per artifact label
//!     000001-<commit>.json       plain BENCH artifacts (schema v1),
//!     000002-<commit>.json       named by append sequence + commit id
//! ```
//!
//! Properties the layout buys:
//!
//! * **Append-only** — recording never rewrites an existing file; the
//!   six-digit sequence prefix makes store order explicit, stable under
//!   lexicographic listing, and independent of filesystem timestamps.
//! * **Self-describing** — every entry is a complete, independently
//!   parseable `BENCH_*.json` artifact; the "index" is the directory
//!   listing itself, so a partially written store never holds a stale
//!   index file.
//! * **Hostile-input safe** — labels and commit ids are validated by
//!   [`crate::artifact::validate_label`] before they touch a path; a
//!   `..` or `/` from a service-supplied label is a typed error, not an
//!   escape from the store.
//!
//! On top sit the two queries the ROADMAP's flexibility-frontier work
//! needs, both deterministic over the stored bytes: the *trajectory* of
//! one counter for one benchmark across all commits
//! ([`HistoryStore::trajectory`]), and the significance-triaged
//! *comparison* of two commits ([`HistoryStore::compare`], the
//! compare.js port in [`crate::triage`]).  [`HistoryPerfSource`] mounts
//! the same queries behind the service's `GET /perf/*` endpoints.

use std::fmt;
use std::path::{Path, PathBuf};

use skilltax_report::{Json, TrajectoryRow};
use skilltax_service::perf::{PerfError, PerfSource};

use crate::artifact::{validate_label, Artifact, ArtifactError, BenchRecord};
use crate::compare::Comparison;
use crate::triage::{classify_counter, classify_wall, Relevance, Triage, TriagedComparison};

/// Width of the zero-padded sequence prefix in entry file names.
const SEQ_WIDTH: usize = 6;

/// Why a history-store operation failed.  Everything is typed: a
/// corrupt or missing stored artifact is an error value, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryError {
    /// The store directory could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// OS error message.
        message: String,
    },
    /// A label or commit id failed [`validate_label`].
    InvalidName(ArtifactError),
    /// A file in the store does not follow the `NNNNNN-<commit>.json`
    /// naming scheme (or duplicates a sequence number).
    CorruptEntry {
        /// Offending path.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A stored artifact exists but cannot be parsed.
    CorruptArtifact {
        /// Offending path.
        path: String,
        /// The underlying typed artifact error.
        error: ArtifactError,
    },
    /// The store has no entries for this label.
    UnknownLabel(String),
    /// No stored entry carries this commit id.
    UnknownCommit {
        /// Label searched.
        label: String,
        /// Commit asked for.
        commit: String,
    },
    /// No stored artifact for the label contains this benchmark.
    UnknownBenchmark(String),
    /// The benchmark exists, but no stored record carries this counter.
    UnknownCounter {
        /// Benchmark searched.
        bench: String,
        /// Counter asked for.
        counter: String,
    },
    /// The store holds several labels, so a query must name one.
    AmbiguousLabel(Vec<String>),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io { path, message } => {
                write!(f, "history store io error at {path}: {message}")
            }
            HistoryError::InvalidName(e) => write!(f, "{e}"),
            HistoryError::CorruptEntry { path, reason } => {
                write!(f, "history entry {path} is corrupt: {reason}")
            }
            HistoryError::CorruptArtifact { path, error } => {
                write!(f, "stored artifact {path} is corrupt: {error}")
            }
            HistoryError::UnknownLabel(label) => {
                write!(f, "history store has no label {label:?}")
            }
            HistoryError::UnknownCommit { label, commit } => {
                write!(f, "label {label:?} has no entry for commit {commit:?}")
            }
            HistoryError::UnknownBenchmark(bench) => {
                write!(f, "no stored artifact contains benchmark {bench:?}")
            }
            HistoryError::UnknownCounter { bench, counter } => write!(
                f,
                "benchmark {bench:?} has no counter {counter:?} in any stored artifact \
                 (counters are artifact keys plus wall.p50/wall.mean/wall.min/wall.p90)"
            ),
            HistoryError::AmbiguousLabel(labels) => write!(
                f,
                "store holds several labels {labels:?}; pass one explicitly"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<ArtifactError> for HistoryError {
    fn from(e: ArtifactError) -> Self {
        HistoryError::InvalidName(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> HistoryError {
    HistoryError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// One entry in the store: the (seq, commit) index plus the file path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Append sequence number, unique and ascending within a label.
    pub seq: u64,
    /// Commit id the artifact was recorded at.
    pub commit: String,
    /// Path of the stored artifact.
    pub path: PathBuf,
}

impl HistoryEntry {
    /// The zero-padded sequence string used in file names and reports.
    pub fn seq_str(&self) -> String {
        format!("{:0SEQ_WIDTH$}", self.seq)
    }
}

/// One point of a trajectory: a commit, the counter value there (absent
/// when that artifact lacks the benchmark or counter), and the triage
/// of the step from the previous present value.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Store sequence number.
    pub seq: u64,
    /// Commit id.
    pub commit: String,
    /// Counter value at this commit.
    pub value: Option<f64>,
    /// Significance triage of the delta against the previous present
    /// point (`None` for the first present point and for absent ones).
    pub step: Option<Triage>,
}

/// The answer to "trajectory of counter X for benchmark Y".
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Label queried.
    pub label: String,
    /// Benchmark name.
    pub bench: String,
    /// Counter key (an artifact counter, or `wall.p50` / `wall.mean` /
    /// `wall.min` / `wall.p90`).
    pub counter: String,
    /// Whether the counter is a deterministic artifact counter (exact,
    /// any change relevant) or a wall pseudo-counter (noise-gated).
    pub deterministic: bool,
    /// One point per stored commit, in append order.
    pub points: Vec<TrajectoryPoint>,
}

/// Extract `counter` from one benchmark record.  `wall.*` keys address
/// the robust wall summary; everything else is a deterministic counter.
fn counter_value(record: &BenchRecord, counter: &str) -> Option<f64> {
    match counter {
        "wall.p50" => Some(record.wall_ns.p50),
        "wall.mean" => Some(record.wall_ns.mean),
        "wall.min" => Some(record.wall_ns.min),
        "wall.p90" => Some(record.wall_ns.p90),
        _ => record.counters.get(counter).map(|v| *v as f64),
    }
}

fn is_wall_counter(counter: &str) -> bool {
    counter.starts_with("wall.")
}

/// The append-only artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    root: PathBuf,
}

impl HistoryStore {
    /// Open (without creating) a store rooted at `root`.  The directory
    /// is created lazily on first append, so opening a path that does
    /// not exist yet is fine — queries against it report empty.
    pub fn open(root: impl Into<PathBuf>) -> HistoryStore {
        HistoryStore { root: root.into() }
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Append `artifact` under its label, recorded at `commit`.
    /// Validates both names, never overwrites an existing entry, and
    /// returns the new entry's index.
    pub fn append(&self, commit: &str, artifact: &Artifact) -> Result<HistoryEntry, HistoryError> {
        validate_label(&artifact.label)?;
        validate_label(commit)?;
        let dir = self.root.join(&artifact.label);
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let seq = match self.entries(&artifact.label) {
            Ok(entries) => entries.last().map(|e| e.seq + 1).unwrap_or(1),
            Err(HistoryError::UnknownLabel(_)) => 1,
            Err(e) => return Err(e),
        };
        let path = dir.join(format!("{seq:0SEQ_WIDTH$}-{commit}.json"));
        artifact.write_file(&path).map_err(|e| match e {
            ArtifactError::Io { path, message } => HistoryError::Io { path, message },
            other => HistoryError::InvalidName(other),
        })?;
        Ok(HistoryEntry {
            seq,
            commit: commit.to_owned(),
            path,
        })
    }

    /// The labels present in the store, sorted.
    pub fn labels(&self) -> Result<Vec<String>, HistoryError> {
        let mut labels = Vec::new();
        let read = match std::fs::read_dir(&self.root) {
            Ok(read) => read,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(labels),
            Err(e) => return Err(io_err(&self.root, e)),
        };
        for entry in read {
            let entry = entry.map_err(|e| io_err(&self.root, e))?;
            let path = entry.path();
            if path.is_dir() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    labels.push(name.to_owned());
                }
            }
        }
        labels.sort();
        Ok(labels)
    }

    /// Resolve an optional label: an explicit one is validated against
    /// the store; `None` works when the store holds exactly one label.
    pub fn resolve_label(&self, label: Option<&str>) -> Result<String, HistoryError> {
        let labels = self.labels()?;
        match label {
            Some(l) => {
                if labels.iter().any(|have| have == l) {
                    Ok(l.to_owned())
                } else {
                    Err(HistoryError::UnknownLabel(l.to_owned()))
                }
            }
            None => match labels.as_slice() {
                [only] => Ok(only.clone()),
                [] => Err(HistoryError::UnknownLabel("(empty store)".to_owned())),
                _ => Err(HistoryError::AmbiguousLabel(labels)),
            },
        }
    }

    /// All entries for `label`, sorted by sequence number.  File names
    /// that do not follow the scheme, duplicate sequence numbers, and
    /// invalid commit ids are typed [`HistoryError::CorruptEntry`]s.
    pub fn entries(&self, label: &str) -> Result<Vec<HistoryEntry>, HistoryError> {
        validate_label(label)?;
        let dir = self.root.join(label);
        let read = match std::fs::read_dir(&dir) {
            Ok(read) => read,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(HistoryError::UnknownLabel(label.to_owned()))
            }
            Err(e) => return Err(io_err(&dir, e)),
        };
        let mut entries = Vec::new();
        for entry in read {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let path = entry.path();
            let corrupt = |reason: &str| HistoryError::CorruptEntry {
                path: path.display().to_string(),
                reason: reason.to_owned(),
            };
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| corrupt("file name is not UTF-8"))?;
            let stem = name
                .strip_suffix(".json")
                .ok_or_else(|| corrupt("expected a .json entry"))?;
            let (seq_str, commit) = stem
                .split_once('-')
                .ok_or_else(|| corrupt("expected NNNNNN-<commit>.json"))?;
            if seq_str.len() != SEQ_WIDTH || !seq_str.bytes().all(|b| b.is_ascii_digit()) {
                return Err(corrupt("sequence prefix is not six digits"));
            }
            let seq: u64 = seq_str
                .parse()
                .map_err(|_| corrupt("sequence prefix does not parse"))?;
            if validate_label(commit).is_err() {
                return Err(corrupt("commit id fails label validation"));
            }
            entries.push(HistoryEntry {
                seq,
                commit: commit.to_owned(),
                path,
            });
        }
        if entries.is_empty() {
            return Err(HistoryError::UnknownLabel(label.to_owned()));
        }
        entries.sort_by_key(|e| e.seq);
        for pair in entries.windows(2) {
            if pair[0].seq == pair[1].seq {
                return Err(HistoryError::CorruptEntry {
                    path: pair[1].path.display().to_string(),
                    reason: format!("duplicate sequence number {}", pair[1].seq),
                });
            }
        }
        Ok(entries)
    }

    /// Load the artifact behind one entry; a corrupt file is a typed
    /// [`HistoryError::CorruptArtifact`], never a panic.
    pub fn load(&self, entry: &HistoryEntry) -> Result<Artifact, HistoryError> {
        Artifact::read_file(&entry.path).map_err(|error| match error {
            ArtifactError::Io { path, message } => HistoryError::Io { path, message },
            other => HistoryError::CorruptArtifact {
                path: entry.path.display().to_string(),
                error: other,
            },
        })
    }

    /// The latest entry recorded at `commit` under `label` (commits may
    /// legitimately repeat — a re-record supersedes).
    pub fn entry_for_commit(
        &self,
        label: &str,
        commit: &str,
    ) -> Result<HistoryEntry, HistoryError> {
        self.entries(label)?
            .into_iter()
            .rev()
            .find(|e| e.commit == commit)
            .ok_or_else(|| HistoryError::UnknownCommit {
                label: label.to_owned(),
                commit: commit.to_owned(),
            })
    }

    /// Answer "trajectory of counter X for benchmark Y": the counter's
    /// value at every stored commit, each step significance-classified
    /// (deterministic counters: any change is relevant; `wall.*`
    /// pseudo-counters: gated by the stored noise floors, the
    /// compare.js port in [`crate::triage`]).
    pub fn trajectory(
        &self,
        label: &str,
        bench: &str,
        counter: &str,
    ) -> Result<Trajectory, HistoryError> {
        let entries = self.entries(label)?;
        let deterministic = !is_wall_counter(counter);
        let mut points = Vec::with_capacity(entries.len());
        let mut bench_seen = false;
        let mut previous: Option<(f64, f64)> = None; // value, noise floor
        for entry in &entries {
            let artifact = self.load(entry)?;
            let record = artifact.benchmark(bench);
            bench_seen |= record.is_some();
            let value = record.and_then(|r| counter_value(r, counter));
            let step = match (previous, value, record) {
                (Some((prev, prev_floor)), Some(current), Some(rec)) => {
                    if deterministic {
                        Some(classify_counter(Some(prev as u64), Some(current as u64)))
                    } else if prev > 0.0 {
                        let rel = (current - prev) / prev;
                        let floor = prev_floor.max(rec.wall_ns.noise_floor_frac);
                        Some(classify_wall(rel, floor))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let (Some(current), Some(rec)) = (value, record) {
                previous = Some((current, rec.wall_ns.noise_floor_frac));
            }
            points.push(TrajectoryPoint {
                seq: entry.seq,
                commit: entry.commit.clone(),
                value,
                step,
            });
        }
        if points.iter().all(|p| p.value.is_none()) {
            if !bench_seen {
                return Err(HistoryError::UnknownBenchmark(bench.to_owned()));
            }
            return Err(HistoryError::UnknownCounter {
                bench: bench.to_owned(),
                counter: counter.to_owned(),
            });
        }
        Ok(Trajectory {
            label: label.to_owned(),
            bench: bench.to_owned(),
            counter: counter.to_owned(),
            deterministic,
            points,
        })
    }

    /// Garbage-collect old entries under `label`, keeping the `keep`
    /// newest artifacts (by append sequence).  Returns the entries that
    /// were deleted, oldest first.
    ///
    /// `keep` is clamped to at least 1 — pruning can thin history but
    /// can never delete the newest artifact, so a `prune --keep 0` typo
    /// cannot destroy the one entry every trajectory and comparison
    /// anchors on.  Unknown labels are the same typed
    /// [`HistoryError::UnknownLabel`] the queries report; a store whose
    /// listing is corrupt refuses to prune rather than guessing which
    /// files are safe to remove.
    pub fn prune(&self, label: &str, keep: usize) -> Result<Vec<HistoryEntry>, HistoryError> {
        let entries = self.entries(label)?;
        let keep = keep.max(1);
        if entries.len() <= keep {
            return Ok(Vec::new());
        }
        let doomed: Vec<HistoryEntry> = entries[..entries.len() - keep].to_vec();
        for entry in &doomed {
            std::fs::remove_file(&entry.path).map_err(|e| io_err(&entry.path, e))?;
        }
        Ok(doomed)
    }

    /// The significance-triaged comparison of two stored commits.
    pub fn compare(
        &self,
        label: &str,
        from: &str,
        to: &str,
    ) -> Result<TriagedComparison, HistoryError> {
        let from_artifact = self.load(&self.entry_for_commit(label, from)?)?;
        let to_artifact = self.load(&self.entry_for_commit(label, to)?)?;
        Ok(TriagedComparison::of(Comparison::between(
            &from_artifact,
            &to_artifact,
        )))
    }
}

impl Trajectory {
    fn format_value(&self, value: f64) -> String {
        if self.deterministic {
            format!("{value:.0}")
        } else {
            format!("{value:.1}")
        }
    }

    /// Reduce to the plain report rows [`skilltax_report::trajectory`]
    /// renders.
    pub fn rows(&self) -> Vec<TrajectoryRow> {
        self.points
            .iter()
            .map(|p| TrajectoryRow {
                seq: format!("{:0SEQ_WIDTH$}", p.seq),
                commit: p.commit.clone(),
                value: p
                    .value
                    .map(|v| self.format_value(v))
                    .unwrap_or_else(|| "-".to_owned()),
                delta: p
                    .step
                    .map(|t| format!("{:+.1}%", t.rel_change * 100.0))
                    .unwrap_or_else(|| "-".to_owned()),
                triage: p
                    .step
                    .map(|t| t.relevance.label().to_owned())
                    .unwrap_or_else(|| "-".to_owned()),
            })
            .collect()
    }

    /// Relevance of the whole trajectory: the most relevant single
    /// step (what a triager would page through first).
    pub fn relevance(&self) -> Relevance {
        self.points
            .iter()
            .filter_map(|p| p.step.map(|t| t.relevance))
            .min()
            .unwrap_or(Relevance::Noise)
    }

    /// The trajectory as the JSON body `GET /perf/trajectory` returns.
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("seq", Json::int(p.seq as i64)),
                    ("commit", Json::str(&p.commit)),
                    ("value", p.value.map(Json::Num).unwrap_or(Json::Null)),
                ];
                if let Some(step) = &p.step {
                    fields.push(("rel_change", Json::Num(step.rel_change)));
                    fields.push(("relevance", Json::str(step.relevance.label())));
                    fields.push(("magnitude", Json::str(step.magnitude.label())));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("label", Json::str(&self.label)),
            ("bench", Json::str(&self.bench)),
            ("counter", Json::str(&self.counter)),
            ("deterministic", Json::Bool(self.deterministic)),
            ("relevance", Json::str(self.relevance().label())),
            ("points", Json::Arr(points)),
        ])
    }
}

/// [`PerfSource`] over a [`HistoryStore`]: the glue that serves the
/// store read-only behind the service's `GET /perf/*` endpoints.
/// Queries re-read the store on every request — recording and serving
/// can interleave without coordination, and the source holds no cache
/// to invalidate.
#[derive(Debug, Clone)]
pub struct HistoryPerfSource {
    store: HistoryStore,
}

impl HistoryPerfSource {
    /// Serve `store`.
    pub fn new(store: HistoryStore) -> HistoryPerfSource {
        HistoryPerfSource { store }
    }
}

fn perf_err(e: HistoryError) -> PerfError {
    match e {
        HistoryError::UnknownLabel(_)
        | HistoryError::UnknownCommit { .. }
        | HistoryError::UnknownBenchmark(_)
        | HistoryError::UnknownCounter { .. } => PerfError::NotFound(e.to_string()),
        HistoryError::InvalidName(_) | HistoryError::AmbiguousLabel(_) => {
            PerfError::BadRequest(e.to_string())
        }
        HistoryError::Io { .. }
        | HistoryError::CorruptEntry { .. }
        | HistoryError::CorruptArtifact { .. } => PerfError::Internal(e.to_string()),
    }
}

impl PerfSource for HistoryPerfSource {
    fn benchmarks(&self, label: Option<&str>) -> Result<String, PerfError> {
        let labels = self.store.labels().map_err(perf_err)?;
        let chosen: Vec<String> = match label {
            Some(l) => vec![self.store.resolve_label(Some(l)).map_err(perf_err)?],
            None => labels.clone(),
        };
        let mut label_objs = Vec::with_capacity(chosen.len());
        for label in &chosen {
            let entries = self.store.entries(label).map_err(perf_err)?;
            // The latest artifact defines the inventory: benchmark
            // names and their counter keys.
            let latest = self
                .store
                .load(entries.last().expect("entries is non-empty"))
                .map_err(perf_err)?;
            let benches: Vec<Json> = latest
                .benchmarks
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("name", Json::str(&b.name)),
                        ("group", Json::str(&b.group)),
                        (
                            "counters",
                            Json::Arr(b.counters.keys().map(Json::str).collect()),
                        ),
                    ])
                })
                .collect();
            let commits: Vec<Json> = entries
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("seq", Json::int(e.seq as i64)),
                        ("commit", Json::str(&e.commit)),
                    ])
                })
                .collect();
            label_objs.push(Json::obj(vec![
                ("label", Json::str(label)),
                ("commits", Json::Arr(commits)),
                ("benchmarks", Json::Arr(benches)),
            ]));
        }
        Ok(Json::obj(vec![
            ("labels", Json::Arr(label_objs)),
            (
                "wall_counters",
                Json::Arr(
                    ["wall.p50", "wall.mean", "wall.min", "wall.p90"]
                        .iter()
                        .map(|s| Json::str(*s))
                        .collect(),
                ),
            ),
        ])
        .emit())
    }

    fn trajectory(
        &self,
        label: Option<&str>,
        bench: &str,
        counter: &str,
    ) -> Result<String, PerfError> {
        let label = self.store.resolve_label(label).map_err(perf_err)?;
        let trajectory = self
            .store
            .trajectory(&label, bench, counter)
            .map_err(perf_err)?;
        Ok(trajectory.to_json().emit())
    }

    fn compare(&self, label: Option<&str>, from: &str, to: &str) -> Result<String, PerfError> {
        let label = self.store.resolve_label(label).map_err(perf_err)?;
        for commit in [from, to] {
            validate_label(commit).map_err(|e| PerfError::BadRequest(e.to_string()))?;
        }
        let triaged = self.store.compare(&label, from, to).map_err(perf_err)?;
        Ok(triaged.to_json(&label, from, to).emit())
    }
}

//! A small, dependency-free microbenchmark harness.
//!
//! The workspace builds hermetically (no external crates), so the bench
//! targets in `benches/` use this module instead of Criterion: calibrate
//! an iteration count against a target batch duration, take a fixed
//! number of timed batches, and report robust per-iteration statistics
//! (p10/p50/p90 and the MAD, via [`crate::stats`]) in a plain-text table.
//!
//! Batch depth is environment-configurable so CI smoke runs finish in
//! seconds while local runs can go deep:
//!
//! * `SKILLTAX_BENCH_BATCHES` — timed batches per benchmark
//!   (default **12**);
//! * `SKILLTAX_BENCH_BATCH_MS` — target milliseconds per batch
//!   (default **25**).
//!
//! Explicit [`Harness::with_batches`] / [`Harness::with_batch_target`]
//! calls still override both.

use std::time::{Duration, Instant};

use crate::stats::SampleStats;

/// Default number of timed batches (overridable via
/// `SKILLTAX_BENCH_BATCHES`).
pub const DEFAULT_BATCHES: usize = 12;

/// Default target duration of one timed batch (overridable via
/// `SKILLTAX_BENCH_BATCH_MS`).
pub const DEFAULT_BATCH_TARGET: Duration = Duration::from_millis(25);

/// `SKILLTAX_BENCH_BATCHES`, if set to a positive integer.
pub fn env_batches() -> Option<usize> {
    std::env::var("SKILLTAX_BENCH_BATCHES")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// `SKILLTAX_BENCH_BATCH_MS` as a [`Duration`], if set to a positive
/// integer.
pub fn env_batch_target() -> Option<Duration> {
    let ms: u64 = std::env::var("SKILLTAX_BENCH_BATCH_MS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)?;
    Some(Duration::from_millis(ms))
}

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (group/function).
    pub name: String,
    /// Iterations per timed batch (after calibration).
    pub iters_per_batch: u64,
    /// Per-iteration nanoseconds, one entry per batch.
    pub batch_ns: Vec<f64>,
}

impl Measurement {
    /// Fastest observed batch, in ns per iteration.
    pub fn min_ns(&self) -> f64 {
        self.batch_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median batch, in ns per iteration.
    pub fn median_ns(&self) -> f64 {
        crate::stats::median(&self.batch_ns)
    }

    /// Mean over all batches, in ns per iteration.
    pub fn mean_ns(&self) -> f64 {
        self.batch_ns.iter().sum::<f64>() / self.batch_ns.len() as f64
    }

    /// The robust summary (outlier rejection, percentiles, MAD, noise
    /// floor) — what the collector stores in the artifact.
    pub fn robust(&self) -> SampleStats {
        SampleStats::from_samples(&self.batch_ns)
    }
}

/// The harness: collects [`Measurement`]s and renders a report.
#[derive(Debug)]
pub struct Harness {
    batches: usize,
    batch_target: Duration,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness taking [`DEFAULT_BATCHES`] batches of roughly
    /// [`DEFAULT_BATCH_TARGET`] each per benchmark, unless the
    /// `SKILLTAX_BENCH_BATCHES` / `SKILLTAX_BENCH_BATCH_MS` environment
    /// variables override the defaults.
    pub fn new() -> Harness {
        Harness {
            batches: env_batches().unwrap_or(DEFAULT_BATCHES),
            batch_target: env_batch_target().unwrap_or(DEFAULT_BATCH_TARGET),
            results: Vec::new(),
        }
    }

    /// Override the number of timed batches (takes precedence over the
    /// environment).
    pub fn with_batches(mut self, batches: usize) -> Harness {
        self.batches = batches.max(1);
        self
    }

    /// Override the target duration of one timed batch (takes precedence
    /// over the environment).
    pub fn with_batch_target(mut self, target: Duration) -> Harness {
        self.batch_target = target;
        self
    }

    /// Timed batches per benchmark.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Target duration of one timed batch.
    pub fn batch_target(&self) -> Duration {
        self.batch_target
    }

    /// Time `f`, storing and returning the measurement.
    ///
    /// The closure's return value is routed through
    /// [`std::hint::black_box`] so the optimiser cannot delete the work.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Measurement {
        // Calibrate: double the iteration count until one batch takes at
        // least the target (capped so pathological cases still finish).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.batch_target || iters >= 1 << 24 {
                break;
            }
            // Jump straight to the projected count when we have signal.
            let factor = if elapsed.is_zero() {
                8
            } else {
                (self.batch_target.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 8) as u64
            };
            iters = iters.saturating_mul(factor).min(1 << 24);
        }

        let mut batch_ns = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            batch_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.results.push(Measurement {
            name: name.to_owned(),
            iters_per_batch: iters,
            batch_ns,
        });
        self.results.last().expect("just pushed")
    }

    /// All measurements so far, in insertion order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the collected measurements as an aligned text table of
    /// robust statistics (ns per iteration).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let width = self
            .results
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:width$}  {:>12}  {:>12}  {:>12}  {:>10}  {:>7}  {:>8}\n",
            "name", "p10 ns/iter", "p50", "p90", "mad", "noise%", "iters"
        ));
        for m in &self.results {
            let s = m.robust();
            out.push_str(&format!(
                "{:width$}  {:>12.1}  {:>12.1}  {:>12.1}  {:>10.1}  {:>6.1}%  {:>8}\n",
                m.name,
                s.p10,
                s.p50,
                s.p90,
                s.mad,
                s.noise_floor_frac * 100.0,
                m.iters_per_batch
            ));
        }
        out
    }

    /// Print the report to stdout (the tail of every bench binary).
    pub fn finish(&self) {
        print!("{}", self.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_harness() -> Harness {
        Harness::new()
            .with_batches(3)
            .with_batch_target(Duration::from_micros(200))
    }

    #[test]
    fn measures_and_reports() {
        let mut h = fast_harness();
        let m = h.bench("square", || std::hint::black_box(21u64).pow(2));
        assert_eq!(m.batch_ns.len(), 3);
        assert!(m.min_ns() > 0.0);
        assert!(m.min_ns() <= m.mean_ns() + f64::EPSILON);
        let robust = m.robust();
        assert!(robust.kept >= 2, "MAD filter keeps at least half of 3");
        let report = h.report();
        assert!(report.contains("square"));
        assert!(report.contains("p50"));
    }

    #[test]
    fn median_of_even_and_odd_sample_counts() {
        let even = Measurement {
            name: "e".into(),
            iters_per_batch: 1,
            batch_ns: vec![4.0, 1.0, 3.0, 2.0],
        };
        assert_eq!(even.median_ns(), 2.5);
        let odd = Measurement {
            name: "o".into(),
            iters_per_batch: 1,
            batch_ns: vec![5.0, 1.0, 3.0],
        };
        assert_eq!(odd.median_ns(), 3.0);
    }

    #[test]
    fn results_accumulate_in_order() {
        let mut h = fast_harness();
        h.bench("a", || 1);
        h.bench("b", || 2);
        let names: Vec<&str> = h.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn explicit_overrides_beat_defaults() {
        let h = Harness::new()
            .with_batches(5)
            .with_batch_target(Duration::from_millis(1));
        assert_eq!(h.batches(), 5);
        assert_eq!(h.batch_target(), Duration::from_millis(1));
    }
}

//! Robust statistics over batch timings.
//!
//! Wall-clock timings are noisy: a single scheduler hiccup can make
//! `min`/`mean` misleading.  This module replaces the bare
//! min/median/mean summary the microbenchmark harness started with by
//! the robust pipeline a continuous-performance collector needs:
//!
//! 1. interpolated percentiles (p10/p50/p90),
//! 2. the median absolute deviation (MAD) as a robust spread measure,
//! 3. MAD-based outlier rejection (samples further than
//!    [`OUTLIER_MAD_MULTIPLIER`] MADs from the median are discarded —
//!    by construction at least half the samples always survive),
//! 4. a per-benchmark *noise floor*: the relative wall-time change that
//!    cannot be distinguished from measurement noise.  The regression
//!    gate only soft-flags wall-time deltas beyond this floor.

/// Samples further than this many MADs from the median are rejected.
///
/// 3.5 is the conventional cut-off for the modified z-score; because the
/// MAD is itself the median of the deviations, at least half the samples
/// are within one MAD of the median and can never be rejected.
pub const OUTLIER_MAD_MULTIPLIER: f64 = 3.5;

/// The smallest relative noise floor ever reported.
///
/// Even a perfectly quiet series cannot resolve wall-time changes below
/// a few percent across machines and runs, so the floor is clamped here.
pub const MIN_NOISE_FLOOR_FRAC: f64 = 0.05;

/// Multiplier from relative MAD to noise floor: a delta is only
/// distinguishable from noise when it exceeds a few spreads.
pub const NOISE_FLOOR_MAD_MULTIPLIER: f64 = 3.0;

/// Interpolated percentile of an **ascending-sorted** slice.
///
/// Uses linear interpolation between closest ranks (the `C = 1` variant):
/// the rank of percentile `p` over `n` samples is `p/100 * (n-1)`.  A
/// one-element slice returns that element for every `p`; an empty slice
/// returns 0.0.  `p` is clamped to `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    if frac == 0.0 || lo + 1 >= sorted.len() {
        sorted[lo]
    } else {
        sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
    }
}

fn sorted_copy(samples: &[f64]) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    // total_cmp never panics: a stray NaN sorts to the end instead of
    // aborting the collector mid-run.  `from_samples` filters non-finite
    // values out before they reach the percentile math.
    sorted.sort_by(f64::total_cmp);
    sorted
}

/// Median of an unsorted slice (0.0 when empty).
pub fn median(samples: &[f64]) -> f64 {
    percentile(&sorted_copy(samples), 50.0)
}

/// Median absolute deviation around the median (0.0 when empty; exactly
/// 0.0 for a constant series).
pub fn mad(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// The samples within [`OUTLIER_MAD_MULTIPLIER`] MADs of the median.
///
/// Because the MAD is the median of the deviations, at least half the
/// samples are always kept — a pathological series can never reject its
/// own bulk.  A zero-MAD series keeps exactly the samples equal to the
/// median (still at least half of them).
pub fn reject_outliers(samples: &[f64]) -> Vec<f64> {
    if samples.len() <= 2 {
        return samples.to_vec();
    }
    let m = median(samples);
    let spread = mad(samples);
    let cutoff = OUTLIER_MAD_MULTIPLIER * spread;
    samples
        .iter()
        .copied()
        .filter(|x| (x - m).abs() <= cutoff)
        .collect()
}

/// The relative wall-time change indistinguishable from noise for this
/// series: `max(MIN_NOISE_FLOOR_FRAC, 3 * MAD / median)`.
///
/// Monotone in the sample spread — scaling all deviations up can only
/// raise the floor — and never below [`MIN_NOISE_FLOOR_FRAC`].
pub fn noise_floor_frac(samples: &[f64]) -> f64 {
    let m = median(samples);
    if m <= 0.0 {
        return MIN_NOISE_FLOOR_FRAC;
    }
    (NOISE_FLOOR_MAD_MULTIPLIER * mad(samples) / m).max(MIN_NOISE_FLOOR_FRAC)
}

/// The robust summary of one benchmark's batch timings — what goes into
/// the `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Raw sample count, before non-finite filtering and outlier
    /// rejection.
    pub samples: usize,
    /// Non-finite samples (NaN, ±inf) filtered before any statistics —
    /// counted here rather than silently dropped, so a broken timer
    /// shows up in the artifact instead of skewing the percentiles.
    pub non_finite: usize,
    /// Finite samples surviving MAD-based outlier rejection (≥ half the
    /// finite samples).
    pub kept: usize,
    /// Minimum of the kept samples.
    pub min: f64,
    /// Maximum of the kept samples.
    pub max: f64,
    /// Mean of the kept samples.
    pub mean: f64,
    /// 10th percentile of the kept samples.
    pub p10: f64,
    /// Median of the kept samples.
    pub p50: f64,
    /// 90th percentile of the kept samples.
    pub p90: f64,
    /// Median absolute deviation of the kept samples.
    pub mad: f64,
    /// Relative noise floor of the *raw* series (see
    /// [`noise_floor_frac`]).
    pub noise_floor_frac: f64,
}

impl Default for SampleStats {
    fn default() -> Self {
        SampleStats {
            samples: 0,
            non_finite: 0,
            kept: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p10: 0.0,
            p50: 0.0,
            p90: 0.0,
            mad: 0.0,
            noise_floor_frac: MIN_NOISE_FLOOR_FRAC,
        }
    }
}

impl SampleStats {
    /// Summarise a series of samples: filter non-finite values (counted
    /// in [`SampleStats::non_finite`], never silently dropped), reject
    /// outliers, then compute the percentiles and spread of the
    /// survivors.  The noise floor is taken over the full finite series
    /// so a wild run *widens* the gate instead of silently tightening
    /// it.
    pub fn from_samples(samples: &[f64]) -> SampleStats {
        let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        let non_finite = samples.len() - finite.len();
        if finite.is_empty() {
            return SampleStats {
                samples: samples.len(),
                non_finite,
                ..SampleStats::default()
            };
        }
        let floor = noise_floor_frac(&finite);
        let kept = sorted_copy(&reject_outliers(&finite));
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        SampleStats {
            samples: samples.len(),
            non_finite,
            kept: kept.len(),
            min: kept[0],
            max: kept[kept.len() - 1],
            mean,
            p10: percentile(&kept, 10.0),
            p50: percentile(&kept, 50.0),
            p90: percentile(&kept, 90.0),
            mad: mad(&kept),
            noise_floor_frac: floor,
        }
    }

    /// Finite outliers discarded by the MAD filter (non-finite samples
    /// are counted separately in [`SampleStats::non_finite`]).
    pub fn rejected(&self) -> usize {
        self.samples - self.non_finite - self.kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_singleton_is_the_element() {
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[7.5], 100.0), 7.5);
    }

    #[test]
    fn percentile_interpolates_between_two_elements() {
        let s = [10.0, 20.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 50.0), 15.0);
        assert_eq!(percentile(&s, 90.0), 19.0);
        assert_eq!(percentile(&s, 100.0), 20.0);
    }

    #[test]
    fn percentile_matches_median_for_even_and_odd_lengths() {
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn mad_of_constant_series_is_zero() {
        assert_eq!(mad(&[4.2; 9]), 0.0);
    }

    #[test]
    fn stats_of_empty_series_are_all_zero() {
        let s = SampleStats::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.non_finite, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.noise_floor_frac, MIN_NOISE_FLOOR_FRAC);
    }

    #[test]
    fn non_finite_samples_are_counted_not_propagated() {
        let s = SampleStats::from_samples(&[10.0, f64::NAN, 11.0, f64::INFINITY, 12.0]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.non_finite, 2);
        assert_eq!(s.kept, 3);
        assert_eq!(s.rejected(), 0);
        assert_eq!(s.p50, 11.0);
        assert!(s.mean.is_finite() && s.min.is_finite() && s.max.is_finite());
    }

    #[test]
    fn all_non_finite_series_degrades_to_the_empty_summary() {
        let s = SampleStats::from_samples(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(s.samples, 2);
        assert_eq!(s.non_finite, 2);
        assert_eq!(s.kept, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.noise_floor_frac, MIN_NOISE_FLOOR_FRAC);
    }
}

//! Integration tests for the perf-history store: multi-commit round
//! trips, deterministic trajectory queries with triage buckets, typed
//! errors for corrupt or missing stored artifacts, and the
//! [`HistoryPerfSource`] served end-to-end over a real loopback socket.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use skilltax_bench::artifact::{Artifact, BenchRecord, CollectionMode, EnvMeta, SCHEMA_VERSION};
use skilltax_bench::history::{HistoryError, HistoryPerfSource, HistoryStore};
use skilltax_bench::stats::SampleStats;
use skilltax_bench::triage::Relevance;
use skilltax_service::{serve_with_perf, HttpConfig, Service, ServiceConfig};

/// A fresh store root under the system temp dir; removed by [`Scratch`]'s
/// drop so a failing assertion still cleans up.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "skilltax-history-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn record(name: &str, cycles: u64, p50: f64) -> BenchRecord {
    let mut counters = BTreeMap::new();
    counters.insert("cycles".to_owned(), cycles);
    // Tight samples: noise floor = max(0.05, 3 * MAD/median) = 0.06.
    let samples = vec![p50 * 0.98, p50, p50 * 1.02];
    BenchRecord {
        name: name.to_owned(),
        group: "test".to_owned(),
        iters_per_batch: 100,
        wall_ns: SampleStats::from_samples(&samples),
        counters,
    }
}

fn artifact(label: &str, benchmarks: Vec<BenchRecord>) -> Artifact {
    Artifact {
        schema_version: SCHEMA_VERSION,
        label: label.to_owned(),
        mode: CollectionMode::Quick,
        env: EnvMeta::current(3, 2),
        benchmarks,
    }
}

#[test]
fn a_multi_commit_history_round_trips() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    for (commit, cycles) in [("c1", 100), ("c2", 100), ("c3", 120)] {
        let a = artifact("smoke", vec![record("machine/x", cycles, 50.0)]);
        store.append(commit, &a).expect("append");
    }
    let entries = store.entries("smoke").expect("entries");
    assert_eq!(entries.len(), 3);
    assert_eq!(
        entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert_eq!(entries[2].commit, "c3");
    assert!(entries[0].path.file_name().unwrap() == "000001-c1.json");
    let loaded = store.load(&entries[2]).expect("load");
    assert_eq!(loaded.benchmarks[0].counters["cycles"], 120);
    assert_eq!(store.labels().unwrap(), vec!["smoke"]);
}

#[test]
fn deterministic_counter_trajectories_triage_exactly() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    for (commit, cycles) in [("c1", 100u64), ("c2", 100), ("c3", 120)] {
        let a = artifact("smoke", vec![record("machine/x", cycles, 50.0)]);
        store.append(commit, &a).expect("append");
    }
    let t = store
        .trajectory("smoke", "machine/x", "cycles")
        .expect("trajectory");
    assert!(t.deterministic);
    assert_eq!(t.points.len(), 3);
    assert_eq!(t.points[0].value, Some(100.0));
    assert!(t.points[0].step.is_none(), "first point has no delta");
    // 100 -> 100: exact counters, unchanged is pure noise.
    assert_eq!(t.points[1].step.unwrap().relevance, Relevance::Noise);
    // 100 -> 120: any deterministic change is relevant.
    assert_eq!(t.points[2].step.unwrap().relevance, Relevance::Relevant);
    assert_eq!(t.relevance(), Relevance::Relevant);
    // Rendered rows carry the formatted classification for the report.
    let rows = t.rows();
    assert_eq!(rows[0].delta, "-");
    assert_eq!(rows[2].triage, "relevant");
    assert_eq!(rows[2].delta, "+20.0%");
    // Repeated queries over the same stored bytes are deterministic.
    assert_eq!(t, store.trajectory("smoke", "machine/x", "cycles").unwrap());
}

#[test]
fn wall_trajectories_gate_on_the_stored_noise_floor() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    // Noise floor is 0.06 (tight samples): +3% is noise, +21% is
    // relevant (factor well past 2 at floor 0.06).
    for (commit, p50) in [("c1", 100.0), ("c2", 103.0), ("c3", 125.0)] {
        let a = artifact("smoke", vec![record("machine/x", 100, p50)]);
        store.append(commit, &a).expect("append");
    }
    let t = store
        .trajectory("smoke", "machine/x", "wall.p50")
        .expect("trajectory");
    assert!(!t.deterministic);
    let s1 = t.points[1].step.unwrap();
    assert_eq!(s1.relevance, Relevance::Noise, "{s1:?}");
    let s2 = t.points[2].step.unwrap();
    assert_eq!(s2.relevance, Relevance::Relevant, "{s2:?}");
}

#[test]
fn unknown_benchmarks_and_counters_are_distinct_typed_errors() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    let a = artifact("smoke", vec![record("machine/x", 100, 50.0)]);
    store.append("c1", &a).expect("append");
    match store.trajectory("smoke", "machine/ghost", "cycles") {
        Err(HistoryError::UnknownBenchmark(name)) => assert_eq!(name, "machine/ghost"),
        other => panic!("expected UnknownBenchmark, got {other:?}"),
    }
    match store.trajectory("smoke", "machine/x", "teleports") {
        Err(HistoryError::UnknownCounter { counter, .. }) => assert_eq!(counter, "teleports"),
        other => panic!("expected UnknownCounter, got {other:?}"),
    }
    match store.entries("nothing-here") {
        Err(HistoryError::UnknownLabel(_)) => {}
        other => panic!("expected UnknownLabel, got {other:?}"),
    }
    match store.compare("smoke", "c1", "c9") {
        Err(HistoryError::UnknownCommit { commit, .. }) => assert_eq!(commit, "c9"),
        other => panic!("expected UnknownCommit, got {other:?}"),
    }
}

#[test]
fn corrupt_stored_artifacts_are_typed_errors_not_panics() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    let a = artifact("smoke", vec![record("machine/x", 100, 50.0)]);
    store.append("c1", &a).expect("append");
    // Overwrite the stored artifact with garbage: loading reports a
    // typed CorruptArtifact (and so do the queries above it).
    let entries = store.entries("smoke").unwrap();
    std::fs::write(&entries[0].path, "{not json").unwrap();
    match store.load(&entries[0]) {
        Err(HistoryError::CorruptArtifact { .. }) => {}
        other => panic!("expected CorruptArtifact, got {other:?}"),
    }
    match store.trajectory("smoke", "machine/x", "cycles") {
        Err(HistoryError::CorruptArtifact { .. }) => {}
        other => panic!("expected CorruptArtifact, got {other:?}"),
    }
    // A stray file that breaks the NNNNNN-<commit>.json scheme corrupts
    // the listing itself.
    std::fs::write(scratch.0.join("smoke").join("notes.txt"), "hi").unwrap();
    match store.entries("smoke") {
        Err(HistoryError::CorruptEntry { .. }) => {}
        other => panic!("expected CorruptEntry, got {other:?}"),
    }
}

#[test]
fn hostile_labels_and_commits_never_touch_the_filesystem() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    let a = artifact("smoke", vec![record("machine/x", 100, 50.0)]);
    assert!(matches!(
        store.append("../evil", &a),
        Err(HistoryError::InvalidName(_))
    ));
    let bad = artifact("../evil", vec![record("machine/x", 100, 50.0)]);
    assert!(matches!(
        store.append("c1", &bad),
        Err(HistoryError::InvalidName(_))
    ));
    assert!(matches!(
        store.entries("../evil"),
        Err(HistoryError::InvalidName(_))
    ));
    // Nothing escaped or was created outside the (still empty) root.
    assert_eq!(store.labels().unwrap(), Vec::<String>::new());
}

#[test]
fn label_resolution_is_explicit_when_ambiguous() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    let a = artifact("alpha", vec![record("machine/x", 100, 50.0)]);
    store.append("c1", &a).expect("append");
    assert_eq!(store.resolve_label(None).unwrap(), "alpha");
    let b = artifact("beta", vec![record("machine/x", 100, 50.0)]);
    store.append("c1", &b).expect("append");
    assert!(matches!(
        store.resolve_label(None),
        Err(HistoryError::AmbiguousLabel(_))
    ));
    assert_eq!(store.resolve_label(Some("beta")).unwrap(), "beta");
    assert!(matches!(
        store.resolve_label(Some("gamma")),
        Err(HistoryError::UnknownLabel(_))
    ));
}

#[test]
fn triaged_compare_buckets_the_diff() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    let from = artifact(
        "smoke",
        vec![
            record("machine/x", 100, 50.0),
            record("machine/y", 200, 80.0),
        ],
    );
    let to = artifact(
        "smoke",
        vec![
            record("machine/x", 100, 50.0),
            record("machine/y", 260, 80.0),
        ],
    );
    store.append("c1", &from).expect("append");
    store.append("c2", &to).expect("append");
    let triaged = store.compare("smoke", "c1", "c2").expect("compare");
    let counts = triaged.counts();
    assert_eq!(counts.relevant, 1, "{triaged:?}");
    assert_eq!(counts.noise, 1, "{triaged:?}");
    let json = triaged.to_json("smoke", "c1", "c2").emit();
    assert!(json.contains("\"relevant\":1"), "{json}");
    assert!(json.contains("machine/y"), "{json}");
    assert!(
        !json.contains("machine/x"),
        "unchanged bench leaked: {json}"
    );
}

#[test]
fn prune_keeps_the_newest_entries_and_reports_the_deleted() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    for (commit, cycles) in [
        ("c1", 100u64),
        ("c2", 110),
        ("c3", 120),
        ("c4", 130),
        ("c5", 140),
    ] {
        let a = artifact("smoke", vec![record("machine/x", cycles, 50.0)]);
        store.append(commit, &a).expect("append");
    }
    let deleted = store.prune("smoke", 2).expect("prune");
    assert_eq!(
        deleted
            .iter()
            .map(|e| e.commit.as_str())
            .collect::<Vec<_>>(),
        vec!["c1", "c2", "c3"],
        "oldest first"
    );
    for entry in &deleted {
        assert!(
            !entry.path.exists(),
            "{} should be gone",
            entry.path.display()
        );
    }
    let remaining = store.entries("smoke").expect("entries");
    assert_eq!(
        remaining
            .iter()
            .map(|e| e.commit.as_str())
            .collect::<Vec<_>>(),
        vec!["c4", "c5"]
    );
    // Sequence numbers survive pruning, so appends keep ascending and
    // trajectories over the survivors still line up.
    assert_eq!(
        remaining.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![4, 5]
    );
    let t = store
        .trajectory("smoke", "machine/x", "cycles")
        .expect("trajectory");
    assert_eq!(t.points.len(), 2);
    assert_eq!(t.points[1].value, Some(140.0));
    // A second prune at the same depth is a no-op.
    assert!(store
        .prune("smoke", 2)
        .expect("idempotent prune")
        .is_empty());
}

#[test]
fn prune_never_deletes_the_newest_artifact() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    for commit in ["c1", "c2", "c3"] {
        let a = artifact("smoke", vec![record("machine/x", 100, 50.0)]);
        store.append(commit, &a).expect("append");
    }
    // keep = 0 clamps to 1: the newest artifact always survives.
    let deleted = store.prune("smoke", 0).expect("prune");
    assert_eq!(deleted.len(), 2);
    let remaining = store.entries("smoke").expect("entries");
    assert_eq!(remaining.len(), 1);
    assert_eq!(remaining[0].commit, "c3");
    assert!(remaining[0].path.exists());
    // And pruning down to the single survivor again deletes nothing.
    assert!(store.prune("smoke", 0).expect("prune again").is_empty());
    assert_eq!(store.entries("smoke").expect("entries").len(), 1);
}

#[test]
fn prune_reports_unknown_labels_as_typed_errors() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    match store.prune("ghost", 3) {
        Err(HistoryError::UnknownLabel(label)) => assert_eq!(label, "ghost"),
        other => panic!("expected UnknownLabel, got {other:?}"),
    }
    // A corrupt listing refuses to prune instead of guessing.
    let a = artifact("smoke", vec![record("machine/x", 100, 50.0)]);
    store.append("c1", &a).expect("append");
    std::fs::write(scratch.0.join("smoke").join("notes.txt"), "hi").unwrap();
    match store.prune("smoke", 1) {
        Err(HistoryError::CorruptEntry { .. }) => {}
        other => panic!("expected CorruptEntry, got {other:?}"),
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn the_store_serves_end_to_end_over_http() {
    let scratch = Scratch::new();
    let store = HistoryStore::open(&scratch.0);
    for (commit, cycles) in [("c1", 100u64), ("c2", 120)] {
        let a = artifact("smoke", vec![record("machine/x", cycles, 50.0)]);
        store.append(commit, &a).expect("append");
    }
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = serve_with_perf(
        Arc::clone(&service),
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            ..HttpConfig::default()
        },
        Some(Arc::new(HistoryPerfSource::new(store))),
    )
    .expect("bind");
    let addr = server.local_addr();

    let inventory = http_get(addr, "/perf/benchmarks");
    assert!(inventory.starts_with("HTTP/1.1 200 OK"), "{inventory}");
    assert!(inventory.contains("\"smoke\""), "{inventory}");
    assert!(inventory.contains("machine/x"), "{inventory}");

    let trajectory = http_get(addr, "/perf/trajectory?bench=machine%2Fx&counter=cycles");
    assert!(trajectory.starts_with("HTTP/1.1 200 OK"), "{trajectory}");
    assert!(
        trajectory.contains("\"relevance\":\"relevant\""),
        "{trajectory}"
    );
    assert!(trajectory.contains("\"commit\":\"c2\""), "{trajectory}");

    let compare = http_get(addr, "/perf/compare?from=c1&to=c2");
    assert!(compare.starts_with("HTTP/1.1 200 OK"), "{compare}");
    assert!(compare.contains("\"buckets\""), "{compare}");

    // The validation bugfixes hold on the live socket too.
    let bad = http_get(addr, "/perf/trajectory?bench=machine%2Fx");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    let missing = http_get(addr, "/perf/trajectory?bench=ghost&counter=cycles");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    let hostile = http_get(addr, "/perf/compare?from=..%2F..%2Fetc&to=c2");
    assert!(hostile.starts_with("HTTP/1.1 400"), "{hostile}");
}

//! Contract tests for `bench::stats`, the robust-statistics layer the
//! continuous-performance collector summarises wall timings with.

use skilltax_bench::stats::{
    mad, median, noise_floor_frac, percentile, reject_outliers, SampleStats, MIN_NOISE_FLOOR_FRAC,
    OUTLIER_MAD_MULTIPLIER,
};

#[test]
fn percentile_of_length_one_is_that_sample_for_every_p() {
    for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
        assert_eq!(percentile(&[3.25], p), 3.25);
    }
}

#[test]
fn percentile_of_length_two_interpolates_linearly() {
    let s = [100.0, 200.0];
    assert_eq!(percentile(&s, 0.0), 100.0);
    assert_eq!(percentile(&s, 10.0), 110.0);
    assert_eq!(percentile(&s, 50.0), 150.0);
    assert_eq!(percentile(&s, 90.0), 190.0);
    assert_eq!(percentile(&s, 100.0), 200.0);
}

#[test]
fn percentile_handles_even_and_odd_lengths() {
    // Odd: the median is an element; p10/p90 interpolate.
    let odd = [1.0, 2.0, 3.0, 4.0, 5.0];
    assert_eq!(percentile(&odd, 50.0), 3.0);
    assert!((percentile(&odd, 10.0) - 1.4).abs() < 1e-12);
    assert!((percentile(&odd, 90.0) - 4.6).abs() < 1e-12);
    // Even: the median interpolates between the two middle elements.
    let even = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(percentile(&even, 50.0), 2.5);
    // Out-of-range p is clamped rather than panicking.
    assert_eq!(percentile(&even, -5.0), 1.0);
    assert_eq!(percentile(&even, 150.0), 4.0);
}

#[test]
fn mad_of_a_constant_series_is_exactly_zero() {
    for len in [1usize, 2, 7, 100] {
        let series = vec![42.5; len];
        assert_eq!(mad(&series), 0.0, "constant series of len {len}");
    }
}

#[test]
fn outlier_rejection_keeps_at_least_half_the_samples() {
    let adversarial: Vec<Vec<f64>> = vec![
        vec![1.0, 1.0, 1.0, 1000.0, 2000.0, 3000.0],
        vec![5.0; 10],
        (0..50).map(|i| (i * i) as f64).collect(),
        vec![1.0, 2.0],
        vec![-100.0, 0.0, 100.0],
    ];
    for series in adversarial {
        let kept = reject_outliers(&series);
        assert!(
            kept.len() * 2 >= series.len(),
            "kept {}/{} of {series:?}",
            kept.len(),
            series.len()
        );
        // Everything kept is within the documented cut-off.
        let m = median(&series);
        let cutoff = OUTLIER_MAD_MULTIPLIER * mad(&series);
        if series.len() > 2 {
            for x in &kept {
                assert!((x - m).abs() <= cutoff);
            }
        }
    }
}

#[test]
fn noise_floor_is_monotone_in_sample_spread() {
    // Same median, progressively wider spread around it: the floor must
    // never decrease as the spread grows.
    let mut previous = 0.0;
    for spread in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0] {
        let series = [
            100.0 - 2.0 * spread,
            100.0 - spread,
            100.0,
            100.0 + spread,
            100.0 + 2.0 * spread,
        ];
        let floor = noise_floor_frac(&series);
        assert!(
            floor >= previous,
            "floor {floor} shrank from {previous} at spread {spread}"
        );
        assert!(floor >= MIN_NOISE_FLOOR_FRAC);
        previous = floor;
    }
}

#[test]
fn sample_stats_summarise_and_reject_consistently() {
    // A well-behaved series plus one wild outlier.
    let series = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.3, 9.7, 10.1, 500.0];
    let stats = SampleStats::from_samples(&series);
    assert_eq!(stats.samples, 10);
    assert_eq!(stats.kept, 9, "the 500.0 outlier is rejected");
    assert_eq!(stats.rejected(), 1);
    assert!(stats.max < 500.0);
    assert!(stats.p10 <= stats.p50 && stats.p50 <= stats.p90);
    assert!(stats.min <= stats.p10 && stats.p90 <= stats.max);
    assert!(stats.noise_floor_frac >= MIN_NOISE_FLOOR_FRAC);
}

//! End-to-end contract of the bench artifact and the regression gate:
//! round-trip fidelity, typed schema rejection, and the `bench_compare`
//! binary exiting non-zero on an injected deterministic-counter
//! regression while naming the offending benchmark.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use skilltax_bench::artifact::{
    Artifact, ArtifactError, BenchRecord, CollectionMode, EnvMeta, SCHEMA_VERSION,
};
use skilltax_bench::stats::SampleStats;

fn record(name: &str, group: &str, cycles: u64) -> BenchRecord {
    let mut counters = BTreeMap::new();
    counters.insert("cycles".to_owned(), cycles);
    counters.insert("event.issue".to_owned(), cycles / 2);
    counters.insert("event.stall".to_owned(), 0);
    BenchRecord {
        name: name.to_owned(),
        group: group.to_owned(),
        iters_per_batch: 4096,
        wall_ns: SampleStats::from_samples(&[120.5, 118.25, 125.0, 119.75, 121.0]),
        counters,
    }
}

fn fixture(label: &str, vector_add_cycles: u64) -> Artifact {
    Artifact {
        schema_version: SCHEMA_VERSION,
        label: label.to_owned(),
        mode: CollectionMode::Quick,
        env: EnvMeta::current(5, 2),
        benchmarks: vec![
            record(
                "machine/vector_add/uni/64",
                "machine.uni",
                vector_add_cycles,
            ),
            record("taxonomy/classify_templates", "taxonomy", 777),
        ],
    }
}

fn temp_path(file: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skilltax_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir.join(file)
}

#[test]
fn write_read_round_trip_preserves_every_field() {
    let original = fixture("round-trip", 1000);
    let path = temp_path("roundtrip.json");
    original.write_file(&path).unwrap();
    let reread = Artifact::read_file(&path).unwrap();
    assert_eq!(reread, original);
    // Spot-check the nested payloads made it through the JSON layer.
    let bench = reread.benchmark("machine/vector_add/uni/64").unwrap();
    assert_eq!(bench.counters["cycles"], 1000);
    assert_eq!(bench.wall_ns, original.benchmarks[0].wall_ns);
    assert_eq!(reread.env, original.env);
}

#[test]
fn reader_rejects_wrong_schema_version_with_typed_error() {
    let text = fixture("vers", 10)
        .emit()
        .replace("\"schema_version\":1", "\"schema_version\":2");
    match Artifact::parse(&text) {
        Err(ArtifactError::SchemaVersion { found, expected }) => {
            assert_eq!(found, 2);
            assert_eq!(expected, SCHEMA_VERSION);
        }
        other => panic!("expected a SchemaVersion error, got {other:?}"),
    }
}

#[test]
fn reader_surfaces_parse_errors_as_typed_errors() {
    match Artifact::parse("{not json") {
        Err(ArtifactError::Parse(e)) => assert!(e.to_string().contains("JSON parse error")),
        other => panic!("expected a Parse error, got {other:?}"),
    }
}

/// The acceptance-criterion test: two fixture artifacts differing by an
/// injected 2× deterministic-counter delta make the `bench_compare`
/// binary exit non-zero with the benchmark named in its report.
#[test]
fn bench_compare_exits_nonzero_on_injected_counter_regression() {
    let baseline = fixture("baseline", 1000);
    let regressed = fixture("current", 2000); // 2x cycles on vector_add
    let baseline_path = temp_path("cmp_baseline.json");
    let current_path = temp_path("cmp_current.json");
    baseline.write_file(&baseline_path).unwrap();
    regressed.write_file(&current_path).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--baseline")
        .arg(&baseline_path)
        .arg("--current")
        .arg(&current_path)
        .output()
        .expect("bench_compare runs");
    assert!(
        !output.status.success(),
        "a deterministic-counter regression must gate hard"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("machine/vector_add/uni/64"),
        "report must name the offending benchmark:\n{stdout}"
    );
    assert!(stdout.contains("FAIL"), "verdict line:\n{stdout}");
    assert!(stdout.contains("counter cycles"), "metric named:\n{stdout}");
}

#[test]
fn bench_compare_exits_zero_on_identical_artifacts() {
    let artifact = fixture("same", 1000);
    let baseline_path = temp_path("same_baseline.json");
    let current_path = temp_path("same_current.json");
    artifact.write_file(&baseline_path).unwrap();
    artifact.write_file(&current_path).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--baseline")
        .arg(&baseline_path)
        .arg("--current")
        .arg(&current_path)
        .output()
        .expect("bench_compare runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "unchanged counters pass:\n{stdout}"
    );
    assert!(stdout.contains("OK"), "verdict line:\n{stdout}");
}

#[test]
fn bench_compare_fails_cleanly_on_a_missing_baseline() {
    let output = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--baseline")
        .arg(temp_path("does_not_exist.json"))
        .arg("--current")
        .arg(temp_path("also_missing.json"))
        .output()
        .expect("bench_compare runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read artifact"), "{stderr}");
}

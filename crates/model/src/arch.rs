//! The top-level architecture description: [`ArchSpec`].

use std::fmt;

use crate::count::Count;
use crate::error::ModelError;
use crate::granularity::Granularity;
use crate::relation::{Connectivity, Relation};
use crate::switch::Link;

/// Optional descriptive metadata carried alongside the structural record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArchMeta {
    /// Free-text description (the Section IV prose for surveyed machines).
    pub description: String,
    /// Citation key or reference (e.g. `"[13]"` for MorphoSys).
    pub citation: String,
    /// Year of publication, if known.
    pub year: Option<u16>,
}

/// A structural description of a computer architecture in the extended
/// Skillicorn model: block counts plus the five connectivity relations.
///
/// `ArchSpec` is a *description*, not a judgement — classification into one
/// of the 47 classes, flexibility scoring and cost estimation live in the
/// `skilltax-taxonomy` and `skilltax-estimate` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    /// Architecture name (e.g. `"MorphoSys"`).
    pub name: String,
    /// Granularity of the building blocks.
    pub granularity: Granularity,
    /// Number of instruction processors.
    pub ips: Count,
    /// Number of data processors.
    pub dps: Count,
    /// The five connectivity relations.
    pub connectivity: Connectivity,
    /// Descriptive metadata.
    pub meta: ArchMeta,
}

/// A non-fatal observation produced by [`ArchSpec::audit`]: the spec is
/// structurally representable but unusual (e.g. extents inconsistent with
/// counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// The relation the issue concerns, if any.
    pub relation: Option<Relation>,
    /// Human-readable description.
    pub message: String,
}

impl ArchSpec {
    /// Start building a spec.
    pub fn builder(name: impl Into<String>) -> ArchBuilder {
        ArchBuilder::new(name)
    }

    /// Number of crossbar (`x`) switches — the flexibility-scoring quantity.
    pub fn crossbar_count(&self) -> u32 {
        self.connectivity.crossbar_count()
    }

    /// Is this a data-flow machine (no instruction processors)?
    pub fn is_dataflow(&self) -> bool {
        matches!(self.ips, Count::Zero)
    }

    /// Does the fabric have variable (reconfigurable-role) counts?
    pub fn is_universal(&self) -> bool {
        self.ips.is_variable() || self.dps.is_variable()
    }

    /// The Table III row tail for this spec:
    /// `IPs | DPs | IP-IP | IP-DP | IP-IM | DP-DM | DP-DP`.
    pub fn row_notation(&self) -> String {
        format!("{} | {} | {}", self.ips, self.dps, self.connectivity)
    }

    /// Hard validation: rules that make a description self-contradictory.
    ///
    /// * a machine with zero IPs cannot have IP-side links;
    /// * a machine with one IP cannot have an IP–IP link;
    /// * a machine with zero DPs processes nothing;
    /// * a DP with no path to data (no DP–DM and no DP–DP) cannot receive
    ///   operands;
    /// * variable counts require fine granularity (role exchange is what
    ///   makes the count variable), and vice versa;
    /// * if either side of IP–DP exists the machine needs both an
    ///   instruction path (IP–IM or IP–IP feed) — except that the paper
    ///   allows IM-less IPs only in the fine-grained case.
    pub fn validate(&self) -> Result<(), ModelError> {
        let mut reasons = Vec::new();
        let c = &self.connectivity;

        if matches!(self.dps, Count::Zero) {
            reasons.push("an architecture must have at least one data processor".to_owned());
        }
        if matches!(self.ips, Count::Zero) {
            for r in Relation::INSTRUCTION_SIDE {
                if c.link(r).is_connected() {
                    reasons.push(format!(
                        "data-flow machine (0 IPs) cannot have a {} link",
                        r.label()
                    ));
                }
            }
        }
        if matches!(self.ips, Count::One) && c.link(Relation::IpIp).is_connected() {
            reasons
                .push("a single IP cannot be connected to itself (IP-IP needs n IPs)".to_owned());
        }
        if !matches!(self.ips, Count::Zero)
            && !matches!(self.dps, Count::Zero)
            && !c.link(Relation::IpDp).is_connected()
        {
            reasons.push(
                "an instruction-flow machine must connect its IPs to its DPs (IP-DP missing)"
                    .to_owned(),
            );
        }
        if !matches!(self.dps, Count::Zero)
            && !c.link(Relation::DpDm).is_connected()
            && !c.link(Relation::DpDp).is_connected()
        {
            reasons.push("DPs have no path to data (neither DP-DM nor DP-DP present)".to_owned());
        }
        if self.is_universal() && self.granularity != Granularity::FineLut {
            reasons.push(
                "variable counts (v) require fine granularity: only role-exchangeable blocks \
                 can change the number of IPs/DPs under reconfiguration"
                    .to_owned(),
            );
        }
        if self.granularity == Granularity::FineLut && !self.is_universal() {
            reasons.push(
                "fine-grained (LUT) fabrics have variable IP/DP counts by definition".to_owned(),
            );
        }
        if !matches!(self.ips, Count::Zero)
            && self.granularity == Granularity::CoarseIpDp
            && !c.link(Relation::IpIm).is_connected()
        {
            reasons.push(
                "coarse-grained IPs must fetch from an instruction memory (IP-IM missing)"
                    .to_owned(),
            );
        }

        if reasons.is_empty() {
            Ok(())
        } else {
            Err(ModelError::Invalid {
                arch: self.name.clone(),
                reasons,
            })
        }
    }

    /// Soft audit: observations about unusual-but-legal descriptions.
    pub fn audit(&self) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        // Extent/count consistency: the left side of IP-DP should match the
        // IP count class, etc.  The paper itself is loose here (ADRES writes
        // DP-DM as 8-1 with 64 DPs), so these are warnings, not errors.
        let checks: [(Relation, bool, bool); 5] = [
            (Relation::IpIp, true, true),
            (Relation::IpDp, true, false),
            (Relation::IpIm, true, false),
            (Relation::DpDm, false, false),
            (Relation::DpDp, false, false),
        ];
        for (rel, left_is_ip, right_is_ip) in checks {
            if let Link::Connected(sw) = self.connectivity.link(rel) {
                let left_count = if left_is_ip { self.ips } else { self.dps };
                if let (Some(have), Some(want)) = (sw.left.value(), left_count.value()) {
                    if have > want {
                        issues.push(ValidationIssue {
                            relation: Some(rel),
                            message: format!(
                                "{} left extent {have} exceeds the {} count {want}",
                                rel.label(),
                                if left_is_ip { "IP" } else { "DP" }
                            ),
                        });
                    }
                }
                if right_is_ip {
                    if let (Some(have), Some(want)) = (sw.right.value(), self.ips.value()) {
                        if have > want {
                            issues.push(ValidationIssue {
                                relation: Some(rel),
                                message: format!(
                                    "{} right extent {have} exceeds the IP count {want}",
                                    rel.label()
                                ),
                            });
                        }
                    }
                }
            }
        }
        // A plural machine whose DPs are completely isolated from each other
        // and share no memory is a set of disjoint uniprocessors: legal
        // (IMP-I is exactly this) but worth noting for estimation.
        if self.dps.is_plural()
            && !self.connectivity.link(Relation::DpDp).is_connected()
            && self.connectivity.link(Relation::DpDm).is_direct()
        {
            issues.push(ValidationIssue {
                relation: None,
                message: "DPs are mutually isolated (direct private memories, no DP-DP): \
                          the machine is a collection of independent processors"
                    .to_owned(),
            });
        }
        issues
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}",
            self.name,
            self.granularity,
            self.row_notation()
        )
    }
}

/// Builder for [`ArchSpec`] — collects fields then validates on
/// [`ArchBuilder::build`].
#[derive(Debug, Clone)]
pub struct ArchBuilder {
    name: String,
    granularity: Granularity,
    ips: Count,
    dps: Count,
    connectivity: Connectivity,
    meta: ArchMeta,
}

impl ArchBuilder {
    /// Start a builder with all counts zero and no links.
    pub fn new(name: impl Into<String>) -> Self {
        ArchBuilder {
            name: name.into(),
            granularity: Granularity::CoarseIpDp,
            ips: Count::Zero,
            dps: Count::Zero,
            connectivity: Connectivity::none(),
            meta: ArchMeta::default(),
        }
    }

    /// Set the block granularity.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Set the IP count.
    pub fn ips(mut self, count: Count) -> Self {
        self.ips = count;
        self
    }

    /// Set the DP count.
    pub fn dps(mut self, count: Count) -> Self {
        self.dps = count;
        self
    }

    /// Set the link on one relation.
    pub fn link(mut self, relation: Relation, link: Link) -> Self {
        self.connectivity = self.connectivity.with(relation, link);
        self
    }

    /// Set all five links at once (table-column order).
    pub fn connectivity(mut self, connectivity: Connectivity) -> Self {
        self.connectivity = connectivity;
        self
    }

    /// Attach a free-text description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.meta.description = text.into();
        self
    }

    /// Attach a citation key.
    pub fn citation(mut self, text: impl Into<String>) -> Self {
        self.meta.citation = text.into();
        self
    }

    /// Attach a publication year.
    pub fn year(mut self, year: u16) -> Self {
        self.meta.year = Some(year);
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<ArchSpec, ModelError> {
        let spec = ArchSpec {
            name: self.name,
            granularity: self.granularity,
            ips: self.ips,
            dps: self.dps,
            connectivity: self.connectivity,
            meta: self.meta,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Produce the spec without validating (for deliberately-malformed
    /// specs in tests and for the Not-Implementable classes 11–14, which are
    /// representable in the taxonomy but rejected by `validate`'s realism
    /// rules only when self-contradictory).
    pub fn build_unchecked(self) -> ArchSpec {
        ArchSpec {
            name: self.name,
            granularity: self.granularity,
            ips: self.ips,
            dps: self.dps,
            connectivity: self.connectivity,
            meta: self.meta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::Link;

    fn morphosys() -> ArchSpec {
        ArchSpec::builder("MorphoSys")
            .ips(Count::one())
            .dps(Count::fixed(64))
            .link(Relation::IpDp, Link::direct_between(1, 64))
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, Link::direct_between(64, 1))
            .link(Relation::DpDp, Link::crossbar_between(64, 64))
            .build()
            .unwrap()
    }

    #[test]
    fn morphosys_row_notation_matches_table_iii() {
        assert_eq!(
            morphosys().row_notation(),
            "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64"
        );
    }

    #[test]
    fn dataflow_machine_rejects_ip_links() {
        let err = ArchSpec::builder("BadColt")
            .ips(Count::zero())
            .dps(Count::fixed(16))
            .link(Relation::IpDp, Link::direct_n_n())
            .link(Relation::DpDp, Link::crossbar_between(16, 16))
            .build()
            .unwrap_err();
        match err {
            ModelError::Invalid { reasons, .. } => {
                assert!(reasons.iter().any(|r| r.contains("IP-DP")), "{reasons:?}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn single_ip_cannot_self_connect() {
        let err = ArchSpec::builder("SoloSpatial")
            .ips(Count::one())
            .dps(Count::one())
            .link(Relation::IpIp, Link::crossbar_n_n())
            .link(Relation::IpDp, Link::direct_between(1, 1))
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, Link::direct_between(1, 1))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("IP-IP"));
    }

    #[test]
    fn zero_dps_rejected() {
        let err = ArchSpec::builder("NoData")
            .ips(Count::one())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("data processor"));
    }

    #[test]
    fn variable_counts_need_fine_grain() {
        let err = ArchSpec::builder("FakeFpga")
            .ips(Count::variable())
            .dps(Count::variable())
            .link(Relation::IpIp, Link::crossbar_v_v())
            .link(Relation::IpDp, Link::crossbar_v_v())
            .link(Relation::IpIm, Link::crossbar_v_v())
            .link(Relation::DpDm, Link::crossbar_v_v())
            .link(Relation::DpDp, Link::crossbar_v_v())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fine granularity"));
    }

    #[test]
    fn fine_grain_requires_variable_counts() {
        let err = ArchSpec::builder("FrozenFpga")
            .granularity(Granularity::FineLut)
            .ips(Count::one())
            .dps(Count::one())
            .link(Relation::IpDp, Link::direct_between(1, 1))
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, Link::direct_between(1, 1))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("variable"));
    }

    #[test]
    fn fpga_spec_is_valid() {
        let fpga = ArchSpec::builder("FPGA")
            .granularity(Granularity::FineLut)
            .ips(Count::variable())
            .dps(Count::variable())
            .link(Relation::IpIp, Link::crossbar_v_v())
            .link(Relation::IpDp, Link::crossbar_v_v())
            .link(Relation::IpIm, Link::crossbar_v_v())
            .link(Relation::DpDm, Link::crossbar_v_v())
            .link(Relation::DpDp, Link::crossbar_v_v())
            .build()
            .unwrap();
        assert!(fpga.is_universal());
        assert_eq!(fpga.crossbar_count(), 5);
        assert_eq!(fpga.row_notation(), "v | v | vxv | vxv | vxv | vxv | vxv");
    }

    #[test]
    fn audit_flags_extent_count_mismatch() {
        let spec = ArchSpec::builder("Odd")
            .ips(Count::one())
            .dps(Count::fixed(4))
            .link(Relation::IpDp, Link::direct_between(2, 4)) // 2 > 1 IP
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, Link::direct_between(4, 4))
            .build_unchecked();
        let issues = spec.audit();
        assert!(
            issues.iter().any(|i| i.relation == Some(Relation::IpDp)),
            "{issues:?}"
        );
    }

    #[test]
    fn audit_notes_isolated_multiprocessor() {
        let imp1 = ArchSpec::builder("Core2Duo")
            .ips(Count::fixed(2))
            .dps(Count::fixed(2))
            .link(Relation::IpDp, Link::direct_between(2, 2))
            .link(Relation::IpIm, Link::direct_between(2, 2))
            .link(Relation::DpDm, Link::direct_between(2, 2))
            .build()
            .unwrap();
        assert!(imp1
            .audit()
            .iter()
            .any(|i| i.message.contains("independent processors")));
    }

    #[test]
    fn display_includes_granularity_and_row() {
        let s = morphosys().to_string();
        assert!(s.contains("IP/DP"));
        assert!(s.contains("64x64"));
    }
}

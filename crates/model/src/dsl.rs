//! A small text DSL for architecture descriptions.
//!
//! Two formats are supported:
//!
//! **Row format** — the seven structural columns of the paper's Table III,
//! pipe-separated (`IPs | DPs | IP-IP | IP-DP | IP-IM | DP-DM | DP-DP`):
//!
//! ```text
//! 1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64
//! ```
//!
//! **Block format** — named fields, one per line, suitable for files:
//!
//! ```text
//! arch "MorphoSys" {
//!   granularity: IP/DP
//!   ips: 1
//!   dps: 64
//!   ip-ip: none
//!   ip-dp: 1-64
//!   ip-im: 1-1
//!   dp-dm: 64-1
//!   dp-dp: 64x64
//!   citation: [13]
//!   description: Reconfigurable cell fabric with a frame buffer.
//! }
//! ```
//!
//! Both parse into [`ArchSpec`]; printing round-trips.

use crate::arch::{ArchBuilder, ArchSpec};
use crate::count::Count;
use crate::error::ModelError;
use crate::granularity::Granularity;
use crate::relation::Relation;
use crate::switch::Link;

/// Parse the seven pipe-separated structural columns of a Table III row.
///
/// The spec is *not* validated: Table III contains shapes (e.g. PADDI-2's
/// direct DP-DP) that the taxonomy handles but strict realism rules might
/// question; callers wanting validation call [`ArchSpec::validate`].
pub fn parse_row(name: &str, row: &str) -> Result<ArchSpec, ModelError> {
    let cols: Vec<&str> = row.split('|').map(str::trim).collect();
    if cols.len() != 7 {
        return Err(ModelError::dsl(
            1,
            format!("expected 7 pipe-separated columns, found {}", cols.len()),
        ));
    }
    let ips: Count = cols[0].parse()?;
    let dps: Count = cols[1].parse()?;
    let granularity = if ips.is_variable() || dps.is_variable() {
        Granularity::FineLut
    } else {
        Granularity::CoarseIpDp
    };
    let mut builder = ArchBuilder::new(name)
        .granularity(granularity)
        .ips(ips)
        .dps(dps);
    for (rel, col) in Relation::ALL.iter().zip(&cols[2..]) {
        let link: Link = col.parse()?;
        builder = builder.link(*rel, link);
    }
    Ok(builder.build_unchecked())
}

/// Print a spec as a row (inverse of [`parse_row`]).
pub fn print_row(spec: &ArchSpec) -> String {
    spec.row_notation()
}

/// Parse a block-format document that may contain several `arch` blocks.
pub fn parse_blocks(input: &str) -> Result<Vec<ArchSpec>, ModelError> {
    let mut specs = Vec::new();
    let mut current: Option<(String, ArchBuilder)> = None;

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("arch") {
            if current.is_some() {
                return Err(ModelError::dsl(n, "nested `arch` block"));
            }
            let rest = rest.trim();
            let rest = rest
                .strip_suffix('{')
                .ok_or_else(|| ModelError::dsl(n, "expected `{` after arch name"))?
                .trim();
            let name = rest.trim_matches('"').to_owned();
            if name.is_empty() {
                return Err(ModelError::dsl(n, "arch block needs a name"));
            }
            current = Some((name.clone(), ArchBuilder::new(name)));
            continue;
        }
        if line == "}" {
            let (_, builder) = current
                .take()
                .ok_or_else(|| ModelError::dsl(n, "unmatched `}`"))?;
            specs.push(builder.build_unchecked());
            continue;
        }
        let (_, builder) = current
            .as_mut()
            .ok_or_else(|| ModelError::dsl(n, "field outside of an `arch` block"))?;
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| ModelError::dsl(n, "expected `key: value`"))?;
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        let taken = std::mem::replace(builder, ArchBuilder::new("swap"));
        *builder = match key.as_str() {
            "granularity" => taken.granularity(value.parse()?),
            "ips" => taken.ips(value.parse()?),
            "dps" => taken.dps(value.parse()?),
            "ip-ip" => taken.link(Relation::IpIp, value.parse()?),
            "ip-dp" => taken.link(Relation::IpDp, value.parse()?),
            "ip-im" => taken.link(Relation::IpIm, value.parse()?),
            "dp-dm" => taken.link(Relation::DpDm, value.parse()?),
            "dp-dp" => taken.link(Relation::DpDp, value.parse()?),
            "citation" => taken.citation(value),
            "description" => taken.description(value),
            "year" => {
                let year: u16 = value
                    .parse()
                    .map_err(|_| ModelError::dsl(n, format!("bad year {value:?}")))?;
                taken.year(year)
            }
            other => return Err(ModelError::dsl(n, format!("unknown field {other:?}"))),
        };
    }
    if current.is_some() {
        return Err(ModelError::dsl(
            input.lines().count(),
            "unterminated `arch` block",
        ));
    }
    Ok(specs)
}

/// Print a spec in block format (inverse of [`parse_blocks`]).
pub fn print_block(spec: &ArchSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("arch \"{}\" {{\n", spec.name));
    out.push_str(&format!("  granularity: {}\n", spec.granularity));
    out.push_str(&format!("  ips: {}\n", spec.ips));
    out.push_str(&format!("  dps: {}\n", spec.dps));
    for (rel, link) in spec.connectivity.iter() {
        out.push_str(&format!(
            "  {}: {}\n",
            rel.label().to_ascii_lowercase(),
            link
        ));
    }
    if !spec.meta.citation.is_empty() {
        out.push_str(&format!("  citation: {}\n", spec.meta.citation));
    }
    if let Some(year) = spec.meta.year {
        out.push_str(&format!("  year: {year}\n"));
    }
    if !spec.meta.description.is_empty() {
        out.push_str(&format!("  description: {}\n", spec.meta.description));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MORPHOSYS_ROW: &str = "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64";

    #[test]
    fn row_round_trip() {
        let spec = parse_row("MorphoSys", MORPHOSYS_ROW).unwrap();
        assert_eq!(print_row(&spec), MORPHOSYS_ROW);
        assert_eq!(spec.name, "MorphoSys");
        assert_eq!(spec.ips, Count::One);
        assert_eq!(spec.dps, Count::fixed(64));
    }

    #[test]
    fn row_rejects_wrong_column_count() {
        assert!(parse_row("X", "1 | 64 | none").is_err());
        assert!(parse_row("X", "1|2|3|4|5|6|7|8").is_err());
    }

    #[test]
    fn variable_counts_infer_fine_granularity() {
        let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        assert_eq!(fpga.granularity, Granularity::FineLut);
        assert!(fpga.validate().is_ok());
    }

    #[test]
    fn block_round_trip() {
        let spec = parse_row("MorphoSys", MORPHOSYS_ROW).unwrap();
        let text = print_block(&spec);
        let parsed = parse_blocks(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], spec);
    }

    #[test]
    fn block_with_metadata() {
        let text = r#"
            # survey entry
            arch "GARP" {
              granularity: IP/DP
              ips: 1
              dps: 24xn
              ip-ip: none
              ip-dp: 1-n
              ip-im: 1-1
              dp-dm: 24xnx1
              dp-dp: nxn
              citation: [20]
              year: 2000
              description: MIPS core tightly coupled to a reconfigurable array.
            }
        "#;
        let specs = parse_blocks(text).unwrap();
        assert_eq!(specs.len(), 1);
        let garp = &specs[0];
        assert_eq!(garp.dps, Count::scaled_n(24));
        assert_eq!(garp.meta.citation, "[20]");
        assert_eq!(garp.meta.year, Some(2000));
        assert!(garp.meta.description.contains("MIPS"));
    }

    #[test]
    fn multiple_blocks_parse() {
        let a = print_block(&parse_row("A", MORPHOSYS_ROW).unwrap());
        let b = print_block(&parse_row("B", "0 | 16 | none | none | none | 16x6 | 16x16").unwrap());
        let both = format!("{a}\n{b}");
        let specs = parse_blocks(&both).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "A");
        assert_eq!(specs[1].name, "B");
        assert!(specs[1].is_dataflow());
    }

    #[test]
    fn dsl_errors_carry_line_numbers() {
        let err = parse_blocks("arch \"X\" {\n  bogus: 1\n}").unwrap_err();
        match err {
            ModelError::Dsl { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_blocks("arch \"X\" {").is_err());
        assert!(parse_blocks("}").is_err());
        assert!(parse_blocks("ips: 3").is_err());
        assert!(parse_blocks("arch \"X\" {\narch \"Y\" {\n}\n}").is_err());
    }
}

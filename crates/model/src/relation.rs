//! The five connectivity relations and the [`Connectivity`] record.
//!
//! Skillicorn's original taxonomy considered four relations (IP–DP, IP–IM,
//! DP–DM, DP–DP); the paper's first extension adds the **IP–IP** relation,
//! which opens up the spatial-computing classes (13–14, 31–46 in Table I).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::switch::Link;

/// One of the five pairwise connectivity relations between building blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    /// Instruction processor to instruction processor (the paper's
    /// extension; enables spatial machines).
    IpIp,
    /// Instruction processor to data processor.
    IpDp,
    /// Instruction processor to instruction memory.
    IpIm,
    /// Data processor to data memory.
    DpDm,
    /// Data processor to data processor.
    DpDp,
}

impl Relation {
    /// All five relations, in the column order of the paper's tables:
    /// IP-IP, IP-DP, IP-IM, DP-DM, DP-DP.
    pub const ALL: [Relation; 5] = [
        Relation::IpIp,
        Relation::IpDp,
        Relation::IpIm,
        Relation::DpDm,
        Relation::DpDp,
    ];

    /// Relations that involve the instruction side (meaningless in a pure
    /// data-flow machine).
    pub const INSTRUCTION_SIDE: [Relation; 3] = [Relation::IpIp, Relation::IpDp, Relation::IpIm];

    /// Relations that involve only the data side.
    pub const DATA_SIDE: [Relation; 2] = [Relation::DpDm, Relation::DpDp];

    /// Table-header label (`IP-IP`, `IP-DP`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            Relation::IpIp => "IP-IP",
            Relation::IpDp => "IP-DP",
            Relation::IpIm => "IP-IM",
            Relation::DpDm => "DP-DM",
            Relation::DpDp => "DP-DP",
        }
    }

    /// Does this relation involve an instruction processor?
    pub fn touches_ip(&self) -> bool {
        matches!(self, Relation::IpIp | Relation::IpDp | Relation::IpIm)
    }

    /// Index used by [`Connectivity`]'s dense storage.
    fn idx(&self) -> usize {
        match self {
            Relation::IpIp => 0,
            Relation::IpDp => 1,
            Relation::IpIm => 2,
            Relation::DpDm => 3,
            Relation::DpDp => 4,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The full interconnection record of an architecture: one [`Link`] per
/// [`Relation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Connectivity {
    links: [Link; 5],
}

impl Connectivity {
    /// All-`none` connectivity.
    pub fn none() -> Self {
        Connectivity::default()
    }

    /// Build from explicit links in table-column order
    /// (IP-IP, IP-DP, IP-IM, DP-DM, DP-DP).
    pub fn new(ip_ip: Link, ip_dp: Link, ip_im: Link, dp_dm: Link, dp_dp: Link) -> Self {
        Connectivity {
            links: [ip_ip, ip_dp, ip_im, dp_dm, dp_dp],
        }
    }

    /// Replace one relation's link, returning the updated connectivity
    /// (builder style).
    pub fn with(mut self, relation: Relation, link: Link) -> Self {
        self.links[relation.idx()] = link;
        self
    }

    /// The link on `relation`.
    pub fn link(&self, relation: Relation) -> Link {
        self.links[relation.idx()]
    }

    /// Iterate `(relation, link)` pairs in table-column order.
    pub fn iter(&self) -> impl Iterator<Item = (Relation, Link)> + '_ {
        Relation::ALL.iter().map(move |r| (*r, self.links[r.idx()]))
    }

    /// Number of crossbar (`x`) switches present — the quantity the paper's
    /// flexibility scoring counts.
    pub fn crossbar_count(&self) -> u32 {
        self.links.iter().filter(|l| l.is_crossbar()).count() as u32
    }

    /// Number of relations with any switch present.
    pub fn connected_count(&self) -> u32 {
        self.links.iter().filter(|l| l.is_connected()).count() as u32
    }

    /// Relations whose link is a crossbar.
    pub fn crossbar_relations(&self) -> Vec<Relation> {
        Relation::ALL
            .iter()
            .copied()
            .filter(|r| self.links[r.idx()].is_crossbar())
            .collect()
    }

    /// Do any instruction-side relations carry a switch?
    pub fn has_instruction_side(&self) -> bool {
        Relation::INSTRUCTION_SIDE
            .iter()
            .any(|r| self.links[r.idx()].is_connected())
    }
}

impl Index<Relation> for Connectivity {
    type Output = Link;

    fn index(&self, relation: Relation) -> &Link {
        &self.links[relation.idx()]
    }
}

impl IndexMut<Relation> for Connectivity {
    fn index_mut(&mut self, relation: Relation) -> &mut Link {
        &mut self.links[relation.idx()]
    }
}

impl fmt::Display for Connectivity {
    /// Prints the five-column tail of a Table III row:
    /// `none | 1-64 | 1-1 | 64-1 | 64x64`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (_, link) in self.iter() {
            if !first {
                write!(f, " | ")?;
            }
            write!(f, "{link}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_order_matches_table_columns() {
        let labels: Vec<&str> = Relation::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP"]);
    }

    #[test]
    fn crossbar_count_counts_only_crossbars() {
        let conn = Connectivity::none()
            .with(Relation::IpDp, Link::direct_n_n())
            .with(Relation::DpDp, Link::crossbar_n_n())
            .with(Relation::DpDm, Link::crossbar_n_n());
        assert_eq!(conn.crossbar_count(), 2);
        assert_eq!(conn.connected_count(), 3);
        assert_eq!(
            conn.crossbar_relations(),
            vec![Relation::DpDm, Relation::DpDp]
        );
    }

    #[test]
    fn index_and_with_agree() {
        let mut conn = Connectivity::none();
        conn[Relation::IpIp] = Link::crossbar_n_n();
        assert_eq!(conn.link(Relation::IpIp), Link::crossbar_n_n());
        let conn2 = Connectivity::none().with(Relation::IpIp, Link::crossbar_n_n());
        assert_eq!(conn, conn2);
    }

    #[test]
    fn instruction_side_detection() {
        let dataflow = Connectivity::none()
            .with(Relation::DpDm, Link::crossbar_n_n())
            .with(Relation::DpDp, Link::crossbar_n_n());
        assert!(!dataflow.has_instruction_side());
        let instr = dataflow.with(Relation::IpDp, Link::direct_n_n());
        assert!(instr.has_instruction_side());
    }

    #[test]
    fn display_prints_row_tail() {
        let conn = Connectivity::new(
            Link::None,
            Link::direct_between(1, 64),
            Link::direct_between(1, 1),
            Link::direct_between(64, 1),
            Link::crossbar_between(64, 64),
        );
        assert_eq!(conn.to_string(), "none | 1-64 | 1-1 | 64-1 | 64x64");
    }
}

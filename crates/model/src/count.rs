//! Block counts (`0`, `1`, `n`, `v`) and switch-endpoint extents.
//!
//! The paper distinguishes four count values for the number of IPs or DPs in
//! an architecture:
//!
//! * `0` — the block is absent (e.g. no IPs in a data-flow machine),
//! * `1` — exactly one block,
//! * `n` — a *constant* plural number fixed at design time.  In Table III
//!   the paper substitutes the actual value where known (`64` for MorphoSys)
//!   and keeps the symbol `n` for template architectures (RICA, DRRA).  GARP
//!   uses a scaled symbol, `24xn` (24 logic elements per row, `n` rows).
//! * `v` — a *variable* number: the fine-grained fabric can be reconfigured
//!   so that the same silicon plays the role of IP or DP, hence the count of
//!   each changes with the configuration (`v >= 0`); FPGAs are the example.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::error::ModelError;

/// A plural (`n`-class) count: `coeff * n`, optionally resolved to a
/// concrete value.
///
/// * `Many { coeff: 1, resolved: Some(64), .. }` prints as `64` (MorphoSys
///   DPs).
/// * `Many { coeff: 1, resolved: None, symbol: 'n' }` prints as `n`
///   (template archs).
/// * `Many { coeff: 24, resolved: None, symbol: 'n' }` prints as `24xn`
///   (GARP DPs).
/// * `Many { coeff: 1, resolved: None, symbol: 'm' }` prints as `m` —
///   Table III uses a second symbol when one row carries two independent
///   design-time constants (RaPiD's `m` function units vs `n` cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Many {
    /// Scale factor applied to the symbolic letter (1 for a plain `n`).
    pub coeff: u32,
    /// Concrete value if the architecture fixes it (e.g. 64), else `None`.
    pub resolved: Option<u32>,
    /// The symbolic letter used in the paper's notation (usually `n`).
    pub symbol: char,
}

impl Many {
    /// A plain, unresolved symbolic `n`.
    pub const fn symbolic() -> Self {
        Many::named('n')
    }

    /// A plain symbolic count written with an arbitrary lowercase letter
    /// (Table III's `m`).  All letters are the same `n` class; the symbol
    /// only matters for faithful display.
    pub const fn named(symbol: char) -> Self {
        Many {
            coeff: 1,
            resolved: None,
            symbol,
        }
    }

    /// A symbolic count scaled by `coeff` (GARP's `24xn`).
    pub const fn scaled(coeff: u32) -> Self {
        Many {
            coeff,
            resolved: None,
            symbol: 'n',
        }
    }

    /// A concrete plural count (e.g. `64`).
    pub const fn resolved(value: u32) -> Self {
        Many {
            coeff: 1,
            resolved: Some(value),
            symbol: 'n',
        }
    }

    /// The concrete number of blocks, if known.  A scaled symbolic count is
    /// only concrete once `n` is substituted via [`Many::substitute`].
    pub fn value(&self) -> Option<u32> {
        self.resolved
    }

    /// Substitute a concrete `n`, producing a resolved count
    /// (`coeff * n`).  A count that is already resolved is unchanged.
    pub fn substitute(&self, n: u32) -> Many {
        match self.resolved {
            Some(_) => *self,
            None => Many {
                resolved: Some(self.coeff.saturating_mul(n)),
                ..*self
            },
        }
    }
}

impl fmt::Display for Many {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.coeff, self.resolved) {
            (_, Some(v)) => write!(f, "{v}"),
            (1, None) => write!(f, "{}", self.symbol),
            (c, None) => write!(f, "{c}x{}", self.symbol),
        }
    }
}

/// Number of instances of a building block (IP or DP) in an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Count {
    /// The block does not exist (data-flow machines have zero IPs).
    Zero,
    /// Exactly one instance.
    One,
    /// A constant plural number (`n`), possibly resolved or scaled.
    Many(Many),
    /// A variable number (`v`): the count changes under reconfiguration.
    Variable,
}

impl Count {
    /// Zero instances.
    pub const fn zero() -> Self {
        Count::Zero
    }

    /// Exactly one instance.
    pub const fn one() -> Self {
        Count::One
    }

    /// A symbolic, unresolved `n`.
    pub const fn n() -> Self {
        Count::Many(Many::symbolic())
    }

    /// A concrete count.  `0` and `1` normalise to [`Count::Zero`] /
    /// [`Count::One`]; anything larger is an `n`-class count.
    pub const fn fixed(value: u32) -> Self {
        match value {
            0 => Count::Zero,
            1 => Count::One,
            v => Count::Many(Many::resolved(v)),
        }
    }

    /// A symbolic count scaled by `coeff` (GARP's `24xn`).
    pub const fn scaled_n(coeff: u32) -> Self {
        Count::Many(Many::scaled(coeff))
    }

    /// A variable (`v`) count.
    pub const fn variable() -> Self {
        Count::Variable
    }

    /// Is this the `n` class (plural, fixed at design time)?
    pub fn is_many(&self) -> bool {
        matches!(self, Count::Many(_))
    }

    /// Is this the `v` class (variable under reconfiguration)?
    pub fn is_variable(&self) -> bool {
        matches!(self, Count::Variable)
    }

    /// Does this count describe more than one block (i.e. `n` or `v`)?
    ///
    /// This is the predicate the paper's flexibility scoring uses: "the
    /// presence of 'n' IPs or DPs each will get 1 point" — variable counts
    /// subsume plural counts.
    pub fn is_plural(&self) -> bool {
        matches!(self, Count::Many(_) | Count::Variable)
    }

    /// The concrete number of blocks, if known.
    pub fn value(&self) -> Option<u32> {
        match self {
            Count::Zero => Some(0),
            Count::One => Some(1),
            Count::Many(m) => m.value(),
            Count::Variable => None,
        }
    }

    /// The concrete number of blocks, substituting `n` where the count is
    /// symbolic.  `Variable` has no concrete value even after substitution
    /// (it depends on the loaded configuration, not on `n`).
    pub fn value_with_n(&self, n: u32) -> Option<u32> {
        match self {
            Count::Many(m) => m.substitute(n).value(),
            other => other.value(),
        }
    }

    /// The *flexibility class* rank used for comparisons:
    /// `Zero < One < Many < Variable`.
    pub fn rank(&self) -> u8 {
        match self {
            Count::Zero => 0,
            Count::One => 1,
            Count::Many(_) => 2,
            Count::Variable => 3,
        }
    }
}

impl PartialOrd for Count {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.rank().cmp(&other.rank()))
    }
}

impl fmt::Display for Count {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Count::Zero => write!(f, "0"),
            Count::One => write!(f, "1"),
            Count::Many(m) => write!(f, "{m}"),
            Count::Variable => write!(f, "v"),
        }
    }
}

impl FromStr for Count {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // A lowercase letter usable as a plural symbol: any letter except
        // `v` (the variable class) and `x` (the scale separator).  Uppercase
        // `N` is accepted as legacy input and normalised to `n`.
        fn plural_symbol(c: char) -> Option<char> {
            match c {
                'N' => Some('n'),
                'v' | 'x' => None,
                c if c.is_ascii_lowercase() => Some(c),
                _ => None,
            }
        }
        let s = s.trim();
        match s {
            "0" => Ok(Count::Zero),
            "1" => Ok(Count::One),
            "v" | "V" => Ok(Count::Variable),
            _ => {
                let mut chars = s.chars();
                if let (Some(c), None) = (chars.next(), chars.next()) {
                    // Bare symbolic count: `n`, or Table III's `m`.
                    if let Some(symbol) = plural_symbol(c) {
                        return Ok(Count::Many(Many::named(symbol)));
                    }
                }
                // `24xn` style scaled symbolic count (any plural letter).
                if let Some((coeff, last)) = s
                    .char_indices()
                    .last()
                    .and_then(|(i, c)| Some((&s[..i], plural_symbol(c)?)))
                {
                    if let Some(coeff) = coeff.strip_suffix(['x', 'X']) {
                        let c: u32 = coeff.parse().map_err(|_| ModelError::count_parse(s))?;
                        if c == 0 {
                            return Err(ModelError::count_parse(s));
                        }
                        return Ok(Count::Many(Many {
                            coeff: c,
                            resolved: None,
                            symbol: last,
                        }));
                    }
                }
                let v: u32 = s.parse().map_err(|_| ModelError::count_parse(s))?;
                Ok(Count::fixed(v))
            }
        }
    }
}

/// One endpoint multiplicity of a switch (`1-64` has extents `1` and `64`;
/// `vxv` has extents `v` and `v`).  An extent is a [`Count`] that cannot be
/// zero — a switch with a zero-sized side would not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent(Count);

impl Extent {
    /// Build an extent from a count.  Fails on [`Count::Zero`].
    pub fn new(count: Count) -> Result<Self, ModelError> {
        if matches!(count, Count::Zero) {
            Err(ModelError::ZeroExtent)
        } else {
            Ok(Extent(count))
        }
    }

    /// Extent of exactly one block.
    pub const fn one() -> Self {
        Extent(Count::One)
    }

    /// Symbolic plural extent `n`.
    pub const fn n() -> Self {
        Extent(Count::Many(Many::symbolic()))
    }

    /// Concrete extent; values 0 and 1 normalise like [`Count::fixed`]
    /// (0 is rejected at [`Extent::new`], so use this only with `value >= 1`).
    pub fn fixed(value: u32) -> Self {
        Extent::new(Count::fixed(value.max(1))).expect("nonzero by construction")
    }

    /// Scaled symbolic extent (`24xn`).
    pub const fn scaled_n(coeff: u32) -> Self {
        Extent(Count::Many(Many::scaled(coeff)))
    }

    /// Variable extent `v`.
    pub const fn variable() -> Self {
        Extent(Count::Variable)
    }

    /// The underlying count.
    pub fn count(&self) -> Count {
        self.0
    }

    /// Concrete multiplicity if known.
    pub fn value(&self) -> Option<u32> {
        self.0.value()
    }

    /// Concrete multiplicity, substituting symbolic `n`.
    pub fn value_with_n(&self, n: u32) -> Option<u32> {
        self.0.value_with_n(n)
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Extent {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let count: Count = s.parse()?;
        Extent::new(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_display_round_trips_paper_notation() {
        for raw in ["0", "1", "n", "v", "64", "24xn", "48", "6", "m", "8xm"] {
            let c: Count = raw.parse().unwrap();
            assert_eq!(c.to_string(), raw, "round trip of {raw}");
        }
    }

    #[test]
    fn any_lowercase_letter_is_a_plural_symbol() {
        // Table III writes RaPiD's function-unit count as `m`; every such
        // letter is the same `n` class, displayed with its own symbol.
        let m: Count = "m".parse().unwrap();
        assert_eq!(m, Count::Many(Many::named('m')));
        assert!(m.is_plural());
        assert_eq!(m.rank(), Count::n().rank());
        assert_eq!(m.value_with_n(16), Some(16));
        // Legacy uppercase `N` still normalises to `n`.
        assert_eq!("N".parse::<Count>().unwrap(), Count::n());
        assert_eq!("24xN".parse::<Count>().unwrap(), Count::scaled_n(24));
        // `v` and `x` are never plural symbols.
        assert_eq!("v".parse::<Count>().unwrap(), Count::Variable);
        assert!("x".parse::<Count>().is_err());
        assert!("3xx".parse::<Count>().is_err());
        assert!("3xv".parse::<Count>().is_err());
    }

    #[test]
    fn fixed_normalises_zero_and_one() {
        assert_eq!(Count::fixed(0), Count::Zero);
        assert_eq!(Count::fixed(1), Count::One);
        assert_eq!(Count::fixed(2), Count::Many(Many::resolved(2)));
    }

    #[test]
    fn rank_ordering_matches_flexibility_classes() {
        assert!(Count::Zero < Count::One);
        assert!(Count::One < Count::n());
        assert!(Count::n() < Count::Variable);
        // Concrete and symbolic plural counts are the same class.
        assert_eq!(Count::fixed(64).rank(), Count::n().rank());
    }

    #[test]
    fn plural_predicate_matches_scoring_rule() {
        assert!(!Count::Zero.is_plural());
        assert!(!Count::One.is_plural());
        assert!(Count::fixed(64).is_plural());
        assert!(Count::n().is_plural());
        assert!(Count::Variable.is_plural());
    }

    #[test]
    fn scaled_count_substitutes() {
        let garp_dps = Count::scaled_n(24);
        assert_eq!(garp_dps.value(), None);
        assert_eq!(garp_dps.value_with_n(4), Some(96));
        assert_eq!(garp_dps.to_string(), "24xn");
    }

    #[test]
    fn substitution_keeps_resolved_counts() {
        let c = Many::resolved(64);
        assert_eq!(c.substitute(7), c);
    }

    #[test]
    fn variable_count_has_no_concrete_value() {
        assert_eq!(Count::Variable.value(), None);
        assert_eq!(Count::Variable.value_with_n(1000), None);
    }

    #[test]
    fn extent_rejects_zero() {
        assert!(Extent::new(Count::Zero).is_err());
        assert!(Extent::new(Count::One).is_ok());
    }

    #[test]
    fn extent_parses_paper_tokens() {
        let e: Extent = "24xn".parse().unwrap();
        assert_eq!(e.count(), Count::scaled_n(24));
        assert!("0".parse::<Extent>().is_err());
    }

    #[test]
    fn count_parse_rejects_garbage() {
        assert!("".parse::<Count>().is_err());
        assert!("x".parse::<Count>().is_err());
        assert!("-3".parse::<Count>().is_err());
        assert!("0xn".parse::<Count>().is_err());
    }
}

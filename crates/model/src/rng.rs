//! A small, seeded, dependency-free pseudo-random number generator.
//!
//! The workspace builds hermetically (no external crates), so everything
//! that needs randomness — the synthetic bibliometric dataset, the
//! fault-injection scheduler in `skilltax-machine`, and the deterministic
//! case-sweep test harnesses that replaced `proptest` — draws from this
//! xorshift64* generator.  It is *not* cryptographic; it is deterministic,
//! fast, and good enough to decorrelate case sweeps.

/// A seeded xorshift64* generator.
///
/// The raw seed is pre-mixed with a SplitMix64 step so that seed `0` and
/// adjacent seeds (`1`, `2`, ...) still produce decorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

/// One SplitMix64 scramble step (used for seeding).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl XorShift64 {
    /// A generator seeded from `seed` (any value, including 0).
    pub fn new(seed: u64) -> XorShift64 {
        // xorshift requires a non-zero state; SplitMix64 maps exactly one
        // input to 0, so re-mix in that single case.
        let mut state = splitmix64(seed);
        if state == 0 {
            state = splitmix64(seed.wrapping_add(1)) | 1;
        }
        XorShift64 { state }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounding; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A `usize` in `0..bound` (`bound` must be non-zero).
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// An `i64` in the half-open range `lo..hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A `u64` in the half-open range `lo..hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A `usize` in the half-open range `lo..hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A reference to one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below_usize(items.len())]
    }

    /// Fork a decorrelated child generator (for per-case seeding in the
    /// sweep test harnesses).
    pub fn fork(&mut self) -> XorShift64 {
        XorShift64::new(self.next_u64())
    }
}

/// Run `cases` deterministic sweep iterations, handing each case its own
/// decorrelated generator: the hermetic stand-in for `proptest!`.
///
/// Panics (test assertion failures) propagate with the case index in the
/// message so a failing case is reproducible from the fixed master seed.
pub fn sweep_cases(master_seed: u64, cases: usize, mut body: impl FnMut(usize, &mut XorShift64)) {
    let mut master = XorShift64::new(master_seed);
    for case in 0..cases {
        let mut rng = master.fork();
        body(case, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_legal_and_nonzero_stream() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.range_f64(-0.05, 0.05);
            assert!((-0.05..0.05).contains(&f));
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = XorShift64::new(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "stream never left the middle of [0,1)");
    }

    #[test]
    fn sweep_cases_is_reproducible() {
        let mut first = Vec::new();
        sweep_cases(99, 5, |_, rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        sweep_cases(99, 5, |_, rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn pick_and_chance_behave() {
        let mut r = XorShift64::new(3);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
        let heads = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((300..700).contains(&heads), "{heads} heads");
    }
}

//! Typed errors for model construction and parsing.

use std::fmt;

/// Errors raised while building or parsing architecture descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A count token could not be parsed (`"0" | "1" | "n" | "v" | <int> |
    /// <int>xn` expected).
    CountParse {
        /// The offending token.
        token: String,
    },
    /// A switch token could not be parsed (`a-b` or `axb` expected).
    SwitchParse {
        /// The offending token.
        token: String,
    },
    /// A granularity token could not be parsed.
    GranularityParse {
        /// The offending token.
        token: String,
    },
    /// A switch extent of zero was requested.
    ZeroExtent,
    /// Architecture validation failed.
    Invalid {
        /// Architecture name.
        arch: String,
        /// Human-readable reasons (one per violated rule).
        reasons: Vec<String>,
    },
    /// A DSL document was malformed.
    Dsl {
        /// Line number (1-based) where the problem was found.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl ModelError {
    pub(crate) fn count_parse(token: &str) -> Self {
        ModelError::CountParse {
            token: token.to_owned(),
        }
    }

    pub(crate) fn switch_parse(token: &str) -> Self {
        ModelError::SwitchParse {
            token: token.to_owned(),
        }
    }

    pub(crate) fn granularity_parse(token: &str) -> Self {
        ModelError::GranularityParse {
            token: token.to_owned(),
        }
    }

    /// A DSL error at `line` with a message.
    pub fn dsl(line: usize, message: impl Into<String>) -> Self {
        ModelError::Dsl {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CountParse { token } => {
                write!(
                    f,
                    "cannot parse count {token:?} (expected 0, 1, n, v, an integer, or <int>xn)"
                )
            }
            ModelError::SwitchParse { token } => {
                write!(f, "cannot parse switch {token:?} (expected `a-b` or `axb`)")
            }
            ModelError::GranularityParse { token } => {
                write!(
                    f,
                    "cannot parse granularity {token:?} (expected IP/DP or LUTs)"
                )
            }
            ModelError::ZeroExtent => write!(f, "switch extent cannot be zero"),
            ModelError::Invalid { arch, reasons } => {
                write!(f, "invalid architecture {arch:?}: {}", reasons.join("; "))
            }
            ModelError::Dsl { line, message } => write!(f, "DSL error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::count_parse("q");
        assert!(e.to_string().contains("\"q\""));
        let e = ModelError::Invalid {
            arch: "X".into(),
            reasons: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a; b"));
        let e = ModelError::dsl(3, "boom");
        assert!(e.to_string().contains("line 3"));
    }
}

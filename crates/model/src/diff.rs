//! Structural diffs between two architecture descriptions — the concrete
//! counterpart of the taxonomy-level name comparison (Section III-A): not
//! just "same sub-type?", but exactly which counts and switches differ
//! and by how much.

use std::fmt;

use crate::arch::ArchSpec;
use crate::count::Count;
use crate::relation::Relation;
use crate::switch::Link;

/// One difference between two specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecDelta {
    /// Granularities differ.
    Granularity {
        /// Left value.
        left: crate::granularity::Granularity,
        /// Right value.
        right: crate::granularity::Granularity,
    },
    /// An IP or DP count differs.
    CountChanged {
        /// Which block ("IPs" or "DPs").
        block: &'static str,
        /// Left count.
        left: Count,
        /// Right count.
        right: Count,
    },
    /// A relation's link differs.
    LinkChanged {
        /// The relation.
        relation: Relation,
        /// Left link.
        left: Link,
        /// Right link.
        right: Link,
        /// Is the right side's switch kind a strict upgrade
        /// (none→direct→crossbar)?
        upgrade: bool,
    },
}

impl fmt::Display for SpecDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecDelta::Granularity { left, right } => {
                write!(f, "granularity: {left} vs {right}")
            }
            SpecDelta::CountChanged { block, left, right } => {
                write!(f, "{block}: {left} vs {right}")
            }
            SpecDelta::LinkChanged {
                relation,
                left,
                right,
                upgrade,
            } => write!(
                f,
                "{}: {} vs {}{}",
                relation.label(),
                left,
                right,
                if *upgrade { " (upgrade)" } else { "" }
            ),
        }
    }
}

/// Rank of a link kind for upgrade detection: none < direct < crossbar.
fn link_rank(link: Link) -> u8 {
    match link {
        Link::None => 0,
        Link::Connected(sw) if !sw.is_crossbar() => 1,
        Link::Connected(_) => 2,
    }
}

/// Compute all structural differences between two specs (metadata and
/// names excluded).  An empty result means structurally identical.
pub fn diff(left: &ArchSpec, right: &ArchSpec) -> Vec<SpecDelta> {
    let mut deltas = Vec::new();
    if left.granularity != right.granularity {
        deltas.push(SpecDelta::Granularity {
            left: left.granularity,
            right: right.granularity,
        });
    }
    if left.ips != right.ips {
        deltas.push(SpecDelta::CountChanged {
            block: "IPs",
            left: left.ips,
            right: right.ips,
        });
    }
    if left.dps != right.dps {
        deltas.push(SpecDelta::CountChanged {
            block: "DPs",
            left: left.dps,
            right: right.dps,
        });
    }
    for relation in Relation::ALL {
        let (l, r) = (
            left.connectivity.link(relation),
            right.connectivity.link(relation),
        );
        if l != r {
            deltas.push(SpecDelta::LinkChanged {
                relation,
                left: l,
                right: r,
                upgrade: link_rank(r) > link_rank(l),
            });
        }
    }
    deltas
}

/// Are the two specs structurally identical?
pub fn structurally_equal(left: &ArchSpec, right: &ArchSpec) -> bool {
    diff(left, right).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_row;

    #[test]
    fn identical_specs_have_empty_diff() {
        let a = parse_row("A", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").unwrap();
        let b = parse_row("B", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").unwrap();
        assert!(structurally_equal(&a, &b)); // names/metadata ignored
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn single_switch_difference_detected_as_upgrade() {
        // MorphoSys vs an imagined variant with a DP-DM crossbar.
        let base = parse_row("base", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").unwrap();
        let upgraded = parse_row("up", "1 | 64 | none | 1-64 | 1-1 | 64x1 | 64x64").unwrap();
        let deltas = diff(&base, &upgraded);
        assert_eq!(deltas.len(), 1);
        match &deltas[0] {
            SpecDelta::LinkChanged {
                relation, upgrade, ..
            } => {
                assert_eq!(*relation, Relation::DpDm);
                assert!(upgrade);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The reverse direction is a downgrade.
        let back = diff(&upgraded, &base);
        assert!(matches!(
            back[0],
            SpecDelta::LinkChanged { upgrade: false, .. }
        ));
    }

    #[test]
    fn count_and_granularity_differences_detected() {
        let small = parse_row("s", "1 | 8 | none | 1-8 | 1-1 | 8-1 | 8x8").unwrap();
        let big = parse_row("b", "n | n | none | n-n | n-n | n-n | nxn").unwrap();
        let deltas = diff(&small, &big);
        assert!(deltas
            .iter()
            .any(|d| matches!(d, SpecDelta::CountChanged { block: "IPs", .. })));
        assert!(deltas
            .iter()
            .any(|d| matches!(d, SpecDelta::CountChanged { block: "DPs", .. })));
        let fpga = parse_row("f", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        let deltas = diff(&small, &fpga);
        assert!(deltas
            .iter()
            .any(|d| matches!(d, SpecDelta::Granularity { .. })));
    }

    #[test]
    fn deltas_display_readably() {
        let a = parse_row("a", "1 | 8 | none | 1-8 | 1-1 | 8-1 | none").unwrap();
        let b = parse_row("b", "1 | 8 | none | 1-8 | 1-1 | 8-1 | 8x8").unwrap();
        let text = diff(&a, &b)[0].to_string();
        assert_eq!(text, "DP-DP: none vs 8x8 (upgrade)");
    }

    #[test]
    fn diff_counts_match_direction_symmetry() {
        let a = parse_row("a", "1 | 8 | none | 1-8 | 1-1 | 8x8 | none").unwrap();
        let b = parse_row("b", "0 | 8 | none | none | none | 8-8 | 8x8").unwrap();
        assert_eq!(diff(&a, &b).len(), diff(&b, &a).len());
    }
}

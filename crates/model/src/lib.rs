//! # skilltax-model
//!
//! Architecture *description* substrate for the extended Skillicorn taxonomy
//! of Shami & Hemani, *"Classification of Massively Parallel Computer
//! Architectures"* (IPPS 2012).
//!
//! The paper describes a computer architecture with Skillicorn's four basic
//! building blocks — Instruction Processor (IP), Data Processor (DP),
//! Instruction Memory (IM) and Data Memory (DM) — extended in two ways:
//!
//! 1. block **counts** may be `0`, `1`, `n` (fixed at design time) or `v`
//!    (variable under reconfiguration, as in an FPGA), and
//! 2. five **connectivity relations** (IP–IP, IP–DP, IP–IM, DP–DM, DP–DP)
//!    each carry a switch that is absent (`none`), direct (`-`) or a
//!    crossbar (`x`).
//!
//! This crate provides the data model: [`Count`], [`Switch`]/[`Link`],
//! [`Relation`]/[`Connectivity`], [`Granularity`] and the top-level
//! [`ArchSpec`] with a validating [`ArchBuilder`], plus a text DSL
//! ([`dsl`]) that reads and writes the exact notation used in the paper's
//! Table III rows (e.g. `1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64`).
//!
//! Higher layers build on this: `skilltax-taxonomy` classifies an
//! [`ArchSpec`] into one of the 47 classes of the paper's Table I,
//! `skilltax-estimate` evaluates the paper's area (Eq 1) and
//! configuration-bit (Eq 2) models over it, and `skilltax-machine` builds
//! executable machines whose structure round-trips through this model.
//!
//! ## Quickstart
//!
//! ```
//! use skilltax_model::{ArchSpec, Count, Link, Relation};
//!
//! // MorphoSys from Table III: 1 IP, 64 DPs, IP-DP 1-64, IP-IM 1-1,
//! // DP-DM 64-1, DP-DP 64x64.
//! let spec = ArchSpec::builder("MorphoSys")
//!     .ips(Count::one())
//!     .dps(Count::fixed(64))
//!     .link(Relation::IpDp, Link::direct_between(1, 64))
//!     .link(Relation::IpIm, Link::direct_between(1, 1))
//!     .link(Relation::DpDm, Link::direct_between(64, 1))
//!     .link(Relation::DpDp, Link::crossbar_between(64, 64))
//!     .build()
//!     .unwrap();
//!
//! assert_eq!(spec.row_notation(), "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64");
//! assert_eq!(spec.crossbar_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod count;
pub mod diff;
pub mod dsl;
pub mod error;
pub mod granularity;
pub mod relation;
pub mod rng;
pub mod switch;

pub use arch::{ArchBuilder, ArchMeta, ArchSpec, ValidationIssue};
pub use count::{Count, Extent, Many};
pub use diff::{diff, structurally_equal, SpecDelta};
pub use error::ModelError;
pub use granularity::Granularity;
pub use relation::{Connectivity, Relation};
pub use rng::XorShift64;
pub use switch::{Link, Switch, SwitchKind};

/// Convenient glob-import surface: `use skilltax_model::prelude::*;`.
pub mod prelude {
    pub use crate::arch::{ArchBuilder, ArchSpec};
    pub use crate::count::{Count, Extent};
    pub use crate::granularity::Granularity;
    pub use crate::relation::{Connectivity, Relation};
    pub use crate::switch::{Link, Switch, SwitchKind};
}

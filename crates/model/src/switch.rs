//! Switches and links between building blocks.
//!
//! The paper annotates each of the five connectivity relations with either
//! `none` (no switch exists), a *direct* switch written `a-b` (a fixed
//! point-to-point organisation that "cannot be changed"), or a *crossbar*
//! switch written `axb` (any-to-any connectivity, the source of
//! flexibility and of configuration overhead).

use std::fmt;
use std::str::FromStr;

use crate::count::Extent;
use crate::error::ModelError;

/// The kind of switch connecting two groups of building blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwitchKind {
    /// Fixed point-to-point wiring, written `-` in the paper.  A direct
    /// switch has no configuration state: the connectivity is frozen at
    /// design time.
    Direct,
    /// Crossbar connectivity, written `x` in the paper.  Covers both full
    /// crossbars (`nxn`) and limited/windowed crossbars (DRRA's `nx14`):
    /// what matters for classification and flexibility is that the
    /// organisation *can be changed* at run time.
    Crossbar,
}

impl SwitchKind {
    /// The single-character notation used in the paper (`-` or `x`).
    pub fn symbol(&self) -> char {
        match self {
            SwitchKind::Direct => '-',
            SwitchKind::Crossbar => 'x',
        }
    }
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A switch between two block groups: kind plus endpoint multiplicities.
///
/// `Switch { Direct, 1, 64 }` prints as `1-64`; `Switch { Crossbar, 5, 10 }`
/// prints as `5x10`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Switch {
    /// Direct or crossbar.
    pub kind: SwitchKind,
    /// Multiplicity of the left-hand block group.
    pub left: Extent,
    /// Multiplicity of the right-hand block group.
    pub right: Extent,
}

impl Switch {
    /// Build a switch.
    pub fn new(kind: SwitchKind, left: Extent, right: Extent) -> Self {
        Switch { kind, left, right }
    }

    /// A direct switch between symbolic `n` and `n`.
    pub fn direct_n_n() -> Self {
        Switch::new(SwitchKind::Direct, Extent::n(), Extent::n())
    }

    /// A crossbar between symbolic `n` and `n`.
    pub fn crossbar_n_n() -> Self {
        Switch::new(SwitchKind::Crossbar, Extent::n(), Extent::n())
    }

    /// Is this a crossbar (the `x` class that scores flexibility points)?
    pub fn is_crossbar(&self) -> bool {
        self.kind == SwitchKind::Crossbar
    }

    /// Concrete number of crosspoints `left * right` if both extents are
    /// known; meaningful for crossbars (a direct switch has `max(l, r)`
    /// wires, not `l*r` crosspoints).
    pub fn crosspoints(&self) -> Option<u64> {
        match (self.left.value(), self.right.value()) {
            (Some(l), Some(r)) => Some(u64::from(l) * u64::from(r)),
            _ => None,
        }
    }

    /// Concrete number of crosspoints after substituting symbolic `n`.
    pub fn crosspoints_with_n(&self, n: u32) -> Option<u64> {
        match (self.left.value_with_n(n), self.right.value_with_n(n)) {
            (Some(l), Some(r)) => Some(u64::from(l) * u64::from(r)),
            _ => None,
        }
    }
}

impl fmt::Display for Switch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.left, self.kind.symbol(), self.right)
    }
}

impl FromStr for Switch {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        // Find the separator. A complication: extents themselves may contain
        // an 'x' ("24xn") so we cannot just split on 'x'. Strategy: try every
        // possible separator position and keep the parse that succeeds;
        // prefer '-' separators (extents never contain '-').
        if let Some(idx) = s.find('-') {
            let (l, r) = (&s[..idx], &s[idx + 1..]);
            let left: Extent = l.parse()?;
            let right: Extent = r.parse()?;
            return Ok(Switch::new(SwitchKind::Direct, left, right));
        }
        let bytes = s.as_bytes();
        let mut candidates = Vec::new();
        for (i, b) in bytes.iter().enumerate() {
            if *b == b'x' || *b == b'X' {
                let (l, r) = (&s[..i], &s[i + 1..]);
                if let (Ok(left), Ok(right)) = (l.parse::<Extent>(), r.parse::<Extent>()) {
                    candidates.push(Switch::new(SwitchKind::Crossbar, left, right));
                }
            }
        }
        match candidates.len() {
            0 => Err(ModelError::switch_parse(s)),
            // "24xnx24xn" parses two ways only when both sides are scaled
            // symbols; the paper never writes that shape ambiguously, but if
            // it happens we take the first (leftmost separator) consistently.
            _ => Ok(candidates[0]),
        }
    }
}

/// A connectivity relation's state: either no switch at all (`none`) or a
/// concrete [`Switch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Link {
    /// No connection between the two block groups.
    #[default]
    None,
    /// The groups are connected through the given switch.
    Connected(Switch),
}

impl Link {
    /// A direct link between concrete multiplicities.
    pub fn direct_between(left: u32, right: u32) -> Self {
        Link::Connected(Switch::new(
            SwitchKind::Direct,
            Extent::fixed(left),
            Extent::fixed(right),
        ))
    }

    /// A crossbar link between concrete multiplicities.
    pub fn crossbar_between(left: u32, right: u32) -> Self {
        Link::Connected(Switch::new(
            SwitchKind::Crossbar,
            Extent::fixed(left),
            Extent::fixed(right),
        ))
    }

    /// Direct symbolic `n-n` link.
    pub fn direct_n_n() -> Self {
        Link::Connected(Switch::direct_n_n())
    }

    /// Crossbar symbolic `nxn` link.
    pub fn crossbar_n_n() -> Self {
        Link::Connected(Switch::crossbar_n_n())
    }

    /// Crossbar `vxv` link (universal flow machines).
    pub fn crossbar_v_v() -> Self {
        Link::Connected(Switch::new(
            SwitchKind::Crossbar,
            Extent::variable(),
            Extent::variable(),
        ))
    }

    /// Is a switch present at all?
    pub fn is_connected(&self) -> bool {
        matches!(self, Link::Connected(_))
    }

    /// Is the link a crossbar?
    pub fn is_crossbar(&self) -> bool {
        matches!(self, Link::Connected(s) if s.is_crossbar())
    }

    /// Is the link a direct switch?
    pub fn is_direct(&self) -> bool {
        matches!(self, Link::Connected(s) if s.kind == SwitchKind::Direct)
    }

    /// The switch, if present.
    pub fn switch(&self) -> Option<&Switch> {
        match self {
            Link::None => None,
            Link::Connected(s) => Some(s),
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Link::None => write!(f, "none"),
            Link::Connected(s) => write!(f, "{s}"),
        }
    }
}

impl FromStr for Link {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("none") || s == "-" || s.is_empty() {
            return Ok(Link::None);
        }
        Ok(Link::Connected(s.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::Count;

    #[test]
    fn switch_display_round_trips_table_iii_tokens() {
        for raw in [
            "1-1", "1-64", "64-1", "64x64", "n-n", "nxn", "5x10", "nx14", "24nx1", "vxv", "1-n",
            "nx1", "2x2", "48-48", "16x6", "22x1", "nxm",
        ] {
            // "24nx1" in the paper means (24n) x 1 — our notation for the
            // scaled extent is "24xn", so skip the one raw-paper spelling
            // that uses implicit multiplication and test the rest.
            if raw == "24nx1" {
                continue;
            }
            let sw: Switch = raw.parse().unwrap();
            assert_eq!(sw.to_string(), raw, "round trip of {raw}");
        }
    }

    #[test]
    fn scaled_extent_switch_parses() {
        // GARP's DP-DM: (24n) x 1 — written `24xnx1` in our notation.
        let sw: Switch = "24xnx1".parse().unwrap();
        assert_eq!(sw.kind, SwitchKind::Crossbar);
        assert_eq!(sw.left.count(), Count::scaled_n(24));
        assert_eq!(sw.right.count(), Count::One);
        assert_eq!(sw.to_string(), "24xnx1");
    }

    #[test]
    fn direct_switch_has_no_crossbar_flag() {
        let sw: Switch = "1-64".parse().unwrap();
        assert!(!sw.is_crossbar());
        assert_eq!(sw.crosspoints(), Some(64));
    }

    #[test]
    fn crossbar_crosspoints() {
        let sw: Switch = "5x10".parse().unwrap();
        assert!(sw.is_crossbar());
        assert_eq!(sw.crosspoints(), Some(50));
        let sym: Switch = "nxn".parse().unwrap();
        assert_eq!(sym.crosspoints(), None);
        assert_eq!(sym.crosspoints_with_n(8), Some(64));
    }

    #[test]
    fn link_parses_none() {
        assert_eq!("none".parse::<Link>().unwrap(), Link::None);
        assert_eq!("NONE".parse::<Link>().unwrap(), Link::None);
        assert!(!Link::None.is_crossbar());
    }

    #[test]
    fn link_display_round_trips() {
        for raw in ["none", "1-1", "64x64", "nxn", "vxv"] {
            let link: Link = raw.parse().unwrap();
            assert_eq!(link.to_string(), raw);
        }
    }

    #[test]
    fn switch_parse_rejects_garbage() {
        assert!("".parse::<Switch>().is_err());
        assert!("AxB".parse::<Switch>().is_err());
        assert!("1+1".parse::<Switch>().is_err());
        assert!("0x4".parse::<Switch>().is_err());
    }

    #[test]
    fn table_iii_second_symbol_parses_verbatim() {
        // RaPiD's DP-DP relation is written `nxm` (n cells, m function
        // units) — both sides are plural symbols, no substitution needed.
        let sw: Switch = "nxm".parse().unwrap();
        assert!(sw.is_crossbar());
        assert_eq!(sw.left.count(), Count::n());
        assert!(sw.right.count().is_plural());
        assert_eq!(sw.to_string(), "nxm");
    }

    #[test]
    fn crossbar_vs_direct_ordering() {
        // Crossbar is "more flexible" than direct; the taxonomy crate
        // relies on this ordering for monotonicity properties.
        assert!(SwitchKind::Direct < SwitchKind::Crossbar);
    }
}

//! Building-block granularity (the "Gran." column of Table I).
//!
//! Skillicorn's blocks are coarse: an IP or DP is an indivisible unit whose
//! role is fixed at design time.  The paper's second extension admits
//! *fine-grained* fabrics (FPGA CLBs/LUTs, gates) whose cells can assume the
//! role of IP, DP, IM or DM upon reconfiguration — which is exactly what
//! makes the count of IPs/DPs *variable* (`v`) and creates the Universal
//! Flow class (USP, class 47).

use std::fmt;
use std::str::FromStr;

use crate::error::ModelError;

/// Granularity of the basic building blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Granularity {
    /// Coarse-grained: blocks are whole IPs/DPs whose roles never change
    /// (written `IP/DP` in Table I).
    #[default]
    CoarseIpDp,
    /// Fine-grained: blocks are LUTs/gates that can be configured into
    /// either role (written `LUTs` in Table I; FPGAs).
    FineLut,
}

impl Granularity {
    /// Table I notation.
    pub fn label(&self) -> &'static str {
        match self {
            Granularity::CoarseIpDp => "IP/DP",
            Granularity::FineLut => "LUTs",
        }
    }

    /// Can a block exchange its role (IP ⇄ DP) under reconfiguration?
    pub fn roles_exchangeable(&self) -> bool {
        matches!(self, Granularity::FineLut)
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl FromStr for Granularity {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ip/dp" | "coarse" | "cgra" => Ok(Granularity::CoarseIpDp),
            "luts" | "lut" | "fine" | "gates" => Ok(Granularity::FineLut),
            other => Err(ModelError::granularity_parse(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table_i() {
        assert_eq!(Granularity::CoarseIpDp.to_string(), "IP/DP");
        assert_eq!(Granularity::FineLut.to_string(), "LUTs");
    }

    #[test]
    fn parse_accepts_synonyms() {
        assert_eq!(
            "IP/DP".parse::<Granularity>().unwrap(),
            Granularity::CoarseIpDp
        );
        assert_eq!(
            "coarse".parse::<Granularity>().unwrap(),
            Granularity::CoarseIpDp
        );
        assert_eq!("LUTs".parse::<Granularity>().unwrap(), Granularity::FineLut);
        assert_eq!("fine".parse::<Granularity>().unwrap(), Granularity::FineLut);
        assert!("medium".parse::<Granularity>().is_err());
    }

    #[test]
    fn only_fine_grain_exchanges_roles() {
        assert!(!Granularity::CoarseIpDp.roles_exchangeable());
        assert!(Granularity::FineLut.roles_exchangeable());
    }
}

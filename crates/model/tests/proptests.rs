//! Property tests for the description model: parse/print round-trips and
//! structural invariants over generated values.

use proptest::prelude::*;

use skilltax_model::{Count, Extent, Link, Switch, SwitchKind};

/// Strategy: arbitrary count tokens in the paper's notation space.
fn count_strategy() -> impl Strategy<Value = Count> {
    prop_oneof![
        Just(Count::Zero),
        Just(Count::One),
        Just(Count::n()),
        Just(Count::Variable),
        (2u32..10_000).prop_map(Count::fixed),
        (1u32..100).prop_map(Count::scaled_n),
    ]
}

fn extent_strategy() -> impl Strategy<Value = Extent> {
    prop_oneof![
        Just(Extent::one()),
        Just(Extent::n()),
        Just(Extent::variable()),
        (1u32..10_000).prop_map(Extent::fixed),
        (1u32..100).prop_map(Extent::scaled_n),
    ]
}

fn switch_strategy() -> impl Strategy<Value = Switch> {
    (
        prop_oneof![Just(SwitchKind::Direct), Just(SwitchKind::Crossbar)],
        extent_strategy(),
        extent_strategy(),
    )
        .prop_map(|(kind, left, right)| Switch::new(kind, left, right))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn count_display_parse_round_trip(count in count_strategy()) {
        let text = count.to_string();
        let parsed: Count = text.parse().unwrap();
        prop_assert_eq!(parsed, count);
    }

    #[test]
    fn switch_display_parse_round_trip(switch in switch_strategy()) {
        let text = switch.to_string();
        let parsed: Switch = text.parse().unwrap();
        prop_assert_eq!(parsed, switch);
    }

    #[test]
    fn link_display_parse_round_trip(switch in switch_strategy()) {
        for link in [Link::None, Link::Connected(switch)] {
            let text = link.to_string();
            let parsed: Link = text.parse().unwrap();
            prop_assert_eq!(parsed, link);
        }
    }

    #[test]
    fn count_rank_is_total_and_stable(a in count_strategy(), b in count_strategy()) {
        // partial_cmp is actually total on the rank.
        prop_assert!(a.partial_cmp(&b).is_some());
        if a.rank() == b.rank() {
            prop_assert_eq!(a.partial_cmp(&b), Some(std::cmp::Ordering::Equal));
        }
    }

    #[test]
    fn substitution_scales_by_coefficient(coeff in 1u32..100, n in 1u32..1000) {
        let count = Count::scaled_n(coeff);
        prop_assert_eq!(count.value_with_n(n), Some(coeff * n));
        // Substitution never changes an already-resolved count.
        let fixed = Count::fixed(coeff.max(2));
        prop_assert_eq!(fixed.value_with_n(n), fixed.value());
    }

    #[test]
    fn crosspoints_are_products(l in 1u32..1000, r in 1u32..1000) {
        let sw = Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r));
        prop_assert_eq!(sw.crosspoints(), Some(u64::from(l) * u64::from(r)));
        let sym = Switch::new(SwitchKind::Crossbar, Extent::n(), Extent::fixed(r));
        prop_assert_eq!(sym.crosspoints(), None);
        prop_assert_eq!(sym.crosspoints_with_n(l), Some(u64::from(l) * u64::from(r)));
    }

    #[test]
    fn plural_iff_rank_at_least_two(count in count_strategy()) {
        prop_assert_eq!(count.is_plural(), count.rank() >= 2);
    }
}

//! Property-style tests for the description model: parse/print round-trips
//! and structural invariants over generated values.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_model::rng::{sweep_cases, XorShift64};
use skilltax_model::{Count, Extent, Link, Switch, SwitchKind};

/// An arbitrary count token in the paper's notation space.
fn arb_count(rng: &mut XorShift64) -> Count {
    match rng.below(6) {
        0 => Count::Zero,
        1 => Count::One,
        2 => Count::n(),
        3 => Count::Variable,
        4 => Count::fixed(rng.range_u64(2, 10_000) as u32),
        _ => Count::scaled_n(rng.range_u64(1, 100) as u32),
    }
}

fn arb_extent(rng: &mut XorShift64) -> Extent {
    match rng.below(5) {
        0 => Extent::one(),
        1 => Extent::n(),
        2 => Extent::variable(),
        3 => Extent::fixed(rng.range_u64(1, 10_000) as u32),
        _ => Extent::scaled_n(rng.range_u64(1, 100) as u32),
    }
}

fn arb_switch(rng: &mut XorShift64) -> Switch {
    let kind = if rng.chance(0.5) {
        SwitchKind::Direct
    } else {
        SwitchKind::Crossbar
    };
    let left = arb_extent(rng);
    let right = arb_extent(rng);
    Switch::new(kind, left, right)
}

#[test]
fn count_display_parse_round_trip() {
    sweep_cases(0xC0D0, 256, |case, rng| {
        let count = arb_count(rng);
        let text = count.to_string();
        let parsed: Count = text.parse().unwrap();
        assert_eq!(parsed, count, "case {case}: {text}");
    });
}

#[test]
fn switch_display_parse_round_trip() {
    sweep_cases(0xC0D1, 256, |case, rng| {
        let switch = arb_switch(rng);
        let text = switch.to_string();
        let parsed: Switch = text.parse().unwrap();
        assert_eq!(parsed, switch, "case {case}: {text}");
    });
}

#[test]
fn link_display_parse_round_trip() {
    sweep_cases(0xC0D2, 256, |case, rng| {
        let switch = arb_switch(rng);
        for link in [Link::None, Link::Connected(switch)] {
            let text = link.to_string();
            let parsed: Link = text.parse().unwrap();
            assert_eq!(parsed, link, "case {case}: {text}");
        }
    });
}

#[test]
fn count_rank_is_total_and_stable() {
    sweep_cases(0xC0D3, 256, |case, rng| {
        let a = arb_count(rng);
        let b = arb_count(rng);
        // partial_cmp is actually total on the rank.
        assert!(a.partial_cmp(&b).is_some(), "case {case}");
        if a.rank() == b.rank() {
            assert_eq!(
                a.partial_cmp(&b),
                Some(std::cmp::Ordering::Equal),
                "case {case}"
            );
        }
    });
}

#[test]
fn substitution_scales_by_coefficient() {
    sweep_cases(0xC0D4, 256, |case, rng| {
        let coeff = rng.range_u64(1, 100) as u32;
        let n = rng.range_u64(1, 1000) as u32;
        let count = Count::scaled_n(coeff);
        assert_eq!(count.value_with_n(n), Some(coeff * n), "case {case}");
        // Substitution never changes an already-resolved count.
        let fixed = Count::fixed(coeff.max(2));
        assert_eq!(fixed.value_with_n(n), fixed.value(), "case {case}");
    });
}

#[test]
fn crosspoints_are_products() {
    sweep_cases(0xC0D5, 256, |case, rng| {
        let l = rng.range_u64(1, 1000) as u32;
        let r = rng.range_u64(1, 1000) as u32;
        let sw = Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r));
        assert_eq!(
            sw.crosspoints(),
            Some(u64::from(l) * u64::from(r)),
            "case {case}"
        );
        let sym = Switch::new(SwitchKind::Crossbar, Extent::n(), Extent::fixed(r));
        assert_eq!(sym.crosspoints(), None, "case {case}");
        assert_eq!(
            sym.crosspoints_with_n(l),
            Some(u64::from(l) * u64::from(r)),
            "case {case}"
        );
    });
}

#[test]
fn plural_iff_rank_at_least_two() {
    sweep_cases(0xC0D6, 256, |case, rng| {
        let count = arb_count(rng);
        assert_eq!(count.is_plural(), count.rank() >= 2, "case {case}: {count}");
    });
}

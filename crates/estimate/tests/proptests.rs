//! Property-style tests for the cost models: scaling, monotonicity and
//! dominance invariants.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_estimate::{
    clog2, estimate_area, estimate_config_bits, pareto_front, sweep_classes, switch_cost,
    CostParams, DesignPoint, TechNode,
};
use skilltax_model::rng::sweep_cases;
use skilltax_model::{Extent, Switch, SwitchKind};

#[test]
fn clog2_is_the_ceiling_of_log2() {
    sweep_cases(0xE50, 200, |case, rng| {
        let x = rng.range_u64(1, 1_000_000);
        let bits = clog2(x);
        assert!(
            1u64.checked_shl(bits).is_none_or(|v| v >= x),
            "case {case} x {x}"
        );
        if x > 1 {
            assert!(1u64 << (bits - 1) < x, "case {case} x {x}");
        }
    });
}

#[test]
fn crossbar_cost_dominates_direct_for_any_extents() {
    sweep_cases(0xE51, 200, |case, rng| {
        let l = rng.range_u64(1, 512) as u32;
        let r = rng.range_u64(1, 512) as u32;
        let params = CostParams::default();
        let direct = switch_cost(
            &Switch::new(SwitchKind::Direct, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        let xbar = switch_cost(
            &Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        assert!(xbar.area_ge > direct.area_ge, "case {case} {l}x{r}");
        assert!(
            xbar.config_bits >= direct.config_bits,
            "case {case} {l}x{r}"
        );
        assert_eq!(direct.config_bits, 0, "case {case}");
    });
}

#[test]
fn crossbar_cost_is_monotone_in_each_extent() {
    sweep_cases(0xE52, 200, |case, rng| {
        let l = rng.range_u64(1, 256) as u32;
        let r = rng.range_u64(1, 256) as u32;
        let dl = rng.range_u64(1, 32) as u32;
        let params = CostParams::default();
        let base = switch_cost(
            &Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        let wider = switch_cost(
            &Switch::new(
                SwitchKind::Crossbar,
                Extent::fixed(l + dl),
                Extent::fixed(r),
            ),
            &params,
        );
        assert!(wider.area_ge > base.area_ge, "case {case}");
        assert!(wider.config_bits >= base.config_bits, "case {case}");
        assert!(wider.crosspoints > base.crosspoints, "case {case}");
    });
}

#[test]
fn area_scales_down_on_newer_nodes() {
    sweep_cases(0xE53, 200, |case, rng| {
        let ge = rng.range_f64(1.0, 1e9);
        let mut last = f64::INFINITY;
        for node in TechNode::ALL {
            let mm2 = node.ge_to_mm2(ge);
            assert!(mm2 > 0.0, "case {case} {node}");
            assert!(mm2 < last, "case {case} {node}");
            last = mm2;
        }
    });
}

#[test]
fn estimates_never_negative_for_any_survey_entry_and_n() {
    sweep_cases(0xE54, 64, |case, rng| {
        let n = rng.range_u64(2, 256) as u32;
        let params = CostParams::default().with_n(n);
        for entry in skilltax_catalog::full_survey() {
            let area = estimate_area(&entry.spec, &params);
            assert!(area.total() > 0.0, "case {case} {}", entry.name());
            assert!(area.interconnect_fraction() >= 0.0, "case {case}");
            assert!(area.interconnect_fraction() <= 1.0, "case {case}");
            let cb = estimate_config_bits(&entry.spec, &params);
            assert!(cb.total_extended() >= cb.total(), "case {case}");
        }
    });
}

#[test]
fn pareto_front_is_stable_under_duplication() {
    sweep_cases(0xE55, 64, |case, rng| {
        // Duplicating points must not change which labels survive.
        let seed = rng.below(1000);
        let params = CostParams::default().with_n(4 + (seed % 60) as u32);
        let points = sweep_classes(&params);
        let mut doubled: Vec<DesignPoint> = points.clone();
        doubled.extend(points.clone());
        let base: Vec<String> = pareto_front(&points).into_iter().map(|p| p.label).collect();
        let dup: Vec<String> = pareto_front(&doubled)
            .into_iter()
            .map(|p| p.label)
            .collect();
        // Each base label appears (twice) in the duplicated front.
        for label in &base {
            assert!(dup.contains(label), "case {case} label {label}");
        }
        assert_eq!(dup.len(), base.len() * 2, "case {case}");
    });
}

#[test]
fn dominance_transitivity_on_the_sweep() {
    sweep_cases(0xE56, 32, |case, rng| {
        let n = rng.range_u64(2, 64) as u32;
        let points = sweep_classes(&CostParams::default().with_n(n));
        for a in &points {
            for b in &points {
                if !a.dominates(b) {
                    continue;
                }
                for c in &points {
                    if b.dominates(c) {
                        assert!(
                            a.dominates(c),
                            "case {case}: {} > {} > {}",
                            a.label,
                            b.label,
                            c.label
                        );
                    }
                }
            }
        }
    });
}

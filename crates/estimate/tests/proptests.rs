//! Property tests for the cost models: scaling, monotonicity and
//! dominance invariants.

use proptest::prelude::*;

use skilltax_estimate::{
    clog2, estimate_area, estimate_config_bits, pareto_front, sweep_classes, switch_cost,
    CostParams, DesignPoint, TechNode,
};
use skilltax_model::{Extent, Switch, SwitchKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn clog2_is_the_ceiling_of_log2(x in 1u64..1_000_000) {
        let bits = clog2(x);
        prop_assert!(1u64.checked_shl(bits).is_none_or(|v| v >= x));
        if x > 1 {
            prop_assert!(1u64 << (bits - 1) < x);
        }
    }

    #[test]
    fn crossbar_cost_dominates_direct_for_any_extents(l in 1u32..512, r in 1u32..512) {
        let params = CostParams::default();
        let direct = switch_cost(
            &Switch::new(SwitchKind::Direct, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        let xbar = switch_cost(
            &Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        prop_assert!(xbar.area_ge > direct.area_ge);
        prop_assert!(xbar.config_bits >= direct.config_bits);
        prop_assert_eq!(direct.config_bits, 0);
    }

    #[test]
    fn crossbar_cost_is_monotone_in_each_extent(l in 1u32..256, r in 1u32..256, dl in 1u32..32) {
        let params = CostParams::default();
        let base = switch_cost(
            &Switch::new(SwitchKind::Crossbar, Extent::fixed(l), Extent::fixed(r)),
            &params,
        );
        let wider = switch_cost(
            &Switch::new(SwitchKind::Crossbar, Extent::fixed(l + dl), Extent::fixed(r)),
            &params,
        );
        prop_assert!(wider.area_ge > base.area_ge);
        prop_assert!(wider.config_bits >= base.config_bits);
        prop_assert!(wider.crosspoints > base.crosspoints);
    }

    #[test]
    fn area_scales_down_on_newer_nodes(ge in 1.0f64..1e9) {
        let mut last = f64::INFINITY;
        for node in TechNode::ALL {
            let mm2 = node.ge_to_mm2(ge);
            prop_assert!(mm2 > 0.0);
            prop_assert!(mm2 < last, "{node}");
            last = mm2;
        }
    }

    #[test]
    fn estimates_never_negative_for_any_survey_entry_and_n(n in 2u32..256) {
        let params = CostParams::default().with_n(n);
        for entry in skilltax_catalog::full_survey() {
            let area = estimate_area(&entry.spec, &params);
            prop_assert!(area.total() > 0.0, "{}", entry.name());
            prop_assert!(area.interconnect_fraction() >= 0.0);
            prop_assert!(area.interconnect_fraction() <= 1.0);
            let cb = estimate_config_bits(&entry.spec, &params);
            prop_assert!(cb.total_extended() >= cb.total());
        }
    }

    #[test]
    fn pareto_front_is_stable_under_duplication(seed in 0u64..1000) {
        // Duplicating points must not change which labels survive.
        let params = CostParams::default().with_n(4 + (seed % 60) as u32);
        let points = sweep_classes(&params);
        let mut doubled: Vec<DesignPoint> = points.clone();
        doubled.extend(points.clone());
        let base: Vec<String> = pareto_front(&points).into_iter().map(|p| p.label).collect();
        let dup: Vec<String> = pareto_front(&doubled)
            .into_iter()
            .map(|p| p.label)
            .collect();
        // Each base label appears (twice) in the duplicated front.
        for label in &base {
            prop_assert!(dup.contains(label));
        }
        prop_assert_eq!(dup.len(), base.len() * 2);
    }

    #[test]
    fn dominance_transitivity_on_the_sweep(n in 2u32..64) {
        let points = sweep_classes(&CostParams::default().with_n(n));
        for a in &points {
            for b in &points {
                if !a.dominates(b) {
                    continue;
                }
                for c in &points {
                    if b.dominates(c) {
                        prop_assert!(a.dominates(c), "{} > {} > {}", a.label, b.label, c.label);
                    }
                }
            }
        }
    }
}

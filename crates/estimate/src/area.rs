//! The area model — the paper's **Eq 1**:
//!
//! ```text
//! Area = N·A_IP + N·A_IM + A_IP-IP + A_IP-IM
//!      + N·A_DP + N·A_DM + A_DP-DP + A_DP-DM          (1)
//! ```
//!
//! "In a data flow machine, the first part involving IP and IM will be
//! ignored."  For a universal-flow machine all blocks are LUT cells, so the
//! block terms collapse into a single fabric term.
//!
//! Note Eq 1 as printed carries **no IP–DP switch term**.  We evaluate the
//! faithful eight-term equation in [`AreaEstimate::total`] and additionally
//! expose the IP–DP switch cost ([`AreaEstimate::sw_ip_dp`]) with an
//! extended total for users who want it; EXPERIMENTS.md discusses the
//! discrepancy.

use skilltax_model::{ArchSpec, Count, Relation};

use crate::params::CostParams;
use crate::switch_cost::link_cost;

/// Itemised area estimate in gate equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaEstimate {
    /// Number of IPs after `n`/`v` substitution (0 for data flow).
    pub n_ips: u64,
    /// Number of DPs after substitution.
    pub n_dps: u64,
    /// `N·A_IP` term.
    pub ip_blocks: f64,
    /// `N·A_IM` term.
    pub im_blocks: f64,
    /// `N·A_DP` term.
    pub dp_blocks: f64,
    /// `N·A_DM` term.
    pub dm_blocks: f64,
    /// LUT-fabric term for universal-flow machines (replaces the four
    /// block terms).
    pub lut_fabric: f64,
    /// `A_IP-IP` switch term.
    pub sw_ip_ip: f64,
    /// `A_IP-IM` switch term.
    pub sw_ip_im: f64,
    /// `A_DP-DM` switch term.
    pub sw_dp_dm: f64,
    /// `A_DP-DP` switch term.
    pub sw_dp_dp: f64,
    /// IP–DP switch cost (not part of the paper's Eq 1; see module docs).
    pub sw_ip_dp: f64,
}

impl AreaEstimate {
    /// The faithful Eq 1 total (eight terms, no IP–DP switch).
    pub fn total(&self) -> f64 {
        self.ip_blocks
            + self.im_blocks
            + self.dp_blocks
            + self.dm_blocks
            + self.lut_fabric
            + self.sw_ip_ip
            + self.sw_ip_im
            + self.sw_dp_dm
            + self.sw_dp_dp
    }

    /// Extended total including the IP–DP switch.
    pub fn total_extended(&self) -> f64 {
        self.total() + self.sw_ip_dp
    }

    /// Sum of the four (plus extension) switch terms only.
    pub fn interconnect(&self) -> f64 {
        self.sw_ip_ip + self.sw_ip_im + self.sw_dp_dm + self.sw_dp_dp + self.sw_ip_dp
    }

    /// Fraction of the extended total spent on interconnect.
    pub fn interconnect_fraction(&self) -> f64 {
        let total = self.total_extended();
        if total == 0.0 {
            0.0
        } else {
            self.interconnect() / total
        }
    }
}

/// Resolve a block count to a concrete instance number.
pub(crate) fn resolve_count(count: Count, params: &CostParams) -> u64 {
    match count {
        Count::Zero => 0,
        Count::One => 1,
        Count::Many(m) => u64::from(
            m.substitute(params.n_default)
                .value()
                .unwrap_or(params.n_default),
        ),
        Count::Variable => u64::from(params.v_default),
    }
}

/// Evaluate Eq 1 over an architecture description.
pub fn estimate_area(spec: &ArchSpec, params: &CostParams) -> AreaEstimate {
    let n_ips = resolve_count(spec.ips, params);
    let n_dps = resolve_count(spec.dps, params);
    let conn = &spec.connectivity;

    let mut est = AreaEstimate {
        n_ips,
        n_dps,
        sw_ip_ip: link_cost(&conn.link(Relation::IpIp), params).area_ge,
        sw_ip_im: link_cost(&conn.link(Relation::IpIm), params).area_ge,
        sw_dp_dm: link_cost(&conn.link(Relation::DpDm), params).area_ge,
        sw_dp_dp: link_cost(&conn.link(Relation::DpDp), params).area_ge,
        sw_ip_dp: link_cost(&conn.link(Relation::IpDp), params).area_ge,
        ..AreaEstimate::default()
    };

    if spec.is_universal() {
        // All blocks are LUT cells; v_default cells stand in for the
        // variable IP/DP/IM/DM population.
        est.lut_fabric = f64::from(params.v_default) * params.lut.area();
    } else {
        est.ip_blocks = n_ips as f64 * params.ip.area(params.bitwidth);
        est.im_blocks = n_ips as f64 * params.im.area();
        est.dp_blocks = n_dps as f64 * params.dp.area(params.bitwidth);
        est.dm_blocks = n_dps as f64 * params.dm.area();
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    fn area_of(row: &str) -> AreaEstimate {
        let spec = parse_row("t", row).unwrap();
        estimate_area(&spec, &CostParams::default())
    }

    #[test]
    fn dataflow_machines_have_no_ip_terms() {
        let est = area_of("0 | 16 | none | none | none | 16x6 | 16x16");
        assert_eq!(est.n_ips, 0);
        assert_eq!(est.ip_blocks, 0.0);
        assert_eq!(est.im_blocks, 0.0);
        assert!(est.dp_blocks > 0.0);
        assert!(est.sw_dp_dp > 0.0);
    }

    #[test]
    fn area_grows_with_dp_count() {
        let small = area_of("1 | 8 | none | 1-8 | 1-1 | 8-1 | 8x8");
        let large = area_of("1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64");
        assert!(large.total() > small.total());
        assert!(large.n_dps == 64 && small.n_dps == 8);
    }

    #[test]
    fn crossbar_variant_costs_more_than_direct_variant() {
        // IAP-I vs IAP-III on the same counts: nxn DP-DM vs n-n.
        let direct = area_of("1 | 16 | none | 1-16 | 1-1 | 16-16 | none");
        let xbar = area_of("1 | 16 | none | 1-16 | 1-1 | 16x16 | none");
        assert!(xbar.total() > direct.total());
    }

    #[test]
    fn universal_machines_use_the_lut_fabric_term() {
        let est = area_of("v | v | vxv | vxv | vxv | vxv | vxv");
        assert!(est.lut_fabric > 0.0);
        assert_eq!(est.ip_blocks, 0.0);
        assert_eq!(est.dp_blocks, 0.0);
        assert!(est.total() > 0.0);
    }

    #[test]
    fn extended_total_adds_ip_dp_switch() {
        let est = area_of("n | n | none | nxn | n-n | n-n | none");
        assert!(est.sw_ip_dp > 0.0);
        assert!((est.total_extended() - est.total() - est.sw_ip_dp).abs() < 1e-9);
    }

    #[test]
    fn interconnect_fraction_rises_with_flexibility() {
        // IMP-I (no crossbars) vs IMP-XVI (all crossbars), same counts.
        let rigid = area_of("n | n | none | n-n | n-n | n-n | none");
        let flexible = area_of("n | n | none | nxn | nxn | nxn | nxn");
        assert!(flexible.interconnect_fraction() > rigid.interconnect_fraction());
        assert!(flexible.total() > rigid.total());
    }

    #[test]
    fn uniprocessor_area_is_the_floor() {
        let iup = area_of("1 | 1 | none | 1-1 | 1-1 | 1-1 | none");
        let imp = area_of("2 | 2 | none | 2-2 | 2-2 | 2-2 | none");
        assert!(iup.total() < imp.total());
        assert!(iup.total() > 0.0);
    }
}

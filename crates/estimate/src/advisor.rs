//! Cost-aware class recommendation: the full designer flow of the paper's
//! conclusion — take application capabilities, find the classes that
//! satisfy them (taxonomy level), and rank them by predicted
//! configuration overhead and area (Eq 1 / Eq 2).

use skilltax_taxonomy::requirements::{satisfying_classes, Capability};

use crate::params::CostParams;
use crate::pareto::DesignPoint;

/// A ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The evaluated design point (class label, flexibility, costs).
    pub point: DesignPoint,
    /// Why the class qualifies: the capabilities it was required for.
    pub satisfies: Vec<Capability>,
}

/// Recommend classes for a capability set, cheapest (by configuration
/// bits, then area) first.  Empty when no class satisfies the set.
pub fn recommend(requirements: &[Capability], params: &CostParams) -> Vec<Recommendation> {
    let mut recs: Vec<Recommendation> = satisfying_classes(requirements)
        .into_iter()
        .map(|class| {
            let spec = class.template_spec();
            let mut point = DesignPoint::evaluate(&spec, params);
            point.label = class.name().to_string();
            Recommendation {
                point,
                satisfies: requirements.to_vec(),
            }
        })
        .collect();
    recs.sort_by(|a, b| {
        a.point
            .config_bits
            .cmp(&b.point.config_bits)
            .then(a.point.area_ge.total_cmp(&b.point.area_ge))
            .then(a.point.label.cmp(&b.point.label))
    });
    recs
}

/// The single best recommendation, if any.
pub fn best(requirements: &[Capability], params: &CostParams) -> Option<Recommendation> {
    recommend(requirements, params).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendations_are_sorted_by_config_bits() {
        let recs = recommend(&[Capability::DataParallelism], &CostParams::default());
        assert!(!recs.is_empty());
        for pair in recs.windows(2) {
            assert!(
                pair[0].point.config_bits <= pair[1].point.config_bits,
                "{} after {}",
                pair[0].point.label,
                pair[1].point.label
            );
        }
    }

    #[test]
    fn mimd_with_messaging_recommends_imp_ii() {
        let recs = recommend(
            &[
                Capability::MultipleInstructionStreams,
                Capability::LaneExchange,
            ],
            &CostParams::default(),
        );
        assert_eq!(recs[0].point.label, "IMP-II");
    }

    #[test]
    fn role_exchange_forces_the_fpga_despite_its_cost() {
        let pick = best(&[Capability::RoleExchange], &CostParams::default()).unwrap();
        assert_eq!(pick.point.label, "USP");
        // And it is indeed expensive: pricier than every coarse class.
        let any_coarse = best(&[Capability::DataParallelism], &CostParams::default()).unwrap();
        assert!(pick.point.config_bits > any_coarse.point.config_bits);
    }

    #[test]
    fn dataflow_requirement_stays_in_the_dmp_family_when_cheap() {
        let recs = recommend(&[Capability::DataflowExecution], &CostParams::default());
        assert!(
            recs[0].point.label.starts_with("D"),
            "{}",
            recs[0].point.label
        );
    }

    #[test]
    fn impossible_or_empty_requirements_behave() {
        assert!(best(&[], &CostParams::default()).is_some());
        // Every capability at once: only the USP qualifies.
        let all = recommend(&Capability::ALL, &CostParams::default());
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].point.label, "USP");
    }
}

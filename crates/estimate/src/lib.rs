//! # skilltax-estimate
//!
//! Executable versions of the paper's predictive models: the **area**
//! equation (Eq 1), the **configuration-bit** equation (Eq 2),
//! parameterised component and switch cost models, technology-node
//! scaling, and Pareto-front design-space exploration.
//!
//! ```
//! use skilltax_estimate::{estimate_area, estimate_config_bits, CostParams};
//! use skilltax_model::dsl::parse_row;
//!
//! let params = CostParams::default();
//! let morphosys = parse_row("MorphoSys", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").unwrap();
//! let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
//!
//! // The paper's trade-off: the FPGA's flexibility costs far more
//! // configuration bits than the CGRA's.
//! let cb_cgra = estimate_config_bits(&morphosys, &params).total();
//! let cb_fpga = estimate_config_bits(&fpga, &params).total();
//! assert!(cb_fpga > 10 * cb_cgra);
//!
//! // And the area model itemises every Eq 1 term.
//! let area = estimate_area(&morphosys, &params);
//! assert!(area.dp_blocks > 0.0 && area.sw_dp_dp > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod area;
pub mod components;
pub mod config_bits;
pub mod params;
pub mod pareto;
pub mod scaling;
pub mod switch_cost;

pub use advisor::{best, recommend, Recommendation};
pub use area::{estimate_area, AreaEstimate};
pub use components::{BlockParams, LutParams, MemoryParams};
pub use config_bits::{estimate_config_bits, ConfigBitsEstimate};
pub use params::CostParams;
pub use pareto::{cheapest_with_flexibility, pareto_front, sweep_classes, DesignPoint};
pub use scaling::TechNode;
pub use switch_cost::{clog2, link_cost, switch_cost, SwitchCost};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::area::{estimate_area, AreaEstimate};
    pub use crate::config_bits::{estimate_config_bits, ConfigBitsEstimate};
    pub use crate::params::CostParams;
    pub use crate::pareto::{pareto_front, sweep_classes, DesignPoint};
    pub use crate::scaling::TechNode;
}

//! Technology-node scaling: convert gate equivalents to silicon area.
//!
//! The taxonomy's area prediction is technology independent (gate
//! equivalents); a designer comparing candidate classes for a concrete chip
//! wants mm².  One NAND2 gate-equivalent occupies roughly
//! `k · (node/1000)²` mm² with `k ≈ 1.0e-3` per (µm)² of feature pitch —
//! we use the conventional published GE densities per node instead of the
//! raw quadratic to stay within a factor of ~2 of foundry data.

use std::fmt;

/// A process technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 180 nm (era of PADDI-2, Pleiades).
    N180,
    /// 130 nm (MorphoSys-class CGRAs).
    N130,
    /// 90 nm.
    N90,
    /// 65 nm (Cortex-A9 era).
    N65,
    /// 45 nm (Core2-successor era).
    N45,
    /// 32 nm.
    N32,
}

impl TechNode {
    /// All nodes, newest last.
    pub const ALL: [TechNode; 6] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
    ];

    /// Feature size in nanometres.
    pub fn nanometres(&self) -> u32 {
        match self {
            TechNode::N180 => 180,
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N65 => 65,
            TechNode::N45 => 45,
            TechNode::N32 => 32,
        }
    }

    /// Gate density in kGE per mm² (order-of-magnitude foundry figures).
    pub fn kge_per_mm2(&self) -> f64 {
        match self {
            TechNode::N180 => 100.0,
            TechNode::N130 => 200.0,
            TechNode::N90 => 420.0,
            TechNode::N65 => 800.0,
            TechNode::N45 => 1_600.0,
            TechNode::N32 => 3_100.0,
        }
    }

    /// Convert a gate-equivalent count to mm² at this node.
    pub fn ge_to_mm2(&self, ge: f64) -> f64 {
        ge / (self.kge_per_mm2() * 1_000.0)
    }

    /// Scaling factor from this node to another (`area_other / area_self`).
    pub fn scale_to(&self, other: TechNode) -> f64 {
        self.kge_per_mm2() / other.kge_per_mm2()
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.nanometres())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_increases_with_newer_nodes() {
        let mut last = 0.0;
        for node in TechNode::ALL {
            assert!(node.kge_per_mm2() > last, "{node}");
            last = node.kge_per_mm2();
        }
    }

    #[test]
    fn ge_to_mm2_inverse_of_density() {
        let node = TechNode::N65;
        let mm2 = node.ge_to_mm2(800_000.0);
        assert!(
            (mm2 - 1.0).abs() < 1e-9,
            "800 kGE at 65nm should be ~1 mm², got {mm2}"
        );
    }

    #[test]
    fn scaling_factor_roundtrips() {
        let f = TechNode::N180.scale_to(TechNode::N45);
        let g = TechNode::N45.scale_to(TechNode::N180);
        assert!((f * g - 1.0).abs() < 1e-12);
        assert!(f < 1.0, "newer node shrinks area");
    }

    #[test]
    fn display_prints_nanometres() {
        assert_eq!(TechNode::N90.to_string(), "90 nm");
    }
}

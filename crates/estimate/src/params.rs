//! Cost-model parameters.
//!
//! The paper's Eq 1 / Eq 2 are symbolic: "the CBs required to configure the
//! individual components are calculated individually … and change
//! accordingly".  To make the equations executable we parameterise each
//! component with a gate-equivalent area model and a configuration-word
//! model.  The defaults below are order-of-magnitude figures for a 32-bit
//! coarse-grained fabric, chosen so the paper's *ordering* claims hold
//! (crossbars dominate, area grows with flexibility); absolute numbers are
//! not the point and are not claimed.

use crate::components::{BlockParams, LutParams, MemoryParams};

/// All parameters needed to evaluate Eq 1 and Eq 2 over an architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Instruction-processor model (sequencer / program counter / decoder).
    pub ip: BlockParams,
    /// Data-processor model (ALU + local registers).
    pub dp: BlockParams,
    /// Instruction-memory model.
    pub im: MemoryParams,
    /// Data-memory model.
    pub dm: MemoryParams,
    /// Fine-grained (LUT) cell model, used for universal-flow machines.
    pub lut: LutParams,
    /// Value substituted for a symbolic `n` count.
    pub n_default: u32,
    /// Equivalent LUT-cell count substituted for a variable (`v`) fabric.
    pub v_default: u32,
    /// Datapath bitwidth (affects switch wire widths).
    pub bitwidth: u32,
    /// Crossbar crosspoint area in gate equivalents (per routed bit).
    pub crosspoint_ge: f64,
    /// Direct-wire area in gate equivalents (per routed bit per link).
    pub wire_ge: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            ip: BlockParams {
                base_ge: 2_000.0,
                per_bit_ge: 60.0,
                opcode_bits: 8,
                config_bits: 32,
            },
            dp: BlockParams {
                base_ge: 1_200.0,
                per_bit_ge: 220.0,
                opcode_bits: 5,
                config_bits: 24,
            },
            im: MemoryParams {
                words: 1_024,
                word_bits: 32,
                ge_per_bit: 0.25,
                config_bits: 8,
            },
            dm: MemoryParams {
                words: 2_048,
                word_bits: 32,
                ge_per_bit: 0.25,
                config_bits: 8,
            },
            lut: LutParams {
                inputs: 4,
                ge_per_cell: 120.0,
                routing_bits_per_cell: 48,
            },
            n_default: 16,
            v_default: 4_096,
            bitwidth: 32,
            crosspoint_ge: 1.5,
            wire_ge: 0.05,
        }
    }
}

impl CostParams {
    /// Parameters for a small 8-bit embedded fabric.
    pub fn small_embedded() -> Self {
        CostParams {
            ip: BlockParams {
                base_ge: 800.0,
                per_bit_ge: 40.0,
                opcode_bits: 6,
                config_bits: 16,
            },
            dp: BlockParams {
                base_ge: 400.0,
                per_bit_ge: 120.0,
                opcode_bits: 4,
                config_bits: 12,
            },
            im: MemoryParams {
                words: 256,
                word_bits: 16,
                ge_per_bit: 0.25,
                config_bits: 4,
            },
            dm: MemoryParams {
                words: 512,
                word_bits: 8,
                ge_per_bit: 0.25,
                config_bits: 4,
            },
            lut: LutParams {
                inputs: 3,
                ge_per_cell: 60.0,
                routing_bits_per_cell: 24,
            },
            n_default: 8,
            v_default: 1_024,
            bitwidth: 8,
            crosspoint_ge: 1.0,
            wire_ge: 0.05,
        }
    }

    /// Parameters for a large 64-bit HPC-style fabric.
    pub fn large_hpc() -> Self {
        CostParams {
            ip: BlockParams {
                base_ge: 8_000.0,
                per_bit_ge: 120.0,
                opcode_bits: 10,
                config_bits: 64,
            },
            dp: BlockParams {
                base_ge: 4_000.0,
                per_bit_ge: 500.0,
                opcode_bits: 7,
                config_bits: 48,
            },
            im: MemoryParams {
                words: 8_192,
                word_bits: 64,
                ge_per_bit: 0.25,
                config_bits: 16,
            },
            dm: MemoryParams {
                words: 16_384,
                word_bits: 64,
                ge_per_bit: 0.25,
                config_bits: 16,
            },
            lut: LutParams {
                inputs: 6,
                ge_per_cell: 300.0,
                routing_bits_per_cell: 96,
            },
            n_default: 64,
            v_default: 65_536,
            bitwidth: 64,
            crosspoint_ge: 2.0,
            wire_ge: 0.05,
        }
    }

    /// Same parameters with a different `n` substitution.
    pub fn with_n(mut self, n: u32) -> Self {
        self.n_default = n.max(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = CostParams::default();
        assert!(p.ip.base_ge > 0.0);
        assert!(p.crosspoint_ge > p.wire_ge);
        assert!(p.n_default >= 2);
    }

    #[test]
    fn presets_scale_in_the_expected_direction() {
        let small = CostParams::small_embedded();
        let def = CostParams::default();
        let large = CostParams::large_hpc();
        assert!(small.dp.base_ge < def.dp.base_ge);
        assert!(def.dp.base_ge < large.dp.base_ge);
        assert!(small.bitwidth < def.bitwidth);
        assert!(def.bitwidth < large.bitwidth);
    }

    #[test]
    fn with_n_clamps_to_plural() {
        let p = CostParams::default().with_n(1);
        assert_eq!(p.n_default, 2);
        let p = CostParams::default().with_n(128);
        assert_eq!(p.n_default, 128);
    }
}

//! The configuration-overhead model — the paper's **Eq 2**:
//!
//! ```text
//! CB = N·CW_IP + N·CW_IM + CW_IP-IP + CW_IP-IM
//!    + N·CW_DP + N·CW_DM + CW_DP-DP + CW_DP-DM        (2)
//! ```
//!
//! `CW_c` is the configuration-word width of component `c`; switch words
//! depend on the switch type ("a full cross bar switch will require more
//! bits than a limited crossbar"), and direct switches need none.
//!
//! Like Eq 1, the printed equation has no IP–DP term; we expose it
//! separately ([`ConfigBitsEstimate::sw_ip_dp`]).

use skilltax_model::{ArchSpec, Relation};

use crate::area::resolve_count;
use crate::params::CostParams;
use crate::switch_cost::link_cost;

/// Itemised configuration-bit estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigBitsEstimate {
    /// Number of IPs after substitution.
    pub n_ips: u64,
    /// Number of DPs after substitution.
    pub n_dps: u64,
    /// `N·CW_IP`.
    pub ip_blocks: u64,
    /// `N·CW_IM`.
    pub im_blocks: u64,
    /// `N·CW_DP`.
    pub dp_blocks: u64,
    /// `N·CW_DM`.
    pub dm_blocks: u64,
    /// LUT-fabric configuration (truth tables + routing) for universal
    /// machines.
    pub lut_fabric: u64,
    /// `CW_IP-IP`.
    pub sw_ip_ip: u64,
    /// `CW_IP-IM`.
    pub sw_ip_im: u64,
    /// `CW_DP-DM`.
    pub sw_dp_dm: u64,
    /// `CW_DP-DP`.
    pub sw_dp_dp: u64,
    /// IP–DP switch word (extension; not in the printed Eq 2).
    pub sw_ip_dp: u64,
}

impl ConfigBitsEstimate {
    /// The faithful Eq 2 total.
    pub fn total(&self) -> u64 {
        self.ip_blocks
            + self.im_blocks
            + self.dp_blocks
            + self.dm_blocks
            + self.lut_fabric
            + self.sw_ip_ip
            + self.sw_ip_im
            + self.sw_dp_dm
            + self.sw_dp_dp
    }

    /// Extended total including the IP–DP switch word.
    pub fn total_extended(&self) -> u64 {
        self.total() + self.sw_ip_dp
    }

    /// Switch (interconnect) bits only.
    pub fn interconnect(&self) -> u64 {
        self.sw_ip_ip + self.sw_ip_im + self.sw_dp_dm + self.sw_dp_dp + self.sw_ip_dp
    }
}

/// Evaluate Eq 2 over an architecture description.
pub fn estimate_config_bits(spec: &ArchSpec, params: &CostParams) -> ConfigBitsEstimate {
    let n_ips = resolve_count(spec.ips, params);
    let n_dps = resolve_count(spec.dps, params);
    let conn = &spec.connectivity;

    let mut est = ConfigBitsEstimate {
        n_ips,
        n_dps,
        sw_ip_ip: link_cost(&conn.link(Relation::IpIp), params).config_bits,
        sw_ip_im: link_cost(&conn.link(Relation::IpIm), params).config_bits,
        sw_dp_dm: link_cost(&conn.link(Relation::DpDm), params).config_bits,
        sw_dp_dp: link_cost(&conn.link(Relation::DpDp), params).config_bits,
        sw_ip_dp: link_cost(&conn.link(Relation::IpDp), params).config_bits,
        ..ConfigBitsEstimate::default()
    };

    if spec.is_universal() {
        est.lut_fabric = u64::from(params.v_default) * params.lut.config_word();
    } else {
        est.ip_blocks = n_ips * params.ip.config_word();
        est.im_blocks = n_ips * params.im.config_word();
        est.dp_blocks = n_dps * params.dp.config_word();
        est.dm_blocks = n_dps * params.dm.config_word();
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    fn cb_of(row: &str) -> ConfigBitsEstimate {
        let spec = parse_row("t", row).unwrap();
        estimate_config_bits(&spec, &CostParams::default())
    }

    #[test]
    fn rigid_machine_has_no_switch_bits() {
        // IMP-I: everything direct.
        let est = cb_of("4 | 4 | none | 4-4 | 4-4 | 4-4 | none");
        assert_eq!(est.interconnect(), 0);
        assert!(est.total() > 0); // blocks still carry configuration words
    }

    #[test]
    fn crossbars_add_configuration_overhead() {
        let rigid = cb_of("n | n | none | n-n | n-n | n-n | none");
        let flex = cb_of("n | n | none | n-n | n-n | n-n | nxn");
        assert!(flex.total() > rigid.total());
        assert_eq!(flex.total() - rigid.total(), flex.sw_dp_dp);
    }

    #[test]
    fn fpga_configuration_dwarfs_cgra() {
        // The paper's central trade-off: "FPGA is most flexible at the cost
        // of enormous reconfiguration overhead."
        let fpga = cb_of("v | v | vxv | vxv | vxv | vxv | vxv");
        let cgra = cb_of("1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64");
        assert!(
            fpga.total() > 50 * cgra.total(),
            "fpga={} cgra={}",
            fpga.total(),
            cgra.total()
        );
    }

    #[test]
    fn config_bits_monotone_in_crossbar_count() {
        // IMP-I .. IMP-XVI on the same counts: each added crossbar adds bits.
        let rows = [
            "n | n | none | n-n | n-n | n-n | none",
            "n | n | none | n-n | n-n | n-n | nxn",
            "n | n | none | n-n | n-n | nxn | nxn",
            "n | n | none | n-n | nxn | nxn | nxn",
            "n | n | none | nxn | nxn | nxn | nxn",
        ];
        let mut last = 0;
        for row in rows {
            // Use extended total so the IP-DP upgrade in the last row counts.
            let total = cb_of(row).total_extended();
            assert!(total > last, "{row}: {total} <= {last}");
            last = total;
        }
    }

    #[test]
    fn uniprocessor_has_minimal_but_nonzero_words() {
        let est = cb_of("1 | 1 | none | 1-1 | 1-1 | 1-1 | none");
        let p = CostParams::default();
        assert_eq!(
            est.total(),
            p.ip.config_word() + p.im.config_word() + p.dp.config_word() + p.dm.config_word()
        );
    }
}

//! Component-level cost models: IPs, DPs, memories and LUT cells.
//!
//! Areas are expressed in **gate equivalents** (GE, the area of one NAND2),
//! the conventional technology-independent unit; `scaling` converts GE to
//! silicon area for a given node.  Configuration costs are expressed in
//! bits of the component's configuration word (`CW` in the paper's Eq 2).

/// Area / configuration model of a logic block (IP or DP).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockParams {
    /// Fixed overhead (control FSM, decode) in gate equivalents.
    pub base_ge: f64,
    /// Datapath cost per bit of width in gate equivalents.
    pub per_bit_ge: f64,
    /// Opcode width: affects decoder size.
    pub opcode_bits: u32,
    /// Configuration-word width of one block instance.
    pub config_bits: u64,
}

impl BlockParams {
    /// Area of one block instance at the given datapath width.
    pub fn area(&self, bitwidth: u32) -> f64 {
        // Decoder grows with 2^opcode entries but only logarithmically in
        // area thanks to shared minterms; model as opcode_bits * 16 GE.
        self.base_ge + self.per_bit_ge * f64::from(bitwidth) + f64::from(self.opcode_bits) * 16.0
    }

    /// Configuration word of one block instance.
    pub fn config_word(&self) -> u64 {
        self.config_bits
    }
}

/// Area / configuration model of a memory block (IM or DM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryParams {
    /// Number of words.
    pub words: u64,
    /// Bits per word.
    pub word_bits: u32,
    /// SRAM cell + periphery cost per bit, in gate equivalents.
    pub ge_per_bit: f64,
    /// Configuration word (address-map / bank-mode selection).
    pub config_bits: u64,
}

impl MemoryParams {
    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.words * u64::from(self.word_bits)
    }

    /// Area of one memory instance.
    pub fn area(&self) -> f64 {
        // Periphery (decoders, sense amps) scales with sqrt(capacity).
        let bits = self.capacity_bits() as f64;
        bits * self.ge_per_bit + bits.sqrt() * 4.0
    }

    /// Configuration word of one memory instance.
    pub fn config_word(&self) -> u64 {
        self.config_bits
    }
}

/// Area / configuration model of a fine-grained LUT cell (universal flow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutParams {
    /// LUT input count `k` (a k-LUT stores 2^k truth-table bits).
    pub inputs: u32,
    /// Cell area (LUT + FF + local mux) in gate equivalents.
    pub ge_per_cell: f64,
    /// Routing configuration bits per cell (connection-box / switch-box
    /// programming) — this is what makes FPGAs' configuration overhead
    /// "enormous" in the paper's words.
    pub routing_bits_per_cell: u64,
}

impl LutParams {
    /// Truth-table bits of one cell.
    pub fn table_bits(&self) -> u64 {
        1u64 << self.inputs
    }

    /// Area of one cell.
    pub fn area(&self) -> f64 {
        self.ge_per_cell
    }

    /// Configuration word of one cell (truth table + routing).
    pub fn config_word(&self) -> u64 {
        self.table_bits() + self.routing_bits_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_area_grows_with_bitwidth() {
        let b = BlockParams {
            base_ge: 100.0,
            per_bit_ge: 10.0,
            opcode_bits: 4,
            config_bits: 8,
        };
        assert!(b.area(32) > b.area(8));
        assert!((b.area(8) - (100.0 + 80.0 + 64.0)).abs() < 1e-9);
    }

    #[test]
    fn memory_area_dominated_by_capacity() {
        let small = MemoryParams {
            words: 256,
            word_bits: 8,
            ge_per_bit: 0.25,
            config_bits: 0,
        };
        let big = MemoryParams {
            words: 4096,
            word_bits: 32,
            ge_per_bit: 0.25,
            config_bits: 0,
        };
        assert!(big.area() > 16.0 * small.area() * 0.9);
        assert_eq!(big.capacity_bits(), 4096 * 32);
    }

    #[test]
    fn lut_config_word_is_table_plus_routing() {
        let l = LutParams {
            inputs: 4,
            ge_per_cell: 120.0,
            routing_bits_per_cell: 48,
        };
        assert_eq!(l.table_bits(), 16);
        assert_eq!(l.config_word(), 64);
    }
}

//! Design-space exploration: flexibility vs cost Pareto fronts.
//!
//! The paper's stated use of the taxonomy for designers: "a designer can
//! decide which computer class offers the required flexibility with minimum
//! configuration overhead".  This module sweeps candidate classes,
//! evaluates Eq 1 / Eq 2 over each, and extracts the Pareto-optimal set
//! (maximise flexibility, minimise area and configuration bits).

use skilltax_model::ArchSpec;
use skilltax_taxonomy::{flexibility_of_spec, Taxonomy};

use crate::area::estimate_area;
use crate::config_bits::estimate_config_bits;
use crate::params::CostParams;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Label (class name or architecture name).
    pub label: String,
    /// Flexibility value (higher is better).
    pub flexibility: u32,
    /// Eq 1 area in gate equivalents (lower is better).
    pub area_ge: f64,
    /// Eq 2 configuration bits (lower is better).
    pub config_bits: u64,
}

impl DesignPoint {
    /// Evaluate a spec into a design point.
    pub fn evaluate(spec: &ArchSpec, params: &CostParams) -> DesignPoint {
        DesignPoint {
            label: spec.name.clone(),
            flexibility: flexibility_of_spec(spec),
            area_ge: estimate_area(spec, params).total(),
            config_bits: estimate_config_bits(spec, params).total(),
        }
    }

    /// Does `self` dominate `other` (at least as good everywhere, strictly
    /// better somewhere)?
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let ge = self.flexibility >= other.flexibility
            && self.area_ge <= other.area_ge
            && self.config_bits <= other.config_bits;
        let gt = self.flexibility > other.flexibility
            || self.area_ge < other.area_ge
            || self.config_bits < other.config_bits;
        ge && gt
    }
}

/// Evaluate every implementable Table I class at the given parameters.
pub fn sweep_classes(params: &CostParams) -> Vec<DesignPoint> {
    Taxonomy::extended()
        .implementable()
        .map(|class| {
            let spec = class.template_spec();
            let mut point = DesignPoint::evaluate(&spec, params);
            point.label = class.name().to_string();
            point
        })
        .collect()
}

/// Extract the Pareto-optimal subset (order preserved).
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect()
}

/// The cheapest (by configuration bits) design point reaching at least the
/// requested flexibility — the paper's designer query.
pub fn cheapest_with_flexibility(
    points: &[DesignPoint],
    min_flexibility: u32,
) -> Option<DesignPoint> {
    points
        .iter()
        .filter(|p| p.flexibility >= min_flexibility)
        .min_by(|a, b| {
            a.config_bits
                .cmp(&b.config_bits)
                .then(a.area_ge.total_cmp(&b.area_ge))
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn sweep_covers_all_named_classes() {
        let points = sweep_classes(&params());
        assert_eq!(points.len(), 43);
        assert!(points.iter().any(|p| p.label == "USP"));
        assert!(points.iter().any(|p| p.label == "IMP-XVI"));
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let points = sweep_classes(&params());
        for a in &points {
            assert!(!a.dominates(a), "{} dominates itself", a.label);
        }
        for a in &points {
            for b in &points {
                if a.dominates(b) {
                    assert!(!b.dominates(a), "{} <-> {}", a.label, b.label);
                }
            }
        }
    }

    #[test]
    fn pareto_front_is_nonempty_and_undominated() {
        let points = sweep_classes(&params());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for p in &front {
            assert!(!points.iter().any(|q| q.dominates(p)), "{}", p.label);
        }
        // The cheapest class (IUP or DUP) and nothing dominated survive.
        assert!(front.iter().any(|p| p.label == "DUP" || p.label == "IUP"));
    }

    #[test]
    fn usp_is_on_the_front_for_flexibility() {
        // Nothing can dominate USP because nothing matches its flexibility.
        let points = sweep_classes(&params());
        let front = pareto_front(&points);
        assert!(front.iter().any(|p| p.label == "USP"));
    }

    #[test]
    fn designer_query_finds_cheapest_class() {
        let points = sweep_classes(&params());
        let pick = cheapest_with_flexibility(&points, 3).unwrap();
        assert!(pick.flexibility >= 3);
        for p in points.iter().filter(|p| p.flexibility >= 3) {
            assert!(
                pick.config_bits <= p.config_bits,
                "{} beat {}",
                p.label,
                pick.label
            );
        }
        // Impossible requirement yields None.
        assert!(cheapest_with_flexibility(&points, 99).is_none());
    }

    #[test]
    fn within_family_cost_monotone_in_subtype_bits() {
        // IMP-I..XVI at identical counts: config bits are monotone in the
        // number of crossbars (Table II flexibility).
        let points: Vec<DesignPoint> = (0u8..16)
            .map(|code| {
                let ip_dp = if code & 0b1000 != 0 { "nxn" } else { "n-n" };
                let ip_im = if code & 0b0100 != 0 { "nxn" } else { "n-n" };
                let dp_dm = if code & 0b0010 != 0 { "nxn" } else { "n-n" };
                let dp_dp = if code & 0b0001 != 0 { "nxn" } else { "none" };
                let row = format!("n | n | none | {ip_dp} | {ip_im} | {dp_dm} | {dp_dp}");
                DesignPoint::evaluate(
                    &parse_row(&format!("IMP-{}", code + 1), &row).unwrap(),
                    &params(),
                )
            })
            .collect();
        for a in &points {
            for b in &points {
                if a.flexibility > b.flexibility {
                    // Note: equality of flexibility can still differ in cost
                    // (different relations have different extents), but more
                    // crossbars on the same counts never cost less in CB
                    // when comparing a superset pattern — verified pairwise
                    // through the dominance relation instead:
                    assert!(
                        !(a.area_ge < b.area_ge && a.config_bits < b.config_bits) || a.dominates(b),
                        "inconsistent dominance {} vs {}",
                        a.label,
                        b.label
                    );
                }
            }
        }
        // Strict chain: IMP-I < IMP-II < IMP-IV < IMP-VIII in CB.
        let chain = [0usize, 1, 3, 7];
        for w in chain.windows(2) {
            assert!(
                points[w[0]].config_bits < points[w[1]].config_bits,
                "{} !< {}",
                points[w[0]].label,
                points[w[1]].label
            );
        }
        // IMP-XVI only adds the IP-DP crossbar over IMP-VIII, and the
        // paper's printed Eq 2 carries no IP-DP term, so the faithful
        // totals tie; the extended estimator separates them.
        assert_eq!(points[15].config_bits, points[7].config_bits);
        let est8 = estimate_config_bits(
            &parse_row("IMP-VIII", "n | n | none | n-n | nxn | nxn | nxn").unwrap(),
            &params(),
        );
        let est16 = estimate_config_bits(
            &parse_row("IMP-XVI", "n | n | none | nxn | nxn | nxn | nxn").unwrap(),
            &params(),
        );
        assert!(est16.total_extended() > est8.total_extended());
    }
}

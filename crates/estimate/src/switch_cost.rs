//! Switch cost models: the area and configuration-bit contribution of each
//! connectivity relation.
//!
//! The paper's discussion (Section III-C/D) pins two ordering facts that
//! these models must preserve:
//!
//! * "the switch of type 'x' takes more area than a switch of type '-'",
//!   and
//! * "a full cross bar switch will require more bits than a limited
//!   crossbar"; a direct switch requires none at all.
//!
//! A direct switch of `L` sources and `R` sinks is `max(L, R)` fixed wires
//! (zero configuration).  A crossbar is modelled as one output multiplexer
//! per sink over all `L` sources: `L·R` crosspoints of area, and
//! `R · ceil(log2(L+1))` configuration bits (the `+1` encodes
//! "disconnected").  A *limited* crossbar with window `w` sees only `w`
//! sources per sink.

use skilltax_model::{Link, Switch, SwitchKind};

use crate::params::CostParams;

/// Cost of one relation's switch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchCost {
    /// Area in gate equivalents.
    pub area_ge: f64,
    /// Configuration bits.
    pub config_bits: u64,
    /// Number of crosspoints (0 for direct links).
    pub crosspoints: u64,
    /// Number of physical wires.
    pub wires: u64,
}

/// Ceil of log2(x), with `clog2(0) = 0` and `clog2(1) = 0`.
pub fn clog2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Resolve a switch endpoint to a concrete multiplicity using the
/// parameters' `n` / `v` substitutions.
fn resolve(extent: skilltax_model::Extent, params: &CostParams) -> u64 {
    use skilltax_model::Count;
    match extent.count() {
        Count::Zero => 0,
        Count::One => 1,
        Count::Many(m) => u64::from(
            m.substitute(params.n_default)
                .value()
                .unwrap_or(params.n_default),
        ),
        Count::Variable => u64::from(params.v_default),
    }
}

/// Cost of a concrete switch.
pub fn switch_cost(switch: &Switch, params: &CostParams) -> SwitchCost {
    let l = resolve(switch.left, params);
    let r = resolve(switch.right, params);
    let bits = f64::from(params.bitwidth);
    match switch.kind {
        SwitchKind::Direct => {
            let wires = l.max(r);
            SwitchCost {
                area_ge: wires as f64 * bits * params.wire_ge,
                config_bits: 0,
                crosspoints: 0,
                wires,
            }
        }
        SwitchKind::Crossbar => {
            // Window = number of sources each sink can select from.  A
            // "full" crossbar written `axb` has window `a` (every sink sees
            // every source); the *limited* shapes of Table III (`nx14`,
            // `5x10`, `16x6`) are already expressed by their extents, so the
            // same formula covers both.
            let crosspoints = l * r;
            let sel_bits = u64::from(clog2(l + 1));
            SwitchCost {
                area_ge: crosspoints as f64 * bits * params.crosspoint_ge
                    + (l + r) as f64 * bits * params.wire_ge,
                config_bits: r * sel_bits,
                crosspoints,
                wires: l + r,
            }
        }
    }
}

/// Cost of a link (`none` links cost nothing).
pub fn link_cost(link: &Link, params: &CostParams) -> SwitchCost {
    match link.switch() {
        None => SwitchCost::default(),
        Some(sw) => switch_cost(sw, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn params() -> CostParams {
        CostParams::default()
    }

    fn sw(s: &str) -> Switch {
        Switch::from_str(s).unwrap()
    }

    #[test]
    fn clog2_is_ceil_log2() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(64), 6);
        assert_eq!(clog2(65), 7);
    }

    #[test]
    fn direct_switch_has_zero_config_bits() {
        let c = switch_cost(&sw("64-1"), &params());
        assert_eq!(c.config_bits, 0);
        assert_eq!(c.crosspoints, 0);
        assert_eq!(c.wires, 64);
        assert!(c.area_ge > 0.0);
    }

    #[test]
    fn crossbar_costs_more_than_direct_same_extents() {
        // The paper's ordering claim: 'x' takes more area than '-'.
        let p = params();
        let direct = switch_cost(&sw("64-64"), &p);
        let xbar = switch_cost(&sw("64x64"), &p);
        assert!(xbar.area_ge > direct.area_ge);
        assert!(xbar.config_bits > direct.config_bits);
    }

    #[test]
    fn full_crossbar_needs_more_bits_than_limited() {
        // Section III-D: full crossbar > limited crossbar in CBs.
        let p = params();
        let full = switch_cost(&sw("64x64"), &p);
        let limited = switch_cost(&sw("14x64"), &p); // 14-wide window per sink
        assert!(full.config_bits > limited.config_bits);
        assert!(full.area_ge > limited.area_ge);
    }

    #[test]
    fn crossbar_area_quadratic_in_ports() {
        let p = params();
        let small = switch_cost(&sw("8x8"), &p);
        let big = switch_cost(&sw("16x16"), &p);
        // crosspoint term quadruples; wire term only doubles.
        assert!(big.crosspoints == 4 * small.crosspoints);
        assert!(big.area_ge / small.area_ge > 3.0);
    }

    #[test]
    fn symbolic_extents_use_n_default() {
        let p = params().with_n(8);
        let c = switch_cost(&sw("nxn"), &p);
        assert_eq!(c.crosspoints, 64);
        assert_eq!(c.config_bits, 8 * u64::from(clog2(9)));
    }

    #[test]
    fn variable_extents_use_v_default() {
        let mut p = params();
        p.v_default = 1024;
        let c = switch_cost(&sw("vxv"), &p);
        assert_eq!(c.crosspoints, 1024 * 1024);
    }

    #[test]
    fn none_link_is_free() {
        let c = link_cost(&Link::None, &params());
        assert_eq!(c.area_ge, 0.0);
        assert_eq!(c.config_bits, 0);
    }

    #[test]
    fn config_bits_formula_matches_mux_model() {
        let p = params();
        let c = switch_cost(&sw("5x10"), &p); // Montium: 5 DPs x 10 DMs
                                              // 10 sinks, each selecting one of 5 sources (+none) => 3 bits each.
        assert_eq!(c.config_bits, 10 * 3);
        assert_eq!(c.crosspoints, 50);
    }
}

//! Graphviz DOT emission for tree and order structures (the Fig 2
//! hierarchy and the morphing lattice render well under `dot -Tsvg`).

/// A node in a DOT digraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotNode {
    /// Stable identifier (must be unique within the graph).
    pub id: String,
    /// Display label.
    pub label: String,
    /// Optional fill colour (X11 name or `#rrggbb`).
    pub fill: Option<String>,
}

/// A directed edge between node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotEdge {
    /// Source node id.
    pub from: String,
    /// Destination node id.
    pub to: String,
    /// Optional edge label.
    pub label: Option<String>,
}

/// A DOT digraph under construction.
#[derive(Debug, Clone, Default)]
pub struct DotGraph {
    name: String,
    nodes: Vec<DotNode>,
    edges: Vec<DotEdge>,
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

impl DotGraph {
    /// An empty digraph with the given name.
    pub fn new(name: impl Into<String>) -> DotGraph {
        DotGraph {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a node (id must be unique; enforced at emission).
    pub fn node(&mut self, id: impl Into<String>, label: impl Into<String>) -> &mut Self {
        self.nodes.push(DotNode {
            id: id.into(),
            label: label.into(),
            fill: None,
        });
        self
    }

    /// Add a filled node.
    pub fn filled_node(
        &mut self,
        id: impl Into<String>,
        label: impl Into<String>,
        fill: impl Into<String>,
    ) -> &mut Self {
        self.nodes.push(DotNode {
            id: id.into(),
            label: label.into(),
            fill: Some(fill.into()),
        });
        self
    }

    /// Add an edge.
    pub fn edge(&mut self, from: impl Into<String>, to: impl Into<String>) -> &mut Self {
        self.edges.push(DotEdge {
            from: from.into(),
            to: to.into(),
            label: None,
        });
        self
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Emit the DOT source.
    ///
    /// # Panics
    /// Panics if node ids are not unique or an edge references a missing
    /// node — these are construction bugs, not runtime conditions.
    pub fn emit(&self) -> String {
        let mut seen = std::collections::BTreeSet::new();
        for n in &self.nodes {
            assert!(seen.insert(&n.id), "duplicate DOT node id {:?}", n.id);
        }
        for e in &self.edges {
            assert!(
                seen.contains(&e.from),
                "edge from unknown node {:?}",
                e.from
            );
            assert!(seen.contains(&e.to), "edge to unknown node {:?}", e.to);
        }
        let mut out = format!("digraph {} {{\n", quote(&self.name));
        out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"sans-serif\"];\n");
        for n in &self.nodes {
            match &n.fill {
                Some(fill) => out.push_str(&format!(
                    "  {} [label={}, style=filled, fillcolor={}];\n",
                    quote(&n.id),
                    quote(&n.label),
                    quote(fill)
                )),
                None => out.push_str(&format!(
                    "  {} [label={}];\n",
                    quote(&n.id),
                    quote(&n.label)
                )),
            }
        }
        for e in &self.edges {
            match &e.label {
                Some(l) => out.push_str(&format!(
                    "  {} -> {} [label={}];\n",
                    quote(&e.from),
                    quote(&e.to),
                    quote(l)
                )),
                None => out.push_str(&format!("  {} -> {};\n", quote(&e.from), quote(&e.to))),
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Reduce a partial order (given as the full `leq` relation over `items`)
/// to its Hasse covering edges: `a -> b` survives iff `a < b` with no `c`
/// strictly between.
pub fn hasse_edges<T: PartialEq + Copy>(items: &[T], leq: impl Fn(T, T) -> bool) -> Vec<(T, T)> {
    let lt = |a: T, b: T| a != b && leq(a, b);
    let mut edges = Vec::new();
    for &a in items {
        for &b in items {
            if !lt(a, b) {
                continue;
            }
            let covered = items.iter().any(|&c| lt(a, c) && lt(c, b));
            if !covered {
                edges.push((a, b));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_well_formed_dot() {
        let mut g = DotGraph::new("test");
        g.node("a", "Alpha")
            .filled_node("b", "Beta \"quoted\"", "lightblue")
            .edge("a", "b");
        let text = g.emit();
        assert!(text.starts_with("digraph \"test\" {"));
        assert!(text.contains("\"a\" [label=\"Alpha\"];"));
        assert!(text.contains("fillcolor=\"lightblue\""));
        assert!(text.contains("Beta \\\"quoted\\\""));
        assert!(text.contains("\"a\" -> \"b\";"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    #[should_panic(expected = "duplicate DOT node id")]
    fn duplicate_ids_panic() {
        let mut g = DotGraph::new("t");
        g.node("x", "1").node("x", "2");
        let _ = g.emit();
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn dangling_edges_panic() {
        let mut g = DotGraph::new("t");
        g.node("x", "1").edge("x", "y");
        let _ = g.emit();
    }

    #[test]
    fn hasse_reduction_drops_transitive_edges() {
        // Divisibility on {1, 2, 4, 8}: the chain 1->2->4->8.
        let items = [1u32, 2, 4, 8];
        let edges = hasse_edges(&items, |a, b| b % a == 0);
        assert_eq!(edges, vec![(1, 2), (2, 4), (4, 8)]);
        // Divisibility on {1, 2, 3, 6}: diamond.
        let items = [1u32, 2, 3, 6];
        let mut edges = hasse_edges(&items, |a, b| b % a == 0);
        edges.sort();
        assert_eq!(edges, vec![(1, 2), (1, 3), (2, 6), (3, 6)]);
    }
}

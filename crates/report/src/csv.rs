//! Minimal CSV emission (RFC 4180 quoting) — hand-rolled so the workspace
//! stays inside its sanctioned dependency set.

/// Quote a single field if needed.
///
/// RFC 4180 requires quoting for embedded commas, quotes and line breaks;
/// fields with leading/trailing whitespace are also quoted so consumers
/// that trim unquoted fields cannot corrupt them.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) || field != field.trim() {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// A CSV document under construction.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    lines: Vec<String>,
    columns: Option<usize>,
}

impl CsvWriter {
    /// An empty document.
    pub fn new() -> CsvWriter {
        CsvWriter::default()
    }

    /// Write the header row (fixes the column count).
    pub fn header<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        self.columns = Some(cells.len());
        self.push_line(cells);
        self
    }

    /// Write a data row.
    ///
    /// # Panics
    /// Panics if a header was written and the column count differs.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        if let Some(n) = self.columns {
            assert_eq!(
                cells.len(),
                n,
                "CSV row has {} cells, header has {n}",
                cells.len()
            );
        }
        self.push_line(cells);
        self
    }

    fn push_line<S: AsRef<str>>(&mut self, cells: &[S]) {
        let line: Vec<String> = cells.iter().map(|c| escape_field(c.as_ref())).collect();
        self.lines.push(line.join(","));
    }

    /// Number of lines written (header included).
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The finished document (trailing newline included).
    pub fn finish(&self) -> String {
        let mut out = self.lines.join("\r\n");
        out.push_str("\r\n");
        out
    }
}

/// Parse a CSV document produced by [`CsvWriter`] back into rows (used by
/// tests and by the bench harness to validate its own emission).
pub fn parse(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => quoted = true,
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {}
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_round_trip() {
        let mut w = CsvWriter::new();
        w.header(&["name", "flex"])
            .row(&["FPGA", "8"])
            .row(&["Matrix", "7"]);
        let text = w.finish();
        assert_eq!(
            parse(&text),
            vec![
                vec!["name".to_owned(), "flex".to_owned()],
                vec!["FPGA".to_owned(), "8".to_owned()],
                vec!["Matrix".to_owned(), "7".to_owned()],
            ]
        );
    }

    #[test]
    fn quoting_round_trip() {
        let nasty = ["comma, inside", "quote \" inside", "line\nbreak", "plain"];
        let mut w = CsvWriter::new();
        w.row(&nasty);
        let parsed = parse(&w.finish());
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], nasty.to_vec());
    }

    #[test]
    fn escape_only_when_needed() {
        assert_eq!(escape_field("abc"), "abc");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn embedded_line_breaks_are_quoted() {
        assert_eq!(escape_field("a\nb"), "\"a\nb\"");
        assert_eq!(escape_field("a\rb"), "\"a\rb\"");
        assert_eq!(escape_field("a\r\nb"), "\"a\r\nb\"");
        // And they survive a writer/parser round trip.
        let mut w = CsvWriter::new();
        w.row(&["a\nb", "a\r\nb"]);
        let parsed = parse(&w.finish());
        assert_eq!(parsed, vec![vec!["a\nb".to_owned(), "a\r\nb".to_owned()]]);
    }

    #[test]
    fn leading_and_trailing_whitespace_is_quoted() {
        assert_eq!(escape_field(" padded "), "\" padded \"");
        assert_eq!(escape_field("\ttabbed"), "\"\ttabbed\"");
        assert_eq!(escape_field("inner space ok"), "inner space ok");
        let mut w = CsvWriter::new();
        w.row(&[" a ", "b "]);
        let parsed = parse(&w.finish());
        assert_eq!(parsed, vec![vec![" a ".to_owned(), "b ".to_owned()]]);
    }

    #[test]
    #[should_panic(expected = "CSV row has 1 cells")]
    fn ragged_rows_panic() {
        let mut w = CsvWriter::new();
        w.header(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn line_count_tracks_rows() {
        let mut w = CsvWriter::new();
        w.header(&["x"]);
        w.row(&["1"]).row(&["2"]);
        assert_eq!(w.line_count(), 3);
    }
}

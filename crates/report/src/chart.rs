//! Charts: ASCII bars for the terminal and a minimal SVG emitter for
//! files — used to regenerate Fig 1 (trend lines) and Fig 7 (flexibility
//! bars).

/// One labelled bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Bar label.
    pub label: String,
    /// Bar value.
    pub value: f64,
}

/// Render a horizontal ASCII bar chart (Fig 7 style).
pub fn ascii_bar_chart(title: &str, bars: &[Bar], width: usize) -> String {
    let max = bars
        .iter()
        .map(|b| b.value)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_width = bars
        .iter()
        .map(|b| b.label.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{title}\n");
    for bar in bars {
        let filled = ((bar.value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:label_width$} | {}{} {}\n",
            bar.label,
            "#".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
            format_value(bar.value),
        ));
    }
    out
}

fn format_value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// One named series for a line chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Render a compact ASCII multi-series view (one sparkline-style row per
/// series, Fig 1 style).
pub fn ascii_trend_chart(title: &str, series: &[Series]) -> String {
    const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_width = series
        .iter()
        .map(|s| s.label.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{title}  (peak = {})\n", format_value(max));
    for s in series {
        let mut row = String::new();
        for &(_, y) in &s.points {
            let idx = ((y / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            row.push(GLYPHS[idx.min(GLYPHS.len() - 1)]);
        }
        out.push_str(&format!("{:label_width$} | {row}\n", s.label));
    }
    out
}

/// Minimal SVG document builder.
#[derive(Debug, Clone)]
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

impl Svg {
    /// An empty canvas.
    pub fn new(width: u32, height: u32) -> Svg {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"{fill}\"/>"
        ));
        self
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str) -> &mut Self {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"2\"/>",
            pts.join(" ")
        ));
        self
    }

    /// A text label.
    pub fn text(&mut self, x: f64, y: f64, content: &str) -> &mut Self {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        self.body.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"11\" font-family=\"sans-serif\">{escaped}</text>"
        ));
        self
    }

    /// Finish the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">{}</svg>",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Default categorical palette for multi-series charts.
pub const PALETTE: [&str; 6] = [
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2",
];

/// Emit an SVG bar chart (Fig 7).
pub fn svg_bar_chart(title: &str, bars: &[Bar]) -> String {
    let width = 720u32;
    let bar_h = 16.0;
    let gap = 6.0;
    let label_w = 160.0;
    let height = (40.0 + bars.len() as f64 * (bar_h + gap)) as u32;
    let max = bars
        .iter()
        .map(|b| b.value)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut svg = Svg::new(width, height);
    svg.text(8.0, 18.0, title);
    for (i, bar) in bars.iter().enumerate() {
        let y = 32.0 + i as f64 * (bar_h + gap);
        let w = (bar.value / max) * (f64::from(width) - label_w - 60.0);
        svg.text(8.0, y + bar_h - 4.0, &bar.label);
        svg.rect(label_w, y, w, bar_h, PALETTE[i % PALETTE.len()]);
        svg.text(label_w + w + 6.0, y + bar_h - 4.0, &format_value(bar.value));
    }
    svg.finish()
}

/// Emit an SVG multi-series line chart (Fig 1).
pub fn svg_line_chart(title: &str, series: &[Series]) -> String {
    let (width, height) = (720u32, 360u32);
    let (left, right, top, bottom) = (60.0, 150.0, 30.0, 30.0);
    let plot_w = f64::from(width) - left - right;
    let plot_h = f64::from(height) - top - bottom;
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (xmin, xmax) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let ymax = ys.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let mut svg = Svg::new(width, height);
    svg.text(8.0, 18.0, title);
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|&(x, y)| {
                let px = left + (x - xmin) / (xmax - xmin).max(1e-12) * plot_w;
                let py = top + plot_h - (y / ymax) * plot_h;
                (px, py)
            })
            .collect();
        svg.polyline(&pts, color);
        svg.rect(
            f64::from(width) - right + 10.0,
            top + i as f64 * 18.0,
            10.0,
            10.0,
            color,
        );
        svg.text(
            f64::from(width) - right + 26.0,
            top + i as f64 * 18.0 + 9.0,
            &s.label,
        );
    }
    svg.text(left, f64::from(height) - 8.0, &format!("{xmin:.0}"));
    svg.text(
        left + plot_w - 30.0,
        f64::from(height) - 8.0,
        &format!("{xmax:.0}"),
    );
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bars() -> Vec<Bar> {
        vec![
            Bar {
                label: "FPGA".into(),
                value: 8.0,
            },
            Bar {
                label: "Matrix".into(),
                value: 7.0,
            },
            Bar {
                label: "IUP".into(),
                value: 0.0,
            },
        ]
    }

    #[test]
    fn ascii_bars_scale_to_the_maximum() {
        let text = ascii_bar_chart("Fig 7", &bars(), 40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Fig 7");
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 40); // FPGA fills the width
        assert!(count(lines[2]) < 40 && count(lines[2]) > 30);
        assert_eq!(count(lines[3]), 0);
        assert!(lines[1].ends_with('8'));
    }

    #[test]
    fn trend_chart_has_one_row_per_series() {
        let s = vec![
            Series {
                label: "multicore".into(),
                points: vec![(1995.0, 1.0), (2010.0, 100.0)],
            },
            Series {
                label: "fpga".into(),
                points: vec![(1995.0, 50.0), (2010.0, 80.0)],
            },
        ];
        let text = ascii_trend_chart("Fig 1", &s);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("multicore"));
        // The last multicore glyph is the peak glyph.
        let row = text.lines().nth(1).unwrap();
        assert!(row.ends_with('@'), "{row}");
    }

    #[test]
    fn svg_documents_are_well_formed_enough() {
        let svg = svg_bar_chart("Fig 7", &bars());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3);
        let line = svg_line_chart(
            "Fig 1",
            &[Series {
                label: "a<b".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            }],
        );
        assert!(line.contains("polyline"));
        assert!(line.contains("a&lt;b"), "text must be escaped");
    }

    #[test]
    fn zero_height_values_do_not_divide_by_zero() {
        let flat = vec![Bar {
            label: "x".into(),
            value: 0.0,
        }];
        let text = ascii_bar_chart("t", &flat, 10);
        assert!(text.contains("x |"));
        let _ = svg_bar_chart("t", &flat);
    }
}

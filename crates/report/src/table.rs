//! ASCII / markdown table rendering for the regenerated paper tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
    /// Centred.
    Center,
}

/// An in-memory table: headers plus rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// A table with the given headers (all left-aligned).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a caption printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Set per-column alignments (length must match the headers).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Append a row (padded / truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let gap = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(gap)),
            Align::Right => format!("{}{cell}", " ".repeat(gap)),
            Align::Center => {
                let left = gap / 2;
                format!("{}{cell}{}", " ".repeat(left), " ".repeat(gap - left))
            }
        }
    }

    /// Render as a boxed ASCII table.
    pub fn render_ascii(&self) -> String {
        let widths = self.widths();
        let sep: String = {
            let parts: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
            format!("+{}+", parts.join("+"))
        };
        let render_cells = |cells: &[String]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .zip(&self.aligns)
                .map(|((c, &w), &a)| format!(" {} ", Table::pad(c, w, a)))
                .collect();
            format!("|{}|", parts.join("|"))
        };
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&render_cells(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_cells(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Render as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(&format!("**{title}**\n\n"));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        let marks: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
                Align::Center => ":-:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", marks.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Arch", "Flex"])
            .with_title("Survey")
            .with_aligns(vec![Align::Left, Align::Right]);
        t.push_row(vec!["FPGA", "8"]);
        t.push_row(vec!["Matrix", "7"]);
        t
    }

    #[test]
    fn ascii_table_is_boxed_and_aligned() {
        let text = sample().render_ascii();
        assert!(text.starts_with("Survey\n+"));
        assert!(text.contains("| Arch   | Flex |"));
        assert!(text.contains("| FPGA   |    8 |"));
        assert!(text.contains("| Matrix |    7 |"));
        // All separator lines have the same width.
        let widths: Vec<usize> = text
            .lines()
            .filter(|l| l.starts_with('+'))
            .map(|l| l.len())
            .collect();
        assert_eq!(widths.len(), 3);
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn markdown_table_has_alignment_row() {
        let md = sample().render_markdown();
        assert!(md.contains("| Arch | Flex |"));
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("| FPGA | 8 |"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["1"]);
        assert_eq!(t.row_count(), 1);
        let text = t.render_ascii();
        assert!(text.contains("| 1 |   |   |"));
    }

    #[test]
    fn center_alignment() {
        let mut t = Table::new(vec!["head"]).with_aligns(vec![Align::Center]);
        t.push_row(vec!["x"]);
        assert!(t.render_ascii().contains("|  x   |"));
    }

    #[test]
    #[should_panic(expected = "alignment count mismatch")]
    fn misaligned_aligns_panic() {
        let _ = Table::new(vec!["a", "b"]).with_aligns(vec![Align::Left]);
    }
}

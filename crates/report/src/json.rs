//! A minimal hand-rolled JSON emitter (no serde format crate is in the
//! sanctioned dependency set) — enough for exporting tables and survey
//! data to downstream tooling, with correct string escaping.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (emitted via `f64`; integers stay exact up to 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an integer value.
    pub fn int(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// Convenience: an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serialise compactly.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(key, out);
                    out.push(':');
                    value.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_emit_canonically() {
        assert_eq!(Json::Null.emit(), "null");
        assert_eq!(Json::Bool(true).emit(), "true");
        assert_eq!(Json::int(42).emit(), "42");
        assert_eq!(Json::Num(2.5).emit(), "2.5");
        assert_eq!(Json::str("hi").emit(), "\"hi\"");
    }

    #[test]
    fn strings_escape_correctly() {
        assert_eq!(Json::str("a\"b\\c\nd").emit(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").emit(), "\"\\u0001\"");
        assert_eq!(Json::str("unicode ok: é").emit(), "\"unicode ok: é\"");
    }

    #[test]
    fn containers_nest() {
        let v = Json::obj(vec![
            ("name", Json::str("FPGA")),
            ("flexibility", Json::int(8)),
            ("tags", Json::Arr(vec![Json::str("USP"), Json::Bool(false)])),
        ]);
        assert_eq!(
            v.emit(),
            "{\"name\":\"FPGA\",\"flexibility\":8,\"tags\":[\"USP\",false]}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).emit(), "[]");
        assert_eq!(Json::Obj(vec![]).emit(), "{}");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::int(1)), ("a", Json::int(2))]);
        assert_eq!(v.emit(), "{\"z\":1,\"a\":2}");
    }
}

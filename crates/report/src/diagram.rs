//! ASCII block diagrams of architecture structures — the renderer behind
//! the regenerated Figs 3–6 (machine organisations with their switches).

use skilltax_model::{ArchSpec, Count, Link, Relation};

/// How many block instances a row draws before eliding with `...`.
const MAX_DRAWN: usize = 4;

fn row_of_boxes(label: &str, count: Count) -> Vec<String> {
    let (n, elide) = match count {
        Count::Zero => (0, false),
        Count::One => (1, false),
        Count::Many(m) => match m.value() {
            Some(v) if (v as usize) <= MAX_DRAWN => (v as usize, false),
            _ => (MAX_DRAWN, true),
        },
        Count::Variable => (MAX_DRAWN, true),
    };
    if n == 0 {
        return Vec::new();
    }
    let cell_top = "+----+ ".repeat(n);
    let cell_mid: String = (0..n).map(|_| format!("|{label:^4}| ")).collect();
    let suffix = if elide {
        if count == Count::Variable {
            "... (v: variable)"
        } else {
            "..."
        }
    } else {
        ""
    };
    vec![
        format!("{cell_top}{suffix}"),
        cell_mid.trim_end().to_owned(),
        cell_top.trim_end().to_owned(),
    ]
}

fn relation_line(spec: &ArchSpec, relation: Relation) -> Option<String> {
    match spec.connectivity.link(relation) {
        Link::None => None,
        Link::Connected(sw) => {
            let kind = if sw.is_crossbar() {
                "crossbar"
            } else {
                "direct"
            };
            Some(format!("   {}: {} ({})", relation.label(), sw, kind))
        }
    }
}

/// Render the block diagram of an architecture.
pub fn diagram(spec: &ArchSpec) -> String {
    let mut out = format!("{}  [{}]\n", spec.name, spec.granularity);
    if !spec.is_dataflow() {
        for line in row_of_boxes("IP", spec.ips) {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(l) = relation_line(spec, Relation::IpIp) {
            out.push_str(&l);
            out.push('\n');
        }
        if let Some(l) = relation_line(spec, Relation::IpIm) {
            out.push_str(&l);
            out.push('\n');
        }
        if let Some(l) = relation_line(spec, Relation::IpDp) {
            out.push_str(&l);
            out.push('\n');
        }
    }
    for line in row_of_boxes("DP", spec.dps) {
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(l) = relation_line(spec, Relation::DpDp) {
        out.push_str(&l);
        out.push('\n');
    }
    if let Some(l) = relation_line(spec, Relation::DpDm) {
        out.push_str(&l);
        out.push('\n');
    }
    // Memory row mirrors the DP count (the model ties DM instances to DPs).
    if spec.connectivity.link(Relation::DpDm).is_connected() {
        for line in row_of_boxes("DM", spec.dps) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Render one figure's worth of sub-type diagrams (e.g. Fig 3 = the four
/// DMP organisations): a titled sequence of diagrams.
pub fn figure(title: &str, specs: &[ArchSpec]) -> String {
    let mut out = format!("=== {title} ===\n\n");
    for spec in specs {
        out.push_str(&diagram(spec));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::dsl::parse_row;

    #[test]
    fn uniprocessor_diagram_has_one_of_each() {
        let iup = parse_row("IUP", "1 | 1 | none | 1-1 | 1-1 | 1-1 | none").unwrap();
        let d = diagram(&iup);
        assert_eq!(d.matches("| IP |").count(), 1);
        assert_eq!(d.matches("| DP |").count(), 1);
        assert_eq!(d.matches("| DM |").count(), 1);
        assert!(d.contains("IP-DP: 1-1 (direct)"));
    }

    #[test]
    fn dataflow_diagram_has_no_ip_row() {
        let colt = parse_row("Colt", "0 | 16 | none | none | none | 16x6 | 16x16").unwrap();
        let d = diagram(&colt);
        assert!(!d.contains("| IP |"));
        assert!(d.contains("| DP |"));
        assert!(d.contains("DP-DP: 16x16 (crossbar)"));
        assert!(d.contains("...")); // 16 DPs elided to 4 boxes
    }

    #[test]
    fn variable_counts_annotated() {
        let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        let d = diagram(&fpga);
        assert!(d.contains("(v: variable)"));
        assert!(d.contains("LUTs"));
    }

    #[test]
    fn figure_concatenates_subtypes() {
        let specs: Vec<ArchSpec> = [
            "0 | n | none | none | none | n-n | none",
            "0 | n | none | none | none | n-n | nxn",
            "0 | n | none | none | none | nxn | none",
            "0 | n | none | none | none | nxn | nxn",
        ]
        .iter()
        .enumerate()
        .map(|(i, row)| parse_row(&format!("DMP-{}", i + 1), row).unwrap())
        .collect();
        let f = figure("Fig 3: Data Flow Machine Sub-Types", &specs);
        assert!(f.starts_with("=== Fig 3"));
        assert_eq!(f.matches("DMP-").count(), 4);
    }

    #[test]
    fn small_concrete_counts_draw_exactly() {
        let duo = parse_row("Core2Duo", "2 | 2 | none | 2-2 | 2-2 | 2-2 | none").unwrap();
        let d = diagram(&duo);
        assert_eq!(d.matches("| IP |").count(), 2);
        assert!(!d.contains("..."));
    }
}

//! Rendering for the job service's operational counters: per-tenant
//! admission/outcome ledgers and the service-wide totals line.
//!
//! The service crate sits above the report crate, so the renderer takes
//! a plain [`ServiceTenantRow`] per tenant; callers map their metrics
//! snapshots into rows.

use crate::csv::CsvWriter;
use crate::table::{Align, Table};

/// One tenant's ledger over a service run or soak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTenantRow {
    /// The tenant name.
    pub tenant: String,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs that reached a typed terminal outcome.
    pub finished: u64,
    /// Of those, jobs that completed cleanly.
    pub completed: u64,
    /// Jobs that completed by degrading around faults.
    pub degraded: u64,
    /// Jobs cancelled (deadline or disconnect).
    pub cancelled: u64,
    /// Jobs that failed after the retry tier.
    pub failed: u64,
}

impl ServiceTenantRow {
    /// Did every admitted job reach a terminal outcome?
    pub fn fully_resolved(&self) -> bool {
        self.admitted == self.finished
    }
}

/// Render tenant rows as a boxed [`Table`] (ready for `render_ascii` or
/// `render_markdown`).
pub fn service_table(rows: &[ServiceTenantRow]) -> Table {
    let mut table = Table::new(vec![
        "tenant",
        "admitted",
        "finished",
        "completed",
        "degraded",
        "cancelled",
        "failed",
        "resolved",
    ])
    .with_title("Per-tenant service ledger")
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for r in rows {
        table.push_row(vec![
            r.tenant.clone(),
            r.admitted.to_string(),
            r.finished.to_string(),
            r.completed.to_string(),
            r.degraded.to_string(),
            r.cancelled.to_string(),
            r.failed.to_string(),
            if r.fully_resolved() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    table
}

/// Render tenant rows as CSV.
pub fn service_csv(rows: &[ServiceTenantRow]) -> String {
    let mut w = CsvWriter::new();
    w.header(&[
        "tenant",
        "admitted",
        "finished",
        "completed",
        "degraded",
        "cancelled",
        "failed",
    ]);
    for r in rows {
        w.row(&[
            r.tenant.as_str(),
            &r.admitted.to_string(),
            &r.finished.to_string(),
            &r.completed.to_string(),
            &r.degraded.to_string(),
            &r.cancelled.to_string(),
            &r.failed.to_string(),
        ]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ServiceTenantRow> {
        vec![
            ServiceTenantRow {
                tenant: "steady".into(),
                admitted: 12,
                finished: 12,
                completed: 12,
                degraded: 0,
                cancelled: 0,
                failed: 0,
            },
            ServiceTenantRow {
                tenant: "storm".into(),
                admitted: 6,
                finished: 5,
                completed: 1,
                degraded: 3,
                cancelled: 0,
                failed: 1,
            },
        ]
    }

    #[test]
    fn resolution_flags_unfinished_work() {
        let r = rows();
        assert!(r[0].fully_resolved());
        assert!(!r[1].fully_resolved());
    }

    #[test]
    fn table_renders_every_tenant() {
        let text = service_table(&rows()).render_ascii();
        assert!(text.contains("steady"));
        assert!(text.contains("storm"));
        assert!(text.contains("yes"));
        assert!(text.contains("NO"));
    }

    #[test]
    fn csv_round_trips() {
        let csv = service_csv(&rows());
        let parsed = crate::csv::parse(&csv);
        assert_eq!(parsed.len(), 3); // header + 2 rows
        assert_eq!(parsed[1][0], "steady");
        assert_eq!(parsed[2][4], "3");
    }
}

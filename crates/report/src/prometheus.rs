//! Prometheus text exposition (format version 0.0.4).
//!
//! A hand-rolled writer for the plain-text scrape format: `# HELP` /
//! `# TYPE` headers, labelled samples, and log2-bucketed histograms
//! flattened into the cumulative `_bucket{le="..."}` / `_sum` / `_count`
//! series Prometheus expects.  Metric names are sanitised to the legal
//! charset (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and label values are escaped per
//! the exposition spec (`\\`, `\"`, `\n`), so arbitrary tenant ids are
//! safe to emit as labels.

use std::fmt::Write as _;

/// The Content-Type a scrape endpoint must declare for this format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Force a name into the legal metric-name charset: every illegal
/// character becomes `_`, and a leading digit is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Incremental writer for one exposition document.
#[derive(Debug, Clone, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Start an empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Emit `# HELP` and `# TYPE` headers for a metric family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut PromWriter {
        let name = sanitize_metric_name(name);
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// Emit one integer-valued sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) -> &mut PromWriter {
        let _ = writeln!(
            self.out,
            "{}{} {value}",
            sanitize_metric_name(name),
            render_labels(labels)
        );
        self
    }

    /// Emit one float-valued sample.
    pub fn sample_f64(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut PromWriter {
        let _ = writeln!(
            self.out,
            "{}{} {value}",
            sanitize_metric_name(name),
            render_labels(labels)
        );
        self
    }

    /// Flatten a log2-bucketed histogram (the machine crate's
    /// `Histogram::bucket_counts()` layout: bucket 0 holds zeros, bucket
    /// `i` holds `[2^(i-1), 2^i - 1]`, the last bucket absorbs the rest)
    /// into cumulative `_bucket{le="..."}` series plus `_sum` and
    /// `_count`.  Emit [`PromWriter::family`] with kind `histogram`
    /// first.
    pub fn log2_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
        sum: u64,
        count: u64,
    ) -> &mut PromWriter {
        let name = sanitize_metric_name(name);
        let mut cumulative = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            cumulative += n;
            let le = if i + 1 == buckets.len() {
                "+Inf".to_owned()
            } else if i == 0 {
                "0".to_owned()
            } else {
                ((1u64 << i) - 1).to_string()
            };
            let mut labelled: Vec<(&str, &str)> = labels.to_vec();
            labelled.push(("le", &le));
            let _ = writeln!(
                self.out,
                "{name}_bucket{} {cumulative}",
                render_labels(&labelled)
            );
        }
        let _ = writeln!(self.out, "{name}_sum{} {sum}", render_labels(labels));
        let _ = writeln!(self.out, "{name}_count{} {count}", render_labels(labels));
        self
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitised_to_the_legal_charset() {
        assert_eq!(sanitize_metric_name("jobs.completed"), "jobs_completed");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("dp.alu-ops"), "dp_alu_ops");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn samples_render_with_labels() {
        let mut w = PromWriter::new();
        w.family("jobs_completed", "counter", "Jobs finished.")
            .sample("jobs_completed", &[("tenant", "acme \"inc\"")], 3);
        let text = w.finish();
        assert!(text.contains("# HELP jobs_completed Jobs finished.\n"));
        assert!(text.contains("# TYPE jobs_completed counter\n"));
        assert!(text.contains("jobs_completed{tenant=\"acme \\\"inc\\\"\"} 3\n"));
    }

    #[test]
    fn log2_histogram_buckets_are_cumulative_and_end_at_inf() {
        // 17 machine-layout buckets: one zero, one 1, two in [2,3],
        // one overflow.
        let mut buckets = [0u64; 17];
        buckets[0] = 1;
        buckets[1] = 1;
        buckets[2] = 2;
        buckets[16] = 1;
        let mut w = PromWriter::new();
        w.family("queue_wait", "histogram", "Queue wait.")
            .log2_histogram("queue_wait", &[], &buckets, 99, 5);
        let text = w.finish();
        assert!(text.contains("queue_wait_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("queue_wait_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("queue_wait_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("queue_wait_bucket{le=\"32767\"} 4\n"));
        assert!(text.contains("queue_wait_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("queue_wait_sum 99\n"));
        assert!(text.contains("queue_wait_count 5\n"));
        // Cumulative counts never decrease.
        let mut last = 0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "bucket series regressed: {line}");
            last = n;
        }
    }

    #[test]
    fn every_emitted_name_is_legal() {
        let mut w = PromWriter::new();
        w.family("weird.name", "gauge", "x")
            .sample("weird.name", &[("bad-label", "v")], 1)
            .sample_f64("2nd", &[], 0.5);
        let legal = |s: &str| {
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            (first.is_ascii_alphabetic() || first == '_' || first == ':')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        for line in w.finish().lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(legal(name), "illegal metric name in line: {line}");
        }
    }
}

//! Rendering for fault-injection campaign results: the per-class
//! degradation matrix behind the resilience experiments.
//!
//! The machine crate sits above the report crate, so the renderer takes a
//! plain [`ResilienceEntry`] per `(class, fault scenario)` cell; callers
//! map their typed run outcomes into entries.

use crate::csv::CsvWriter;
use crate::table::{Align, Table};

/// One row of a resilience campaign: how a machine class behaved under an
/// injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceEntry {
    /// Taxonomy class name (e.g. `IMP-IX`).
    pub class_name: String,
    /// The switch that decides the outcome (e.g. `IP-DP crossbar`).
    pub deciding_switch: String,
    /// Number of faults injected during the run.
    pub faults_injected: u64,
    /// Did the workload complete (possibly degraded)?
    pub completed: bool,
    /// Did it complete in degraded mode?
    pub degraded: bool,
    /// The typed error, if the run failed.
    pub error: Option<String>,
}

impl ResilienceEntry {
    /// The single-word verdict used in the tables.
    pub fn verdict(&self) -> &'static str {
        match (self.completed, self.degraded) {
            (true, true) => "degraded",
            (true, false) => "completed",
            (false, _) => "failed",
        }
    }
}

/// Render entries as a boxed [`Table`] (ready for `render_ascii` or
/// `render_markdown`).
pub fn resilience_table(entries: &[ResilienceEntry]) -> Table {
    let mut table = Table::new(vec![
        "class",
        "deciding switch",
        "faults",
        "verdict",
        "error",
    ])
    .with_title("Resilience under injected faults")
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Left,
    ]);
    for e in entries {
        table.push_row(vec![
            e.class_name.clone(),
            e.deciding_switch.clone(),
            e.faults_injected.to_string(),
            e.verdict().to_owned(),
            e.error.clone().unwrap_or_default(),
        ]);
    }
    table
}

/// Render entries as CSV.
pub fn resilience_csv(entries: &[ResilienceEntry]) -> String {
    let mut w = CsvWriter::new();
    w.header(&[
        "class",
        "deciding_switch",
        "faults_injected",
        "verdict",
        "error",
    ]);
    for e in entries {
        w.row(&[
            e.class_name.as_str(),
            e.deciding_switch.as_str(),
            &e.faults_injected.to_string(),
            e.verdict(),
            e.error.as_deref().unwrap_or(""),
        ]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<ResilienceEntry> {
        vec![
            ResilienceEntry {
                class_name: "IMP-IX".into(),
                deciding_switch: "IP-DP crossbar".into(),
                faults_injected: 3,
                completed: true,
                degraded: true,
                error: None,
            },
            ResilienceEntry {
                class_name: "IAP-I".into(),
                deciding_switch: "DP-DM direct".into(),
                faults_injected: 1,
                completed: false,
                degraded: false,
                error: Some("degradation impossible".into()),
            },
        ]
    }

    #[test]
    fn verdicts_reflect_completion_and_degradation() {
        let e = entries();
        assert_eq!(e[0].verdict(), "degraded");
        assert_eq!(e[1].verdict(), "failed");
        let clean = ResilienceEntry {
            completed: true,
            degraded: false,
            ..e[0].clone()
        };
        assert_eq!(clean.verdict(), "completed");
    }

    #[test]
    fn table_renders_every_entry() {
        let text = resilience_table(&entries()).render_ascii();
        assert!(text.contains("IMP-IX"));
        assert!(text.contains("degraded"));
        assert!(text.contains("IAP-I"));
        assert!(text.contains("degradation impossible"));
    }

    #[test]
    fn csv_round_trips() {
        let csv = resilience_csv(&entries());
        let parsed = crate::csv::parse(&csv);
        assert_eq!(parsed.len(), 3); // header + 2 rows
        assert_eq!(parsed[1][0], "IMP-IX");
        assert_eq!(parsed[2][3], "failed");
    }
}

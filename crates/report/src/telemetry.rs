//! Renderers for cycle-level telemetry captured by the machine crate.
//!
//! The report crate depends only on `skilltax-model`, so everything here
//! takes *plain data* — the machine crate bridges its `EventTrace` and
//! `MetricsRegistry` into a [`TelemetrySummary`] via their `class_counts`
//! / `counter_list` / `histogram_list` accessors.  Three backends are
//! offered, matching the rest of the crate: ASCII tables, CSV and JSON,
//! plus a flamegraph-style per-class cycle breakdown.

use crate::csv::CsvWriter;
use crate::json::Json;
use crate::table::{Align, Table};

/// Summary statistics of one named histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `"backoff.delay"`).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample (0 while empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

impl HistogramSummary {
    /// Mean sample value (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Plain-data snapshot of one run's telemetry, ready for rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Human label for the run (machine class, workload, ...).
    pub run_label: String,
    /// Machine cycles elapsed.
    pub cycles: u64,
    /// Per-event-class totals, in taxonomy order: `(label, count)`.
    pub event_counts: Vec<(String, u64)>,
    /// Named monotonic counters: `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Named histograms.
    pub histograms: Vec<HistogramSummary>,
    /// Events evicted from the bounded trace ring (`EventTrace::dropped`).
    /// Per-class totals stay exact even when this is non-zero.
    pub dropped: u64,
}

impl TelemetrySummary {
    /// Build a summary from the machine crate's plain accessors:
    /// `trace.class_counts()`, `metrics.counter_list()` and
    /// `metrics.histogram_list()` (each histogram tuple is
    /// `(name, count, min, max, sum)`).
    pub fn new(
        run_label: impl Into<String>,
        cycles: u64,
        event_counts: Vec<(String, u64)>,
        counters: Vec<(String, u64)>,
        histograms: Vec<(String, u64, u64, u64, u64)>,
    ) -> TelemetrySummary {
        TelemetrySummary {
            run_label: run_label.into(),
            cycles,
            event_counts,
            counters,
            histograms: histograms
                .into_iter()
                .map(|(name, count, min, max, sum)| HistogramSummary {
                    name,
                    count,
                    min,
                    max,
                    sum,
                })
                .collect(),
            dropped: 0,
        }
    }

    /// Record how many events the bounded ring evicted
    /// (`trace.dropped()`), so renderers can flag lossy captures.
    pub fn with_dropped(mut self, dropped: u64) -> TelemetrySummary {
        self.dropped = dropped;
        self
    }

    /// Total events across all classes.
    pub fn total_events(&self) -> u64 {
        self.event_counts.iter().map(|(_, n)| n).sum()
    }
}

/// Per-class event totals as an ASCII table.
pub fn telemetry_table(summary: &TelemetrySummary) -> Table {
    let dropped = if summary.dropped > 0 {
        format!(" ({} dropped from ring)", summary.dropped)
    } else {
        String::new()
    };
    let mut t = Table::new(vec!["event", "count"])
        .with_title(format!(
            "{} — {} cycles, {} events{dropped}",
            summary.run_label,
            summary.cycles,
            summary.total_events()
        ))
        .with_aligns(vec![Align::Left, Align::Right]);
    for (label, count) in &summary.event_counts {
        t.push_row(vec![label.clone(), count.to_string()]);
    }
    t
}

/// Named counters and histogram summaries as an ASCII table.
pub fn counter_table(summary: &TelemetrySummary) -> Table {
    let mut t = Table::new(vec!["metric", "count", "min", "max", "mean"])
        .with_title(format!("{} — metrics", summary.run_label))
        .with_aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (name, value) in &summary.counters {
        t.push_row(vec![
            name.clone(),
            value.to_string(),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
        ]);
    }
    for h in &summary.histograms {
        t.push_row(vec![
            h.name.clone(),
            h.count.to_string(),
            h.min.to_string(),
            h.max.to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
    t
}

/// Flamegraph-style per-class cycle breakdown: one horizontal bar per
/// event class, scaled so the busiest class spans `width` characters,
/// annotated with its share of all events.  Zero-count classes are
/// skipped.
pub fn cycle_breakdown(summary: &TelemetrySummary, width: usize) -> String {
    let width = width.max(1);
    let total = summary.total_events();
    let peak = summary
        .event_counts
        .iter()
        .map(|(_, n)| *n)
        .max()
        .unwrap_or(0);
    let name_w = summary
        .event_counts
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(label, _)| label.len())
        .max()
        .unwrap_or(0);
    let mut out = format!(
        "{} — cycle breakdown ({} events over {} cycles)\n",
        summary.run_label, total, summary.cycles
    );
    if peak == 0 {
        out.push_str("  (no events recorded)\n");
        return out;
    }
    for (label, count) in &summary.event_counts {
        if *count == 0 {
            continue;
        }
        let bar_len = ((count * width as u64).div_ceil(peak)) as usize;
        let pct = 100.0 * *count as f64 / total as f64;
        out.push_str(&format!(
            "  {label:<name_w$} |{:<width$}| {count:>8} {pct:5.1}%\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Event and metric totals as CSV (`kind,name,count,min,max,sum`).
pub fn telemetry_csv(summary: &TelemetrySummary) -> String {
    let mut w = CsvWriter::new();
    w.header(&["kind", "name", "count", "min", "max", "sum"]);
    w.row(&[
        "run".to_owned(),
        summary.run_label.clone(),
        summary.cycles.to_string(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    w.row(&[
        "dropped".to_owned(),
        "trace.ring".to_owned(),
        summary.dropped.to_string(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    for (label, count) in &summary.event_counts {
        w.row(&[
            "event".to_owned(),
            label.clone(),
            count.to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    for (name, value) in &summary.counters {
        w.row(&[
            "counter".to_owned(),
            name.clone(),
            value.to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    for h in &summary.histograms {
        w.row(&[
            "histogram".to_owned(),
            h.name.clone(),
            h.count.to_string(),
            h.min.to_string(),
            h.max.to_string(),
            h.sum.to_string(),
        ]);
    }
    w.finish()
}

/// The full summary as a JSON object.
pub fn telemetry_json(summary: &TelemetrySummary) -> Json {
    let events: Vec<Json> = summary
        .event_counts
        .iter()
        .map(|(label, count)| {
            Json::obj(vec![
                ("event", Json::str(label.clone())),
                ("count", Json::int(*count as i64)),
            ])
        })
        .collect();
    let counters: Vec<Json> = summary
        .counters
        .iter()
        .map(|(name, value)| {
            Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("value", Json::int(*value as i64)),
            ])
        })
        .collect();
    let histograms: Vec<Json> = summary
        .histograms
        .iter()
        .map(|h| {
            Json::obj(vec![
                ("name", Json::str(h.name.clone())),
                ("count", Json::int(h.count as i64)),
                ("min", Json::int(h.min as i64)),
                ("max", Json::int(h.max as i64)),
                ("sum", Json::int(h.sum as i64)),
                ("mean", Json::Num(h.mean())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("run", Json::str(summary.run_label.clone())),
        ("cycles", Json::int(summary.cycles as i64)),
        ("events_dropped", Json::int(summary.dropped as i64)),
        ("events", Json::Arr(events)),
        ("counters", Json::Arr(counters)),
        ("histograms", Json::Arr(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv;

    fn sample() -> TelemetrySummary {
        TelemetrySummary::new(
            "IMP-X demo",
            40,
            vec![
                ("issue".to_owned(), 20),
                ("alu".to_owned(), 10),
                ("stall".to_owned(), 0),
                ("message".to_owned(), 5),
            ],
            vec![("retries".to_owned(), 2)],
            vec![("backoff.delay".to_owned(), 2, 1, 3, 4)],
        )
        .with_dropped(7)
    }

    #[test]
    fn histogram_mean_handles_empty() {
        let empty = HistogramSummary {
            name: "x".to_owned(),
            count: 0,
            min: 0,
            max: 0,
            sum: 0,
        };
        assert_eq!(empty.mean(), 0.0);
        assert!((sample().histograms[0].mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tables_render_all_rows() {
        let s = sample();
        let events = telemetry_table(&s);
        assert_eq!(events.row_count(), 4);
        let rendered = events.render_ascii();
        assert!(rendered.contains("IMP-X demo"));
        assert!(rendered.contains("issue"));
        assert!(rendered.contains("(7 dropped from ring)"));
        let lossless = sample().with_dropped(0);
        assert!(!telemetry_table(&lossless)
            .render_ascii()
            .contains("dropped"));
        let metrics = counter_table(&s);
        assert_eq!(metrics.row_count(), 2);
        assert!(metrics.render_ascii().contains("backoff.delay"));
    }

    #[test]
    fn cycle_breakdown_scales_bars_and_skips_zero_classes() {
        let s = sample();
        let art = cycle_breakdown(&s, 20);
        // Busiest class spans the full width; zero class is absent.
        assert!(art.contains(&"#".repeat(20)), "art:\n{art}");
        assert!(!art.contains("stall"), "art:\n{art}");
        assert!(art.contains("57.1%"), "art:\n{art}"); // 20 of 35 events
        let empty = TelemetrySummary::new("idle", 0, vec![], vec![], vec![]);
        assert!(cycle_breakdown(&empty, 20).contains("no events"));
    }

    #[test]
    fn csv_round_trips_and_counts_lines() {
        let s = sample();
        let text = telemetry_csv(&s);
        let rows = csv::parse(&text);
        // header + run + dropped + 4 events + 1 counter + 1 histogram
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0][0], "kind");
        assert!(rows.iter().any(|r| r[0] == "dropped" && r[2] == "7"));
        assert!(rows.iter().any(|r| r[0] == "histogram" && r[5] == "4"));
    }

    #[test]
    fn json_emits_all_sections() {
        let text = telemetry_json(&sample()).emit();
        for needle in [
            "\"run\":\"IMP-X demo\"",
            "\"cycles\":40",
            "\"events_dropped\":7",
            "\"events\":[",
            "\"counters\":[",
            "\"histograms\":[",
            "\"mean\":2",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}

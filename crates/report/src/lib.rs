//! # skilltax-report
//!
//! Output rendering for the regenerated paper artifacts: boxed ASCII and
//! markdown tables ([`table`]), RFC-4180 CSV ([`csv`]), ASCII/SVG bar and
//! trend charts ([`chart`], for Fig 1 and Fig 7), architecture block
//! diagrams ([`mod@diagram`], for Figs 3–6), the fault-injection
//! degradation matrix ([`resilience`]), per-run telemetry renderers
//! ([`telemetry`]: cycle breakdowns, counter tables, CSV/JSON exports),
//! the bench regression-gate report ([`regression`]), perf-history
//! trajectory tables and CSV ([`trajectory`]), the job service's
//! per-tenant operational ledger ([`service`]), and the span-profiler
//! surfaces: flamegraph folded stacks and self-time aggregation
//! ([`flame`]), Chrome trace-event JSON ([`trace`]), and Prometheus
//! text exposition ([`prometheus`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod csv;
pub mod diagram;
pub mod dot;
pub mod flame;
pub mod json;
pub mod prometheus;
pub mod regression;
pub mod resilience;
pub mod service;
pub mod table;
pub mod telemetry;
pub mod trace;
pub mod trajectory;

pub use chart::{ascii_bar_chart, ascii_trend_chart, svg_bar_chart, svg_line_chart, Bar, Series};
pub use csv::CsvWriter;
pub use diagram::{diagram, figure};
pub use dot::{hasse_edges, DotGraph};
pub use flame::{flame_csv, flame_rows, flame_table, folded_stacks, SpanRow};
pub use json::Json;
pub use prometheus::{
    escape_label_value, sanitize_metric_name, PromWriter, PROMETHEUS_CONTENT_TYPE,
};
pub use regression::{regression_summary, regression_table, RegressionRow, Severity};
pub use resilience::{resilience_csv, resilience_table, ResilienceEntry};
pub use service::{service_csv, service_table, ServiceTenantRow};
pub use table::{Align, Table};
pub use telemetry::{
    counter_table, cycle_breakdown, telemetry_csv, telemetry_json, telemetry_table,
    HistogramSummary, TelemetrySummary,
};
pub use trace::{chrome_trace, TraceTrack};
pub use trajectory::{trajectory_csv, trajectory_table, TrajectoryRow};

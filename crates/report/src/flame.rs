//! Flamegraph aggregation over profiled span trees.
//!
//! Consumes the plain-data rows produced by the machine crate's
//! `SpanProfile::rows()` — `(label, start, end, parent index)` in record
//! order, parents before children — and renders them as folded stacks
//! (the `flamegraph.pl` input format, one `root;child;leaf <weight>`
//! line per distinct stack), as a self-time/total-time aggregation
//! table, and as CSV.  Weights are whatever unit the profile was
//! stamped in (machine cycles or nanoseconds); the renderers never
//! rescale.

use crate::csv::CsvWriter;
use crate::table::{Align, Table};
use std::collections::BTreeMap;

/// One profiled span as plain data: `(label, start, end, parent index)`.
pub type SpanRow = (String, u64, u64, Option<usize>);

/// Inclusive duration of a row.
fn extent(row: &SpanRow) -> u64 {
    row.2 - row.1
}

/// Self time per row: its extent minus the extents of its direct
/// children (saturating, so a malformed tree cannot underflow).
fn self_times(rows: &[SpanRow]) -> Vec<u64> {
    let mut selfs: Vec<u64> = rows.iter().map(extent).collect();
    for row in rows {
        if let Some(p) = row.3 {
            selfs[p] = selfs[p].saturating_sub(extent(row));
        }
    }
    selfs
}

/// The `;`-joined stack path from the root down to `idx`.
fn stack_path(rows: &[SpanRow], idx: usize) -> String {
    let mut chain = vec![idx];
    let mut cursor = idx;
    while let Some(p) = rows[cursor].3 {
        chain.push(p);
        cursor = p;
    }
    chain
        .iter()
        .rev()
        .map(|&i| rows[i].0.as_str())
        .collect::<Vec<_>>()
        .join(";")
}

/// Folded-stack lines for `flamegraph.pl`-style tools: one
/// `stack;path weight` line per distinct stack, weighted by **self**
/// time and aggregated across repeated occurrences (an event-driven
/// run re-enters `slice` once per warp).  Zero-weight stacks are
/// skipped; lines are sorted for deterministic output.
pub fn folded_stacks(rows: &[SpanRow]) -> String {
    let selfs = self_times(rows);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, weight) in selfs.iter().enumerate() {
        if *weight == 0 {
            continue;
        }
        *folded.entry(stack_path(rows, i)).or_insert(0) += weight;
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Per-phase totals aggregated by stack path:
/// `(stack, calls, total, self)`, sorted by descending self time.
pub fn flame_rows(rows: &[SpanRow]) -> Vec<(String, u64, u64, u64)> {
    let selfs = self_times(rows);
    let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for i in 0..rows.len() {
        let e = agg.entry(stack_path(rows, i)).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += extent(&rows[i]);
        e.2 += selfs[i];
    }
    let mut list: Vec<(String, u64, u64, u64)> = agg
        .into_iter()
        .map(|(stack, (calls, total, own))| (stack, calls, total, own))
        .collect();
    list.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
    list
}

/// Self-time/total-time aggregation as an ASCII table.  `unit` names
/// the weight column (`"cycles"`, `"ns"`).
pub fn flame_table(rows: &[SpanRow], unit: &str) -> Table {
    let grand: u64 = self_times(rows).iter().sum();
    let mut t = Table::new(vec![
        "stack".to_owned(),
        "calls".to_owned(),
        format!("total {unit}"),
        format!("self {unit}"),
        "self %".to_owned(),
    ])
    .with_title(format!("span profile — {grand} {unit} across leaves"))
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (stack, calls, total, own) in flame_rows(rows) {
        let pct = if grand == 0 {
            0.0
        } else {
            100.0 * own as f64 / grand as f64
        };
        t.push_row(vec![
            stack,
            calls.to_string(),
            total.to_string(),
            own.to_string(),
            format!("{pct:.1}"),
        ]);
    }
    t
}

/// The aggregation as CSV (`stack,calls,total,self`).
pub fn flame_csv(rows: &[SpanRow]) -> String {
    let mut w = CsvWriter::new();
    w.header(&["stack", "calls", "total", "self"]);
    for (stack, calls, total, own) in flame_rows(rows) {
        w.row(&[stack, calls.to_string(), total.to_string(), own.to_string()]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// run[0,100] > slice[0,60], warp[60,70], slice[70,100] — an
    /// event-driven shape with a repeated leaf stack.
    fn sample() -> Vec<SpanRow> {
        vec![
            ("run".to_owned(), 0, 100, None),
            ("slice".to_owned(), 0, 60, Some(0)),
            ("warp".to_owned(), 60, 70, Some(0)),
            ("slice".to_owned(), 70, 100, Some(0)),
        ]
    }

    #[test]
    fn folded_stacks_aggregate_repeated_leaves() {
        let text = folded_stacks(&sample());
        assert_eq!(text, "run;slice 90\nrun;warp 10\n");
    }

    #[test]
    fn self_time_subtracts_children() {
        let rows = sample();
        let agg = flame_rows(&rows);
        // run has zero self time (fully covered by leaves) but still
        // appears with its total.
        let run = agg.iter().find(|r| r.0 == "run").unwrap();
        assert_eq!((run.1, run.2, run.3), (1, 100, 0));
        let slice = agg.iter().find(|r| r.0 == "run;slice").unwrap();
        assert_eq!((slice.1, slice.2, slice.3), (2, 90, 90));
        // Sorted by descending self time: slice first.
        assert_eq!(agg[0].0, "run;slice");
    }

    #[test]
    fn table_and_csv_render_totals() {
        let rows = sample();
        let rendered = flame_table(&rows, "cycles").render_ascii();
        assert!(rendered.contains("100 cycles across leaves"));
        assert!(rendered.contains("run;warp"));
        let csv = flame_csv(&rows);
        assert!(csv.starts_with("stack,calls,total,self"));
        assert!(csv.contains("run;slice,2,90,90"));
    }

    #[test]
    fn empty_profile_renders_empty() {
        assert_eq!(folded_stacks(&[]), "");
        assert!(flame_table(&[], "ns")
            .render_ascii()
            .contains("0 ns across leaves"));
    }
}

//! Rendering for perf-history trajectory and triage reports.
//!
//! The bench crate's history store reduces "counter X of benchmark Y
//! across all stored commits" to plain pre-formatted [`TrajectoryRow`]s
//! (same pattern as [`crate::regression`]); this module renders them as
//! the ASCII/markdown table and RFC-4180 CSV that `bench_history`
//! prints.

use crate::csv::CsvWriter;
use crate::table::{Align, Table};

/// One commit's point on a trajectory — plain data, pre-formatted
/// values (`value` is `-` when the benchmark or counter is absent from
/// that artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryRow {
    /// Append sequence number in the store (`000042`).
    pub seq: String,
    /// Commit id the artifact was recorded at.
    pub commit: String,
    /// The counter value at that commit, formatted.
    pub value: String,
    /// Delta against the previous point, formatted (`+1.2%`, `-3`,
    /// `-` for the first point).
    pub delta: String,
    /// Triage bucket of that delta (`relevant`, `probably-relevant`,
    /// `noise`, `-` for the first point).
    pub triage: String,
}

/// The trajectory report table.
pub fn trajectory_table(benchmark: &str, counter: &str, rows: &[TrajectoryRow]) -> Table {
    let mut table = Table::new(vec!["seq", "commit", "value", "delta", "triage"])
        .with_title(format!("trajectory of {counter} for {benchmark}"))
        .with_aligns(vec![
            Align::Right,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Left,
        ]);
    for row in rows {
        table.push_row(vec![
            row.seq.clone(),
            row.commit.clone(),
            row.value.clone(),
            row.delta.clone(),
            row.triage.clone(),
        ]);
    }
    table
}

/// The trajectory as CSV (header + one line per stored commit).
pub fn trajectory_csv(benchmark: &str, counter: &str, rows: &[TrajectoryRow]) -> String {
    let mut csv = CsvWriter::new();
    csv.header(&[
        "benchmark",
        "counter",
        "seq",
        "commit",
        "value",
        "delta",
        "triage",
    ]);
    for row in rows {
        csv.row(&[
            benchmark,
            counter,
            &row.seq,
            &row.commit,
            &row.value,
            &row.delta,
            &row.triage,
        ]);
    }
    csv.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<TrajectoryRow> {
        vec![
            TrajectoryRow {
                seq: "000001".into(),
                commit: "aaa".into(),
                value: "100".into(),
                delta: "-".into(),
                triage: "-".into(),
            },
            TrajectoryRow {
                seq: "000002".into(),
                commit: "bbb".into(),
                value: "120".into(),
                delta: "+20.0%".into(),
                triage: "relevant".into(),
            },
        ]
    }

    #[test]
    fn table_titles_the_query_and_lists_every_point() {
        let rendered = trajectory_table("machine/x", "cycles", &rows()).render_ascii();
        assert!(rendered.contains("trajectory of cycles for machine/x"));
        assert!(rendered.contains("000002"));
        assert!(rendered.contains("relevant"));
        let markdown = trajectory_table("machine/x", "cycles", &rows()).render_markdown();
        assert!(markdown.contains("| 000001"));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_point() {
        let csv = trajectory_csv("machine/x", "cycles", &rows());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("benchmark,counter,seq,"));
        assert!(csv.contains("machine/x,cycles,000002,bbb,120,+20.0%,relevant"));
    }
}

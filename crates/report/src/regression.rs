//! Rendering for the bench regression gate.
//!
//! The bench crate diffs two `BENCH_*.json` artifacts and reduces the
//! result to plain [`RegressionRow`]s; this module renders them as the
//! ASCII/markdown report `bench_compare` prints.  Severity semantics
//! (the gating policy, see EXPERIMENTS.md):
//!
//! * **hard** — a deterministic counter changed.  The engines are
//!   deterministic, so this is a real behavioral change that must be
//!   acknowledged (by fixing it or re-recording the baseline);
//!   `bench_compare` exits non-zero.
//! * **soft** — a wall-time delta beyond the measured noise floor.
//!   Flagged for a human, never fails the gate on its own.
//! * **info** — context (new benchmarks, machine-local wall notes).

use crate::table::{Align, Table};

/// How serious one regression row is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Deterministic change — fails the gate.
    Hard,
    /// Wall-time drift beyond the noise floor — flagged only.
    Soft,
    /// Informational.
    Info,
}

impl Severity {
    /// Stable label used in the report column.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Hard => "HARD",
            Severity::Soft => "soft",
            Severity::Info => "info",
        }
    }
}

/// One row of the regression report — plain data, pre-formatted values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegressionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric that moved (`counter cycles`, `wall p50`, ...).
    pub metric: String,
    /// Baseline value, already formatted.
    pub baseline: String,
    /// Current value, already formatted.
    pub current: String,
    /// Delta, already formatted (`+12`, `-3.1%`, ...).
    pub delta: String,
    /// Gate severity.
    pub severity: Severity,
}

/// The regression report table, hard rows first.
pub fn regression_table(rows: &[RegressionRow]) -> Table {
    let mut sorted: Vec<&RegressionRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        a.severity
            .cmp(&b.severity)
            .then_with(|| a.benchmark.cmp(&b.benchmark))
            .then_with(|| a.metric.cmp(&b.metric))
    });
    let mut table = Table::new(vec![
        "severity",
        "benchmark",
        "metric",
        "baseline",
        "current",
        "delta",
    ])
    .with_title("bench regression report")
    .with_aligns(vec![
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in sorted {
        table.push_row(vec![
            row.severity.label().to_owned(),
            row.benchmark.clone(),
            row.metric.clone(),
            row.baseline.clone(),
            row.current.clone(),
            row.delta.clone(),
        ]);
    }
    table
}

/// The one-line verdict under the table.
pub fn regression_summary(benchmarks: usize, hard: usize, soft: usize, info: usize) -> String {
    if hard == 0 && soft == 0 {
        format!(
            "OK: {benchmarks} benchmarks, deterministic counters unchanged, \
             wall times within noise ({info} notes)"
        )
    } else if hard == 0 {
        format!(
            "OK (with drift): {benchmarks} benchmarks, counters unchanged; \
             {soft} wall-time deltas beyond the noise floor ({info} notes)"
        )
    } else {
        format!(
            "FAIL: {hard} hard (deterministic) regressions over {benchmarks} benchmarks; \
             {soft} wall-time flags ({info} notes) — fix the change or re-record the baseline"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(severity: Severity, benchmark: &str, metric: &str) -> RegressionRow {
        RegressionRow {
            benchmark: benchmark.into(),
            metric: metric.into(),
            baseline: "1".into(),
            current: "2".into(),
            delta: "+1".into(),
            severity,
        }
    }

    #[test]
    fn hard_rows_sort_first() {
        let rows = vec![
            row(Severity::Info, "b", "note"),
            row(Severity::Hard, "z", "counter cycles"),
            row(Severity::Soft, "a", "wall p50"),
        ];
        let rendered = regression_table(&rows).render_ascii();
        let hard_at = rendered.find("HARD").unwrap();
        let soft_at = rendered.find("soft").unwrap();
        let info_at = rendered.find("info").unwrap();
        assert!(hard_at < soft_at && soft_at < info_at);
        assert!(rendered.contains("counter cycles"));
    }

    #[test]
    fn summary_states_the_verdict() {
        assert!(regression_summary(12, 0, 0, 0).starts_with("OK:"));
        assert!(regression_summary(12, 0, 2, 1).starts_with("OK (with drift)"));
        let fail = regression_summary(12, 3, 1, 0);
        assert!(fail.starts_with("FAIL: 3 hard"));
    }

    #[test]
    fn markdown_backend_renders_too() {
        let table = regression_table(&[row(Severity::Hard, "m", "counter cycles")]);
        assert!(table.render_markdown().contains("| HARD"));
    }
}

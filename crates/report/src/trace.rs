//! Chrome trace-event JSON export for profiled span trees.
//!
//! Renders `SpanRow` data (see [`crate::flame`]) into the Trace Event
//! Format consumed by `chrome://tracing` and Perfetto: complete events
//! (`"ph":"X"`) for spans, instant events (`"ph":"i"`) for marks, and
//! metadata events naming processes and threads.  Timestamps are in
//! microseconds; callers pass a `scale` converting their raw stamp unit
//! into µs (`1.0` for a cycle-domain trace viewed as 1 cycle = 1 µs,
//! `1e-3` for nanosecond stamps).

use crate::flame::SpanRow;
use crate::json::Json;

/// One named track (process/thread pair) of spans and marks.
#[derive(Debug, Clone, Default)]
pub struct TraceTrack {
    /// Process id (groups tracks in the viewer).
    pub pid: u64,
    /// Thread id (one row in the viewer).
    pub tid: u64,
    /// Human name shown on the track.
    pub name: String,
    /// Spans as `(label, start, end, parent)` rows.
    pub spans: Vec<SpanRow>,
    /// Instant marks as `(label, stamp)` pairs.
    pub marks: Vec<(String, u64)>,
    /// Multiplier from raw stamps to microseconds.
    pub scale: f64,
}

/// Render tracks into a Trace Event Format document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace(tracks: &[TraceTrack]) -> Json {
    let mut events = Vec::new();
    for track in tracks {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::int(track.pid as i64)),
            ("tid", Json::int(track.tid as i64)),
            (
                "args",
                Json::obj(vec![("name", Json::str(track.name.clone()))]),
            ),
        ]));
        for (label, start, end, _) in &track.spans {
            events.push(Json::obj(vec![
                ("name", Json::str(label.clone())),
                ("cat", Json::str("span")),
                ("ph", Json::str("X")),
                ("ts", Json::Num(*start as f64 * track.scale)),
                ("dur", Json::Num((end - start) as f64 * track.scale)),
                ("pid", Json::int(track.pid as i64)),
                ("tid", Json::int(track.tid as i64)),
            ]));
        }
        for (label, stamp) in &track.marks {
            events.push(Json::obj(vec![
                ("name", Json::str(label.clone())),
                ("cat", Json::str("mark")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", Json::Num(*stamp as f64 * track.scale)),
                ("pid", Json::int(track.pid as i64)),
                ("tid", Json::int(track.tid as i64)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track() -> TraceTrack {
        TraceTrack {
            pid: 1,
            tid: 7,
            name: "machine".to_owned(),
            spans: vec![
                ("run".to_owned(), 0, 100, None),
                ("slice".to_owned(), 0, 100, Some(0)),
            ],
            marks: vec![("barrier".to_owned(), 40)],
            scale: 1.0,
        }
    }

    #[test]
    fn emits_metadata_complete_and_instant_events() {
        let text = chrome_trace(&[track()]).emit();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":100"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ts\":40"));
    }

    #[test]
    fn scale_converts_raw_stamps_to_microseconds() {
        let mut t = track();
        t.scale = 1e-3; // nanosecond stamps
        let text = chrome_trace(&[t]).emit();
        assert!(text.contains("\"dur\":0.1"), "text: {text}");
        assert!(text.contains("\"ts\":0.04"), "text: {text}");
    }

    #[test]
    fn empty_track_list_is_still_a_valid_document() {
        assert_eq!(
            chrome_trace(&[]).emit(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}

//! Property-style tests for the renderers: CSV round-trips on arbitrary
//! cell content and structural invariants of the table/chart output.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_model::rng::{sweep_cases, XorShift64};
use skilltax_report::csv::{escape_field, parse, CsvWriter};
use skilltax_report::{ascii_bar_chart, svg_bar_chart, Align, Bar, Table};

/// A string of up to `max_len` characters that stresses the CSV escaper:
/// letters plus commas, quotes, newlines and other punctuation.
fn tricky_string(rng: &mut XorShift64, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', ',', '"', '\'', '\n', '\r', '\t', ';', '|', '-',
        '.', 'é', '→',
    ];
    let len = rng.below_usize(max_len + 1);
    (0..len).map(|_| *rng.pick(ALPHABET)).collect()
}

/// A printable-ASCII string of up to `max_len` characters.
fn printable_string(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.below_usize(max_len + 1);
    (0..len)
        .map(|_| (rng.range_u64(0x20, 0x7F) as u8) as char)
        .collect()
}

/// A non-empty alphabetic identifier.
fn word(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.range_usize(1, max_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

#[test]
fn csv_round_trips_arbitrary_cells() {
    sweep_cases(0x3E0, 256, |case, rng| {
        let rows: Vec<Vec<String>> = (0..rng.range_usize(1, 8))
            .map(|_| {
                (0..rng.range_usize(1, 5))
                    .map(|_| tricky_string(rng, 24))
                    .collect()
            })
            .collect();
        // Normalise: writer requires rectangular rows if a header is set,
        // so pad to the widest row.
        let width = rows.iter().map(Vec::len).max().unwrap();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            .collect();
        let mut w = CsvWriter::new();
        for row in &rows {
            w.row(row);
        }
        let parsed = parse(&w.finish());
        assert_eq!(parsed.len(), rows.len(), "case {case}");
        for (got, want) in parsed.iter().zip(&rows) {
            assert_eq!(got, want, "case {case}");
        }
    });
}

#[test]
fn escaped_fields_never_break_row_structure() {
    sweep_cases(0x3E1, 256, |case, rng| {
        let field = tricky_string(rng, 40);
        let escaped = escape_field(&field);
        let line = format!("{escaped},{escaped}\r\n");
        let parsed = parse(&line);
        assert_eq!(parsed.len(), 1, "case {case}: {field:?}");
        assert_eq!(parsed[0].len(), 2, "case {case}: {field:?}");
        assert_eq!(&parsed[0][0], &field, "case {case}");
    });
}

#[test]
fn ascii_tables_have_rectangular_output() {
    sweep_cases(0x3E2, 256, |case, rng| {
        let headers: Vec<String> = (0..rng.range_usize(1, 5)).map(|_| word(rng, 10)).collect();
        let n = headers.len();
        let align = *rng.pick(&[Align::Left, Align::Right, Align::Center]);
        let mut table = Table::new(headers).with_aligns(vec![align; n]);
        for _ in 0..rng.below_usize(6) {
            let row: Vec<String> = (0..rng.range_usize(1, 5))
                .map(|_| printable_string(rng, 12))
                .collect();
            table.push_row(row);
        }
        let text = table.render_ascii();
        let lines: Vec<&str> = text.lines().collect();
        // All lines equally wide, framed by +...+ separators.
        let width = lines[0].len();
        for line in &lines {
            assert_eq!(line.len(), width, "case {case}:\n{text}");
        }
        assert!(
            lines[0].starts_with('+') && lines[0].ends_with('+'),
            "case {case}"
        );
        assert!(lines.last().unwrap().starts_with('+'), "case {case}");
    });
}

#[test]
fn bar_charts_never_overflow_their_width() {
    sweep_cases(0x3E3, 256, |case, rng| {
        let bars: Vec<Bar> = (0..rng.range_usize(1, 10))
            .map(|i| Bar {
                label: format!("b{i}"),
                value: rng.range_f64(0.0, 1e6),
            })
            .collect();
        let width = rng.range_usize(5, 60);
        let text = ascii_bar_chart("t", &bars, width);
        for line in text.lines().skip(1) {
            assert!(line.matches('#').count() <= width, "case {case}: {line}");
        }
        // SVG emitter stays well-formed on the same data.
        let svg = svg_bar_chart("t", &bars);
        assert!(
            svg.starts_with("<svg") && svg.ends_with("</svg>"),
            "case {case}"
        );
        assert_eq!(svg.matches("<rect").count(), bars.len(), "case {case}");
    });
}

//! Property tests for the renderers: CSV round-trips on arbitrary cell
//! content and structural invariants of the table/chart output.

use proptest::prelude::*;

use skilltax_report::csv::{escape_field, parse, CsvWriter};
use skilltax_report::{ascii_bar_chart, svg_bar_chart, Align, Bar, Table};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn csv_round_trips_arbitrary_cells(
        rows in prop::collection::vec(
            prop::collection::vec(".{0,24}", 1..5),
            1..8,
        )
    ) {
        // Normalise: writer requires rectangular rows if a header is set,
        // so pad to the widest row.
        let width = rows.iter().map(Vec::len).max().unwrap();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            .collect();
        let mut w = CsvWriter::new();
        for row in &rows {
            w.row(row);
        }
        let parsed = parse(&w.finish());
        prop_assert_eq!(parsed.len(), rows.len());
        for (got, want) in parsed.iter().zip(&rows) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn escaped_fields_never_break_row_structure(field in ".{0,40}") {
        let escaped = escape_field(&field);
        let line = format!("{escaped},{escaped}\r\n");
        let parsed = parse(&line);
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].len(), 2);
        prop_assert_eq!(&parsed[0][0], &field);
    }

    #[test]
    fn ascii_tables_have_rectangular_output(
        headers in prop::collection::vec("[a-zA-Z]{1,10}", 1..5),
        rows in prop::collection::vec(prop::collection::vec("[ -~]{0,12}", 1..5), 0..6),
        width_align in 0usize..3,
    ) {
        let n = headers.len();
        let align = [Align::Left, Align::Right, Align::Center][width_align];
        let mut table = Table::new(headers).with_aligns(vec![align; n]);
        for row in rows {
            table.push_row(row);
        }
        let text = table.render_ascii();
        let lines: Vec<&str> = text.lines().collect();
        // All lines equally wide, framed by +...+ separators.
        let width = lines[0].len();
        for line in &lines {
            prop_assert_eq!(line.len(), width, "{}", text);
        }
        prop_assert!(lines[0].starts_with('+') && lines[0].ends_with('+'));
        prop_assert!(lines.last().unwrap().starts_with('+'));
    }

    #[test]
    fn bar_charts_never_overflow_their_width(
        values in prop::collection::vec(0.0f64..1e6, 1..10),
        width in 5usize..60,
    ) {
        let bars: Vec<Bar> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Bar { label: format!("b{i}"), value: v })
            .collect();
        let text = ascii_bar_chart("t", &bars, width);
        for line in text.lines().skip(1) {
            prop_assert!(line.matches('#').count() <= width, "{line}");
        }
        // SVG emitter stays well-formed on the same data.
        let svg = svg_bar_chart("t", &bars);
        prop_assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<rect").count(), bars.len());
    }
}

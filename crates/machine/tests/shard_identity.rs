//! Differential tests for the shard-parallel runners (DESIGN.md §10):
//! every machine family that shards must produce exactly the same
//! [`Stats`], the same errors (including embedded partial stats), and the
//! same per-event-class totals whether it runs single-threaded or split
//! across worker shards — on success paths, fault paths, and error paths
//! alike.
//!
//! `with_shards(1)` is the single-threaded baseline; `2` and `8` force
//! fixed shard counts, and `0` resolves through `SKILLTAX_THREADS` /
//! `available_parallelism` — the CI harness re-runs this binary with the
//! override pinned to 1, 2 and 8 (scripts/verify.sh) so "auto" is
//! exercised at several widths regardless of the host.

use skilltax_machine::fault::FaultPlan;
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::workload::{
    run_backoff_storm_backward_multi_sharded, run_fabric_counters_traced,
    run_mimd_stagger_multi_sharded, run_ring_shift_multi_traced, run_stagger_spatial_sharded,
};
use skilltax_machine::{
    Assembler, Instr, MachineError, NullTracer, Program, Stats, Telemetry, Word,
};

/// Shard widths compared against the single-threaded baseline.
const WIDTHS: [usize; 3] = [2, 8, 0];

/// Run a closure once single-threaded and once per shard width, asserting
/// identical outcomes: equal [`Stats`] on success, equal errors on
/// failure, and equal event-class totals either way.
fn assert_shard_twin<F>(label: &str, mut run: F)
where
    F: FnMut(usize, &mut Telemetry) -> Result<Stats, MachineError>,
{
    let mut base_telemetry = Telemetry::new();
    let base = run(1, &mut base_telemetry);
    for shards in WIDTHS {
        let mut sharded_telemetry = Telemetry::new();
        let sharded = run(shards, &mut sharded_telemetry);
        match (&base, &sharded) {
            (Ok(b), Ok(s)) => assert_eq!(b, s, "{label} x{shards}: stats diverged"),
            _ => assert_eq!(
                format!("{base:?}"),
                format!("{sharded:?}"),
                "{label} x{shards}: outcomes diverged"
            ),
        }
        assert_eq!(
            base_telemetry.trace.class_counts(),
            sharded_telemetry.trace.class_counts(),
            "{label} x{shards}: event-class totals diverged"
        );
    }
}

/// Count to `iters` and halt (no memory traffic).
fn spin_program(iters: Word) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

// -------------------------------------------------------------------------
// Multi-processor (IMP)
// -------------------------------------------------------------------------

#[test]
fn multi_stagger_shard_identity_across_sizes() {
    for cores in [4usize, 16, 64] {
        assert_shard_twin(&format!("multi stagger {cores}"), |shards, t| {
            run_mimd_stagger_multi_sharded(cores, 200, shards, t).map(|r| r.stats)
        });
    }
}

#[test]
fn multi_stagger_shard_outputs_identical() {
    let base = run_mimd_stagger_multi_sharded(16, 120, 1, &mut NullTracer).unwrap();
    for shards in WIDTHS {
        let sharded = run_mimd_stagger_multi_sharded(16, 120, shards, &mut NullTracer).unwrap();
        assert_eq!(base, sharded, "x{shards}");
    }
}

#[test]
fn multi_ring_shift_delivers_across_shard_boundaries() {
    for cores in [4usize, 16, 48] {
        assert_shard_twin(&format!("ring shift {cores}"), |shards, t| {
            run_ring_shift_multi_traced(cores, shards, t).map(|r| r.stats)
        });
        // Every core but the last receives its upstream neighbour's value
        // no matter how the ring is cut.
        for shards in WIDTHS {
            let run = run_ring_shift_multi_traced(cores, shards, &mut NullTracer).unwrap();
            for (i, &v) in run.outputs.iter().enumerate() {
                let expected = if i + 1 == cores {
                    0
                } else {
                    100 + (i as Word) + 1
                };
                assert_eq!(v, expected, "core {i} of {cores} x{shards}");
            }
        }
    }
}

#[test]
fn multi_backoff_storm_shard_identity() {
    // The 1→0 outage makes the sender back off and retry under the
    // barrier protocol: the fault path (link_down, retries, backoff
    // samples, faults_injected) must shard bit-identically.
    assert_shard_twin("backward backoff storm", |shards, t| {
        run_backoff_storm_backward_multi_sharded(3_000, 60, shards, t).map(|r| r.stats)
    });
    // A permanent outage exhausts the retry budget: error path.
    assert_shard_twin("backward retry exhausted", |shards, t| {
        run_backoff_storm_backward_multi_sharded(u64::MAX, 5, shards, t).map(|r| r.stats)
    });
}

#[test]
fn multi_watchdog_shard_identity_with_partial_stats() {
    assert_shard_twin("watchdog all running", |shards, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 4, 4)
            .with_cycle_limit(100)
            .with_shards(shards);
        m.run_traced(&vec![spin_program(10_000); 4], t)
    });
    // One core spinning, one parked on a receive that never comes: the
    // blocked waiter's stall backlog must be settled through the limit.
    // The receive edge points backward (core 1 waits on core 0), so the
    // pair still shards.
    assert_shard_twin("watchdog with blocked waiter", |shards, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4)
            .with_cycle_limit(64)
            .with_shards(shards);
        let mut recv = Assembler::new();
        recv.emit(Instr::Recv(2, 0)).emit(Instr::Halt);
        m.run_traced(&[spin_program(10_000), recv.assemble().unwrap()], t)
    });
}

#[test]
fn multi_stall_storm_shard_identity() {
    // Transient stalls are a pure hash of (stall_seed, cycle, core), so
    // the dense reference, the single-threaded event scheduler and every
    // shard width must agree on the full RunOutcome — Stats including the
    // stall total, faults_injected — and on the per-event-class telemetry.
    let programs: Vec<Program> = (0..8).map(|i| spin_program(20 + 15 * i as Word)).collect();
    for rate in [0.2, 0.9] {
        let run = |dense: bool, shards: usize, t: &mut Telemetry| {
            let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 8, 4)
                .with_dense_reference(dense)
                .with_shards(shards);
            m.run_resilient_traced(&programs, FaultPlan::seeded(21).stall_dps(rate), t)
        };
        let mut base_telemetry = Telemetry::new();
        let base = run(true, 1, &mut base_telemetry);
        for (dense, shards) in [(false, 1), (false, 2), (false, 8), (false, 0)] {
            let mut telemetry = Telemetry::new();
            let outcome = run(dense, shards, &mut telemetry);
            assert_eq!(
                format!("{base:?}"),
                format!("{outcome:?}"),
                "stall rate {rate} x{shards}: outcomes diverged"
            );
            assert_eq!(
                base_telemetry.trace.class_counts(),
                telemetry.trace.class_counts(),
                "stall rate {rate} x{shards}: event-class totals diverged"
            );
        }
    }
}

#[test]
fn multi_stall_watchdog_shard_identity() {
    // Stalls held through a watchdog trip: the partial stats embedded in
    // the error must carry identical stall totals at every width.
    let programs = vec![spin_program(10_000); 8];
    let run = |dense: bool, shards: usize, t: &mut Telemetry| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 8, 4)
            .with_cycle_limit(60)
            .with_dense_reference(dense)
            .with_shards(shards);
        m.run_resilient_traced(&programs, FaultPlan::seeded(33).stall_dps(0.5), t)
    };
    let mut base_telemetry = Telemetry::new();
    let base = run(true, 1, &mut base_telemetry);
    assert!(matches!(base, Err(MachineError::WatchdogTimeout { .. })));
    for (dense, shards) in [(false, 1), (false, 2), (false, 8), (false, 0)] {
        let mut telemetry = Telemetry::new();
        let outcome = run(dense, shards, &mut telemetry);
        assert_eq!(
            format!("{base:?}"),
            format!("{outcome:?}"),
            "x{shards}: watchdog partials diverged"
        );
        assert_eq!(
            base_telemetry.trace.class_counts(),
            telemetry.trace.class_counts(),
            "x{shards}: event-class totals diverged"
        );
    }
}

#[test]
fn multi_deadlock_shard_identity() {
    // Mutual receives with no send anywhere: both schedulers must report
    // the same deadlock cycle.  Receive edges never forbid cuts, so the
    // pair splits across shards.
    assert_shard_twin("mutual recv deadlock", |shards, t| {
        let mut m =
            MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4).with_shards(shards);
        let programs: Vec<Program> = (0..2)
            .map(|i| {
                let mut asm = Assembler::new();
                asm.emit(Instr::Recv(1, 1 - i)).emit(Instr::Halt);
                asm.assemble().unwrap()
            })
            .collect();
        m.run_traced(&programs, t)
    });
}

#[test]
fn multi_forward_edges_fall_back_identically() {
    // Even cores send to their odd neighbour (forward edges), which
    // forbids every cut of a 2-core machine: `with_shards` must quietly
    // fall back to the event scheduler and still agree with the baseline.
    let pair_programs = |n: usize| -> Vec<Program> {
        (0..n)
            .map(|i| {
                let peer = i ^ 1;
                let mut asm = Assembler::new();
                if i % 2 == 0 {
                    asm.movi(2, i as Word);
                    asm.emit(Instr::Send(peer, 2)).emit(Instr::Halt);
                } else {
                    asm.emit(Instr::Recv(2, peer)).emit(Instr::Halt);
                }
                asm.assemble().unwrap()
            })
            .collect()
    };
    assert_shard_twin("forward send fallback", |shards, t| {
        let mut m =
            MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4).with_shards(shards);
        m.run_traced(&pair_programs(2), t)
    });
}

// -------------------------------------------------------------------------
// Spatial (ISP)
// -------------------------------------------------------------------------

#[test]
fn spatial_stagger_shard_identity_across_sizes() {
    for cores in [4usize, 16, 48] {
        assert_shard_twin(&format!("spatial stagger {cores}"), |shards, t| {
            run_stagger_spatial_sharded(cores, 300, shards, t).map(|r| r.stats)
        });
    }
}

#[test]
fn spatial_fused_groups_shard_identity() {
    // Two fused pairs with contiguous lanes: the group boundary is a
    // legal cut, so each pair runs on its own worker.
    assert_shard_twin("spatial fused pairs", |shards, t| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_shards(shards);
        m.fuse(0, 1).unwrap();
        m.fuse(2, 3).unwrap();
        let programs = vec![
            spin_program(10),
            spin_program(1), // follower: ignored
            spin_program(40),
            spin_program(1), // follower: ignored
        ];
        m.run_traced(&programs, t)
    });
}

#[test]
fn spatial_watchdog_shard_identity() {
    assert_shard_twin("spatial watchdog", |shards, t| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_cycle_limit(30)
        .with_shards(shards);
        m.run_traced(&vec![spin_program(1_000); 4], t)
    });
}

#[test]
fn spatial_unsupported_instruction_shard_identity() {
    // A fused group whose leader issues an explicit Send errors out; the
    // error (and how much of the cycle committed before it) must not
    // depend on which worker found it.
    assert_shard_twin("spatial unsupported send", |shards, t| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(2).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_shards(shards);
        m.fuse(0, 1).unwrap();
        m.fuse(2, 3).unwrap();
        let mut bad = Assembler::new();
        bad.movi(0, 1).emit(Instr::Send(3, 0)).emit(Instr::Halt);
        let programs = vec![
            spin_program(10),
            spin_program(1),
            bad.assemble().unwrap(),
            spin_program(1),
        ];
        m.run_traced(&programs, t)
    });
}

// -------------------------------------------------------------------------
// Universal fabric (USP)
// -------------------------------------------------------------------------

#[test]
fn fabric_counters_shard_identity() {
    for regions in [2usize, 5, 9] {
        assert_shard_twin(&format!("fabric counters {regions}"), |shards, t| {
            run_fabric_counters_traced(regions, shards, 1_000, t).map(|r| r.stats)
        });
        // Outputs: every region's chain has gone high.
        for shards in WIDTHS {
            let run = run_fabric_counters_traced(regions, shards, 1_000, &mut NullTracer).unwrap();
            assert_eq!(run.outputs, vec![1; regions], "x{shards}");
            assert_eq!(run.stats.cycles, regions as u64, "x{shards}");
        }
    }
}

#[test]
fn fabric_watchdog_shard_identity() {
    // A limit below the longest chain's depth trips the watchdog with
    // identical partial stats at every shard width.
    assert_shard_twin("fabric watchdog", |shards, t| {
        run_fabric_counters_traced(6, shards, 4, t).map(|r| r.stats)
    });
}

//! Differential tests for the event-driven schedulers (DESIGN.md §9):
//! every machine family must produce exactly the same [`Stats`] and the
//! same per-event-class totals whether it runs its event-driven loop or
//! the dense per-cycle reference (`with_dense_reference(true)`), on
//! success paths *and* on error paths — deadlock, watchdog timeouts with
//! partial stats, and retry exhaustion.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::dataflow::graph::library::tree_sum;
use skilltax_machine::dataflow::{DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::universal::{
    program_counter, Bitstream, CellConfig, LutCell, LutFabric, Source,
};
use skilltax_machine::workload::{
    run_backoff_storm_multi_traced, run_mimd_stagger_multi_traced, run_reduce_dataflow_with,
    run_stagger_spatial_traced,
};
use skilltax_machine::{
    Assembler, FaultPlan, Instr, MachineError, NullTracer, Program, Stats, Telemetry, Word,
};

/// Run a closure once per scheduler and assert identical outcomes: equal
/// [`Stats`] on success, equal errors (including embedded partial stats)
/// on failure, and equal event-class totals either way.
fn assert_twin<F>(label: &str, mut run: F)
where
    F: FnMut(bool, &mut Telemetry) -> Result<Stats, MachineError>,
{
    let mut event_telemetry = Telemetry::new();
    let mut dense_telemetry = Telemetry::new();
    let event = run(false, &mut event_telemetry);
    let dense = run(true, &mut dense_telemetry);
    match (&event, &dense) {
        (Ok(e), Ok(d)) => assert_eq!(e, d, "{label}: stats diverged"),
        _ => assert_eq!(
            format!("{event:?}"),
            format!("{dense:?}"),
            "{label}: outcomes diverged"
        ),
    }
    assert_eq!(
        event_telemetry.trace.class_counts(),
        dense_telemetry.trace.class_counts(),
        "{label}: event-class totals diverged"
    );
}

/// Count to `iters` and halt (no memory traffic).
fn spin_program(iters: Word) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

// -------------------------------------------------------------------------
// Multi-processor (IMP)
// -------------------------------------------------------------------------

#[test]
fn multi_stagger_identity_across_sizes() {
    for cores in [4usize, 16, 64] {
        assert_twin(&format!("multi stagger {cores}"), |dense, t| {
            run_mimd_stagger_multi_traced(cores, 200, dense, t).map(|r| r.stats)
        });
    }
}

#[test]
fn multi_stagger_outputs_identical() {
    let event = run_mimd_stagger_multi_traced(16, 120, false, &mut NullTracer).unwrap();
    let dense = run_mimd_stagger_multi_traced(16, 120, true, &mut NullTracer).unwrap();
    assert_eq!(event, dense);
}

#[test]
fn multi_simd_identity() {
    assert_twin("multi simd", |dense, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 8, 4)
            .with_dense_reference(dense);
        m.run_simd_traced(&spin_program(32), t)
    });
}

#[test]
fn multi_blocked_receive_and_wake_identity() {
    // Even cores spin then send; odd cores block on the receive from the
    // start, so the event scheduler parks and later wakes them.
    let pair_programs = |n: usize| -> Vec<Program> {
        (0..n)
            .map(|i| {
                let peer = i ^ 1;
                let mut asm = Assembler::new();
                if i % 2 == 0 {
                    asm.movi(0, 9).movi(1, 0);
                    asm.label("spin").unwrap();
                    asm.emit(Instr::AddI(1, 1, 1));
                    asm.blt(1, 0, "spin");
                    asm.movi(2, i as Word);
                    asm.emit(Instr::Send(peer, 2)).emit(Instr::Halt);
                } else {
                    asm.emit(Instr::Recv(2, peer)).emit(Instr::Halt);
                }
                asm.assemble().unwrap()
            })
            .collect()
    };
    for cores in [2usize, 8] {
        assert_twin(&format!("blocked recv {cores}"), |dense, t| {
            let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), cores, 4)
                .with_dense_reference(dense);
            m.run_traced(&pair_programs(cores), t)
        });
    }
}

#[test]
fn multi_deadlock_identity() {
    assert_twin("mutual recv deadlock", |dense, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4)
            .with_dense_reference(dense);
        let programs: Vec<Program> = (0..2)
            .map(|i| {
                let mut asm = Assembler::new();
                asm.emit(Instr::Recv(1, 1 - i)).emit(Instr::Halt);
                asm.assemble().unwrap()
            })
            .collect();
        m.run_traced(&programs, t)
    });
}

#[test]
fn multi_watchdog_identity_with_partial_stats() {
    // All cores still running at the limit.
    assert_twin("watchdog all running", |dense, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 4, 4)
            .with_cycle_limit(100)
            .with_dense_reference(dense);
        m.run_traced(&vec![spin_program(10_000); 4], t)
    });
    // One core still running, one parked on a receive that never comes:
    // the blocked core's stall backlog must be settled through the limit.
    assert_twin("watchdog with blocked waiter", |dense, t| {
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4)
            .with_cycle_limit(64)
            .with_dense_reference(dense);
        let mut recv = Assembler::new();
        recv.emit(Instr::Recv(2, 0)).emit(Instr::Halt);
        m.run_traced(&[spin_program(10_000), recv.assemble().unwrap()], t)
    });
}

#[test]
fn multi_backoff_storm_identity() {
    // The sender's exponential backoff sleeps across the outage; the
    // event scheduler warps between attempts.
    assert_twin("backoff storm", |dense, t| {
        run_backoff_storm_multi_traced(3_000, 60, dense, t).map(|r| r.stats)
    });
    // A permanent outage exhausts the retry budget: error path.
    assert_twin("retry exhausted", |dense, t| {
        run_backoff_storm_multi_traced(u64::MAX, 5, dense, t).map(|r| r.stats)
    });
}

// -------------------------------------------------------------------------
// Spatial (ISP)
// -------------------------------------------------------------------------

#[test]
fn spatial_stagger_identity_across_sizes() {
    for cores in [4usize, 16, 48] {
        assert_twin(&format!("spatial stagger {cores}"), |dense, t| {
            run_stagger_spatial_traced(cores, 300, dense, t).map(|r| r.stats)
        });
    }
}

#[test]
fn spatial_fused_groups_identity() {
    assert_twin("spatial fused pairs", |dense, t| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_dense_reference(dense);
        m.fuse(0, 1).unwrap();
        m.fuse(2, 3).unwrap();
        let programs = vec![
            spin_program(10),
            spin_program(1), // follower: ignored
            spin_program(40),
            spin_program(1), // follower: ignored
        ];
        m.run_traced(&programs, t)
    });
}

#[test]
fn spatial_watchdog_identity() {
    assert_twin("spatial watchdog", |dense, t| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_cycle_limit(30)
        .with_dense_reference(dense);
        m.run_traced(&vec![spin_program(1_000); 4], t)
    });
}

// -------------------------------------------------------------------------
// Array (IAP)
// -------------------------------------------------------------------------

/// The lane-local vector-add kernel over bank layout `[a, b, c, _]`.
fn array_kernel() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0)
        .movi(1, 1)
        .movi(2, 2)
        .emit(Instr::Load(3, 0))
        .emit(Instr::Load(4, 1))
        .emit(Instr::Add(5, 3, 4))
        .emit(Instr::Store(2, 5))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

fn loaded_array(subtype: ArraySubtype, lanes: usize, dense: bool) -> ArrayMachine {
    let mut m = ArrayMachine::new(subtype, lanes, 4).with_dense_reference(dense);
    for lane in 0..lanes {
        m.memory_mut().bank_mut(lane).load(&[lane as Word, 7, 0, 0]);
    }
    m
}

#[test]
fn array_broadcast_identity() {
    for lanes in [4usize, 16, 64] {
        assert_twin(&format!("array vector add {lanes}"), |dense, t| {
            let mut m = loaded_array(ArraySubtype::I, lanes, dense);
            m.run_traced(&array_kernel(), t)
        });
    }
}

#[test]
fn array_masked_and_stalled_runs_identical() {
    // A dead lane shrinks the live set; a stall plan draws per-cycle
    // randomness.  Both must be invariant under the live-lane precompute
    // (identical RNG draw order via the short-circuiting `any`).
    let plans = [
        ("failed lane", FaultPlan::seeded(3).fail_dp(2)),
        ("stall rolls", FaultPlan::seeded(4).stall_dps(0.3)),
    ];
    for (label, plan) in plans {
        let run = |dense: bool| {
            let mut m = loaded_array(ArraySubtype::I, 8, dense);
            m.run_resilient(&array_kernel(), plan.clone())
        };
        assert_eq!(
            format!("{:?}", run(false)),
            format!("{:?}", run(true)),
            "{label}: outcomes diverged"
        );
    }
}

#[test]
fn array_watchdog_identity() {
    assert_twin("array watchdog", |dense, t| {
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4)
            .with_cycle_limit(25)
            .with_dense_reference(dense);
        m.run_traced(&spin_program(1_000), t)
    });
}

// -------------------------------------------------------------------------
// Dataflow (DUP / DMP)
// -------------------------------------------------------------------------

#[test]
fn dataflow_reduce_identity_across_shapes() {
    let cases = [
        (DataflowSubtype::Uni, 1usize, 32usize),
        (DataflowSubtype::III, 4, 64),
        (DataflowSubtype::IV, 2, 64),
        (DataflowSubtype::IV, 8, 256),
    ];
    for (subtype, dps, n) in cases {
        let data: Vec<Word> = (0..n as Word).collect();
        assert_twin(
            &format!("dataflow reduce {subtype:?}/{dps}dp/{n}"),
            |dense, t| run_reduce_dataflow_with(subtype, dps, &data, dense, t).map(|r| r.stats),
        );
    }
}

#[test]
fn dataflow_outputs_identical() {
    let data: Vec<Word> = (0..100).collect();
    let event =
        run_reduce_dataflow_with(DataflowSubtype::IV, 8, &data, false, &mut NullTracer).unwrap();
    let dense =
        run_reduce_dataflow_with(DataflowSubtype::IV, 8, &data, true, &mut NullTracer).unwrap();
    assert_eq!(event, dense);
}

#[test]
fn dataflow_watchdog_identity_with_partial_stats() {
    assert_twin("dataflow watchdog", |dense, t| {
        let m = DataflowMachine::new(DataflowSubtype::IV, 2)
            .unwrap()
            .with_cycle_limit(16)
            .with_dense_reference(dense);
        let g = tree_sum(64);
        let inputs: Vec<Word> = (0..64).collect();
        m.run_traced(&g, &inputs, &Placement::RoundRobin, t)
            .map(|r| r.stats)
    });
}

// -------------------------------------------------------------------------
// Universal fabric (USP)
// -------------------------------------------------------------------------

#[test]
fn fabric_incremental_step_matches_dense_over_many_edges() {
    let fabric = LutFabric::new(256, 4, 32);
    let bitstream = program_counter(&fabric, 8).unwrap();
    let mut incremental = fabric.configure(&bitstream).unwrap();
    let mut dense = fabric
        .configure(&bitstream)
        .unwrap()
        .with_dense_reference(true);
    // Alternate between free-running and branching inputs so the input
    // cache is invalidated mid-stream.
    let no_branch = vec![false; 9];
    let mut branch = vec![false; 9];
    branch[0] = true;
    branch[3] = true;
    for edge in 0..300 {
        let inputs = if (edge / 10) % 3 == 2 {
            &branch
        } else {
            &no_branch
        };
        let a = incremental.step(inputs).unwrap();
        let b = dense.step(inputs).unwrap();
        assert_eq!(a, b, "outputs diverged at edge {edge}");
        assert_eq!(
            incremental.state(),
            dense.state(),
            "FF state diverged at edge {edge}"
        );
    }
    incremental.reset();
    dense.reset();
    assert_eq!(
        incremental.step(&no_branch).unwrap(),
        dense.step(&no_branch).unwrap()
    );
}

#[test]
fn fabric_toggle_flip_flop_identity() {
    let xor2 = LutCell::new(2, vec![false, true, true, false]).unwrap();
    let bitstream = Bitstream {
        cells: vec![CellConfig {
            lut: xor2,
            inputs: vec![Source::Cell(0), Source::Primary(0)],
            registered: true,
        }],
        outputs: vec![Source::Cell(0)],
    };
    let fabric = LutFabric::new(4, 2, 1);
    let mut incremental = fabric.configure(&bitstream).unwrap();
    let mut dense = fabric
        .configure(&bitstream)
        .unwrap()
        .with_dense_reference(true);
    for edge in 0..40 {
        let enable = [edge % 3 != 0];
        assert_eq!(
            incremental.step(&enable).unwrap(),
            dense.step(&enable).unwrap(),
            "outputs diverged at edge {edge}"
        );
        assert_eq!(incremental.state(), dense.state());
    }
}

#[test]
fn fabric_run_until_identity() {
    let fabric = LutFabric::new(256, 4, 32);
    let bitstream = program_counter(&fabric, 8).unwrap();
    let no_branch = vec![false; 9];
    let value_of = |out: &[bool]| {
        out.iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i))
    };
    assert_twin("fabric pc run_until", |dense, t| {
        let mut pc = fabric
            .configure(&bitstream)
            .unwrap()
            .with_dense_reference(dense);
        pc.run_until_traced(&no_branch, 1_000, |out| value_of(out) == 50, t)
            .map(|(_, stats)| stats)
    });
    assert_twin("fabric watchdog", |dense, t| {
        let mut pc = fabric
            .configure(&bitstream)
            .unwrap()
            .with_dense_reference(dense);
        pc.run_until_traced(&no_branch, 32, |_| false, t)
            .map(|(_, stats)| stats)
    });
}

//! The span profiler's correctness contract, asserted end to end (the
//! profiling mirror of `tests/telemetry.rs`): for every machine family,
//! under dense, event-driven and sharded scheduling, the hierarchical
//! phase spans recorded by a [`SpanProfile`] are strictly nested,
//! monotonically stamped, and their **leaf** cycle extents sum exactly to
//! the run's [`Stats`] cycle total — on clean runs, on faulty resilient
//! runs, and on watchdog-tripped partial runs.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::dataflow::graph::library::tree_sum;
use skilltax_machine::dataflow::{DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::fault::{FaultPlan, LinkOutage};
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::profile::{Phase, Profiled, SpanProfile};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::telemetry::Telemetry;
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::workload::{
    run_backoff_storm_backward_multi_sharded, run_fabric_counters_traced,
};
use skilltax_machine::{Assembler, Instr, MachineError, Program, Word};

/// Count to `iters` and halt.
fn spin_program(iters: Word) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Per-lane SIMD program with DP–DP lane exchanges.
fn lane_exchange_program() -> Program {
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 100)
        .emit(Instr::Add(1, 1, 0))
        .movi(3, 0)
        .emit(Instr::GetLane(6, 3, 1))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Assert the full span contract against a run's cycle total:
/// every span closed, strict nesting (children inside parents, stamps
/// monotone), and leaf extents tiling `[0, cycles]` exactly.
fn assert_profile_reconciles(profile: &SpanProfile, cycles: u64, label: &str) {
    assert_eq!(profile.open_spans(), 0, "{label}: spans left open");
    let spans = profile.spans();
    assert!(!spans.is_empty(), "{label}: no spans recorded");
    for (i, s) in spans.iter().enumerate() {
        assert!(s.end >= s.start, "{label}: span {i} ends before it starts");
        if let Some(p) = s.parent {
            assert!(p < i, "{label}: span {i} parents forward");
            assert!(
                spans[p].start <= s.start && s.end <= spans[p].end,
                "{label}: span {i} ({:?}) escapes its parent ({:?})",
                s.phase,
                spans[p].phase
            );
            assert_eq!(s.depth, spans[p].depth + 1, "{label}: depth mismatch");
        } else {
            assert_eq!(s.depth, 0, "{label}: parentless span below root depth");
        }
    }
    // Leaves are disjoint and stamped monotonically in record order.
    let leaves: Vec<_> = spans.iter().filter(|s| !s.has_children).collect();
    for pair in leaves.windows(2) {
        assert!(
            pair[0].end <= pair[1].start,
            "{label}: leaf spans overlap: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    assert_eq!(
        profile.leaf_cycle_total(),
        cycles,
        "{label}: leaf extents do not tile the run"
    );
}

#[test]
fn uniprocessor_profile_reconciles_with_stats() {
    let mut m = UniProcessor::new(8);
    let mut p = SpanProfile::new();
    let stats = m.run_traced(&spin_program(16), &mut p).unwrap();
    p.seal();
    assert_profile_reconciles(&p, stats.cycles, "uniprocessor");
    let phases: Vec<Phase> = p.spans().iter().map(|s| s.phase).collect();
    assert_eq!(phases, vec![Phase::Run, Phase::Decode, Phase::Slice]);
}

#[test]
fn array_profile_reconciles_with_a_lanes_leaf() {
    let mut m = ArrayMachine::new(ArraySubtype::II, 4, 4);
    let mut p = SpanProfile::new();
    let stats = m.run_traced(&lane_exchange_program(), &mut p).unwrap();
    p.seal();
    assert_profile_reconciles(&p, stats.cycles, "array");
    assert!(
        p.spans().iter().any(|s| s.phase == Phase::Lanes),
        "array runs profile their SIMD broadcast loop as a Lanes span"
    );
    // The lane exchange delivered three messages, marked as instants.
    let delivered = p
        .mark_counts()
        .iter()
        .find(|(ph, _)| *ph == Phase::Delivery);
    assert!(
        delivered.is_none(),
        "array getlane is not a mailbox delivery"
    );
}

#[test]
fn multi_profile_reconciles_under_all_three_schedulers() {
    let programs: Vec<Program> = (0..8).map(|i| spin_program(20 + 15 * i as Word)).collect();
    for (label, dense, shards) in [
        ("multi dense", true, 1usize),
        ("multi event", false, 1),
        ("multi sharded", false, 2),
    ] {
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 8, 4)
            .with_dense_reference(dense)
            .with_shards(shards);
        let mut p = SpanProfile::new();
        let stats = m.run_traced(&programs, &mut p).unwrap();
        p.seal();
        assert_profile_reconciles(&p, stats.cycles, label);
    }
}

#[test]
fn multi_backoff_warp_spans_still_tile_the_run() {
    // A transient link outage puts the sender into exponential backoff:
    // the event and sharded schedulers time-warp over the sleep, which
    // must surface as Warp leaf spans that keep the tiling exact.
    let mut baseline = None;
    for (label, shards) in [("event", 1usize), ("sharded", 2)] {
        let mut p = SpanProfile::new();
        let run = run_backoff_storm_backward_multi_sharded(3_000, 60, shards, &mut p).unwrap();
        p.seal();
        assert_profile_reconciles(&p, run.stats.cycles, label);
        assert!(
            p.spans().iter().any(|s| s.phase == Phase::Warp),
            "{label}: backoff sleep should warp"
        );
        let warped: u64 = p
            .spans()
            .iter()
            .filter(|s| s.phase == Phase::Warp)
            .map(|s| s.extent())
            .sum();
        assert!(warped > 0, "{label}: warp spans cover no cycles");
        match baseline {
            None => baseline = Some((run.stats.cycles, warped)),
            Some(b) => assert_eq!(
                b,
                (run.stats.cycles, warped),
                "{label}: warp accounting diverged from the event scheduler"
            ),
        }
    }
}

#[test]
fn spatial_profile_reconciles_under_all_three_schedulers() {
    for (label, dense, shards) in [
        ("spatial dense", true, 1usize),
        ("spatial event", false, 1),
        ("spatial sharded", false, 2),
    ] {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_dense_reference(dense)
        .with_shards(shards);
        m.fuse(0, 1).unwrap();
        m.fuse(2, 3).unwrap();
        let programs = vec![
            spin_program(10),
            spin_program(1),
            spin_program(40),
            spin_program(1),
        ];
        let mut p = SpanProfile::new();
        let stats = m.run_traced(&programs, &mut p).unwrap();
        p.seal();
        assert_profile_reconciles(&p, stats.cycles, label);
        if shards > 1 {
            assert!(
                p.mark_counts().iter().any(|(ph, _)| *ph == Phase::Barrier),
                "sharded spatial runs mark their slice barriers"
            );
        }
    }
}

#[test]
fn dataflow_profile_reconciles_dense_and_event() {
    let g = tree_sum(8);
    let inputs: Vec<i64> = (1..=8).collect();
    for (label, dense) in [("dataflow dense", true), ("dataflow event", false)] {
        let m = DataflowMachine::new(DataflowSubtype::IV, 4)
            .unwrap()
            .with_dense_reference(dense);
        let mut p = SpanProfile::new();
        let run = m
            .run_traced(&g, &inputs, &Placement::RoundRobin, &mut p)
            .unwrap();
        assert_eq!(run.outputs, vec![36]);
        p.seal();
        assert_profile_reconciles(&p, run.stats.cycles, label);
    }
}

#[test]
fn fabric_profile_reconciles_plain_and_sharded() {
    for (label, shards) in [("fabric plain", 1usize), ("fabric sharded", 2)] {
        let mut p = SpanProfile::new();
        let run = run_fabric_counters_traced(3, shards, 64, &mut p).unwrap();
        p.seal();
        assert_profile_reconciles(&p, run.stats.cycles, label);
    }
}

#[test]
fn resilient_run_profiles_as_one_monotone_multi_root_timeline() {
    // IMP-X: a transient link outage plus a dead DP.  The main phase and
    // each degradation replay open their own root span; re-basing must
    // concatenate them so leaf extents still sum to the *accumulated*
    // cycle total, and the remap shows up as a Degrade mark.
    let subtype = MultiSubtype::from_code(0b1001).unwrap();
    let mut m = MultiMachine::new(subtype, 3, 8);
    let mut programs = {
        let mut sender = Assembler::new();
        sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
        let mut receiver = Assembler::new();
        receiver
            .emit(Instr::Recv(5, 0))
            .movi(6, 0)
            .emit(Instr::Store(6, 5))
            .emit(Instr::Halt);
        vec![sender.assemble().unwrap(), receiver.assemble().unwrap()]
    };
    programs.push(spin_program(4));
    let plan = FaultPlan::seeded(11)
        .fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: 6,
        })
        .fail_dp(2);
    let mut t = Profiled::new(Telemetry::new());
    let outcome = m.run_resilient_traced(&programs, plan, &mut t).unwrap();
    assert!(outcome.degraded && outcome.retries > 0);
    t.profile.seal();
    assert_profile_reconciles(&t.profile, outcome.stats.cycles, "resilient");
    let roots = t
        .profile
        .spans()
        .iter()
        .filter(|s| s.parent.is_none())
        .count();
    assert_eq!(roots, 2, "main phase plus one replay phase");
    assert!(t
        .profile
        .mark_counts()
        .iter()
        .any(|(ph, n)| *ph == Phase::Degrade && *n == 1));
    assert!(t
        .profile
        .mark_counts()
        .iter()
        .any(|(ph, _)| *ph == Phase::Retry));
    // The composed tracer still fed the event channel: telemetry
    // reconciles as before, off the same run.
    outcome.stats.reconcile(&t.inner.trace).unwrap();
}

#[test]
fn watchdog_partial_run_seals_at_the_high_water() {
    let mut m = UniProcessor::new(8).with_cycle_limit(50);
    let mut p = SpanProfile::new();
    let err = m.run_traced(&spin_program(10_000), &mut p).unwrap_err();
    assert!(matches!(err, MachineError::WatchdogTimeout { .. }));
    // The early return skipped the loop's own span exits; sealing closes
    // the open Run/Slice spans at the last stamped cycle — the budget.
    assert!(p.open_spans() > 0, "early return leaves spans open");
    p.seal();
    assert_profile_reconciles(&p, 50, "watchdog partial");
}

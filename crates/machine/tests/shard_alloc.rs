//! Steady-state allocation discipline for the sharded runners.
//!
//! The slice protocol recycles every buffer it owns (staged-op vectors,
//! outboxes, report slots swap via `mem::take`; the std `Mutex` lock is
//! allocation-free), so once a run is warm the per-cycle cost of the
//! barrier protocol is zero heap traffic.  This test pins that down with
//! a counting global allocator: quadrupling the cycle count of an
//! untraced sharded run must not change the allocation count at all —
//! every allocation is setup/teardown, none are per-cycle.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skilltax_machine::workload::run_mimd_stagger_multi_sharded;
use skilltax_machine::NullTracer;

/// The system allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-free wrapper: delegates every call to `System` verbatim and only
// adds a relaxed counter bump on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations attributable to one full sharded run of the staggered
/// workload with `long_iters` loop iterations on the long cores.
fn allocs_for(long_iters: i64) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let run = run_mimd_stagger_multi_sharded(16, long_iters, 2, &mut NullTracer).unwrap();
    assert!(run.stats.cycles > long_iters as u64);
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn sharded_steady_state_allocates_nothing_per_cycle() {
    // Warm up: thread-stack caches, environment lookups, lazy statics.
    for _ in 0..3 {
        allocs_for(400);
    }
    let short = allocs_for(400);
    let long = allocs_for(1_600);
    assert_eq!(
        short, long,
        "allocation count grew with cycle count: the slice loop is allocating per cycle"
    );
}

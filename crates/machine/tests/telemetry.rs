//! The telemetry layer's correctness contract, asserted end to end: for
//! every machine family, the cycle-stamped event totals recorded by a
//! tracer reconcile *exactly* with the run's [`Stats`] counters — on
//! clean runs, on faulty resilient runs, and regardless of how small the
//! trace's ring buffer is.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::dataflow::graph::library::tree_sum;
use skilltax_machine::dataflow::{DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::energy::EnergyModel;
use skilltax_machine::fault::{FaultPlan, LinkOutage};
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::isa::Instr;
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::program::{Assembler, Program};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::telemetry::{EventClass, EventTrace, Telemetry};
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::universal::lut::{tables, LutCell};
use skilltax_machine::universal::{Bitstream, CellConfig, LutFabric, Source};

/// `mem[0] = 2 + 3` with a load back — touches ALU, reads and writes.
fn scalar_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 2)
        .movi(1, 3)
        .emit(Instr::Add(2, 0, 1))
        .movi(3, 0)
        .emit(Instr::Store(3, 2))
        .emit(Instr::Load(4, 3))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Per-lane SIMD program where every lane reads lane 0's r1 (generates
/// DP–DP messages on the lanes other than lane 0).
fn lane_exchange_program() -> Program {
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 100)
        .emit(Instr::Add(1, 1, 0))
        .movi(3, 0)
        .emit(Instr::GetLane(6, 3, 1))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Sender/receiver pair for a 2-core message-passing machine.
fn send_recv_pair() -> Vec<Program> {
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver
        .emit(Instr::Recv(5, 0))
        .movi(6, 0)
        .emit(Instr::Store(6, 5))
        .emit(Instr::Halt);
    vec![sender.assemble().unwrap(), receiver.assemble().unwrap()]
}

#[test]
fn uniprocessor_trace_reconciles_with_stats() {
    let mut m = UniProcessor::new(8);
    let mut trace = EventTrace::new();
    let stats = m.run_traced(&scalar_program(), &mut trace).unwrap();
    stats.reconcile(&trace).unwrap();
    assert!(stats.instructions > 0 && stats.mem_reads > 0);
}

#[test]
fn array_trace_reconciles_and_records_lane_messages() {
    // IAP-II: DP-DP crossbar, so the lane exchange is routable.
    let mut m = ArrayMachine::new(ArraySubtype::II, 4, 4);
    let mut trace = EventTrace::new();
    let stats = m.run_traced(&lane_exchange_program(), &mut trace).unwrap();
    stats.reconcile(&trace).unwrap();
    // Lanes 1..3 each pulled a value from lane 0.
    assert_eq!(stats.messages, 3);
    assert_eq!(trace.count(EventClass::Message), 3);
    assert_eq!(trace.count(EventClass::CrossbarTraversal), 3);
}

#[test]
fn multi_trace_reconciles_over_the_message_fabric() {
    // IMP with a DP-DP crossbar.
    let subtype = MultiSubtype::from_code(0b0001).unwrap();
    let mut m = MultiMachine::new(subtype, 2, 4);
    let mut trace = EventTrace::new();
    let stats = m.run_traced(&send_recv_pair(), &mut trace).unwrap();
    stats.reconcile(&trace).unwrap();
    assert_eq!(stats.messages, 1);
}

#[test]
fn spatial_trace_reconciles_with_fused_groups() {
    let mut m = SpatialMachine::new(
        MultiSubtype::from_code(0).unwrap(),
        FabricTopology::Crossbar,
        4,
        8,
    )
    .unwrap();
    m.fuse(0, 1).unwrap();
    let programs: Vec<Program> = (0..4).map(|_| scalar_program()).collect();
    let mut trace = EventTrace::new();
    let stats = m.run_traced(&programs, &mut trace).unwrap();
    stats.reconcile(&trace).unwrap();
    assert!(stats.instructions > 0);
}

#[test]
fn dataflow_trace_reconciles_with_token_traffic() {
    // DMP-IV: both crossbars, round-robin placement forces cross-DP tokens.
    let m = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
    let g = tree_sum(8);
    let inputs: Vec<i64> = (1..=8).collect();
    let mut trace = EventTrace::new();
    let run = m
        .run_traced(&g, &inputs, &Placement::RoundRobin, &mut trace)
        .unwrap();
    assert_eq!(run.outputs, vec![36]);
    run.stats.reconcile(&trace).unwrap();
    assert!(trace.count(EventClass::Message) > 0);
}

#[test]
fn fabric_trace_reconciles_per_clock_edge() {
    // A registered XOR cell is a T flip-flop; wait for it to read true.
    let fabric = LutFabric::new(4, 2, 1);
    let bs = Bitstream {
        cells: vec![CellConfig {
            lut: LutCell::new(2, tables::XOR2.to_vec()).unwrap(),
            inputs: vec![Source::Cell(0), Source::Primary(0)],
            registered: true,
        }],
        outputs: vec![Source::Cell(0)],
    };
    let mut f = fabric.configure(&bs).unwrap();
    let mut trace = EventTrace::new();
    let (out, stats) = f
        .run_until_traced(&[true], 16, |o| o[0], &mut trace)
        .unwrap();
    assert_eq!(out, vec![true]);
    stats.reconcile(&trace).unwrap();
    assert_eq!(trace.count(EventClass::Issue), stats.cycles);
}

#[test]
fn faulty_resilient_run_reconciles_and_metrics_match_outcome() {
    // IMP-X (IP-DP + DP-DP crossbars): transient link outage plus a dead
    // DP — backoff retries and a degraded remap, all traced.
    let subtype = MultiSubtype::from_code(0b1001).unwrap();
    let mut m = MultiMachine::new(subtype, 3, 8);
    let mut programs = send_recv_pair();
    programs.push(scalar_program());
    let plan = FaultPlan::seeded(11)
        .fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: 6,
        })
        .fail_dp(2);
    let mut telemetry = Telemetry::new();
    let outcome = m
        .run_resilient_traced(&programs, plan, &mut telemetry)
        .unwrap();
    assert!(outcome.degraded && outcome.retries > 0);
    outcome.stats.reconcile(&telemetry.trace).unwrap();
    // The metrics channel agrees with the outcome's own counters...
    let counters = telemetry.metrics.counter_list();
    let retries = counters.iter().find(|(n, _)| n == "retries").unwrap().1;
    assert_eq!(retries, outcome.retries);
    // ...and every backoff delay was sampled exactly once per retry.
    let histograms = telemetry.metrics.histogram_list();
    let backoff = histograms
        .iter()
        .find(|(n, ..)| n == "backoff.delay")
        .unwrap();
    assert_eq!(backoff.1, outcome.retries);
    // Degradation and DP-failure events were recorded.
    assert_eq!(telemetry.trace.count(EventClass::Degradation), 1);
    assert!(telemetry.trace.count(EventClass::FaultInjected) >= 1);
}

#[test]
fn energy_from_trace_equals_energy_from_stats_on_a_faulty_run() {
    let subtype = MultiSubtype::from_code(0b1001).unwrap();
    let mut m = MultiMachine::new(subtype, 3, 8);
    let mut programs = send_recv_pair();
    programs.push(scalar_program());
    let mut telemetry = Telemetry::new();
    let outcome = m
        .run_resilient_traced(&programs, FaultPlan::seeded(5).fail_dp(2), &mut telemetry)
        .unwrap();
    let model = EnergyModel::default();
    let from_stats = model.estimate(&outcome.stats, false, true);
    let from_trace = model.estimate_from_trace(&telemetry.trace, outcome.stats.cycles, false, true);
    assert_eq!(from_stats, from_trace);
}

#[test]
fn tiny_ring_capacity_still_reconciles_exactly() {
    // Per-class totals live outside the ring, so an overflowing buffer
    // drops *events* but never *counts*.
    let mut m = ArrayMachine::new(ArraySubtype::II, 4, 4);
    let mut trace = EventTrace::with_capacity(2);
    let stats = m.run_traced(&lane_exchange_program(), &mut trace).unwrap();
    assert!(trace.dropped() > 0, "expected the tiny ring to overflow");
    assert_eq!(trace.len(), 2);
    stats.reconcile(&trace).unwrap();
}

//! The `SKILLTAX_THREADS` environment override, end to end.
//!
//! Environment mutation is process-global, so this binary holds exactly
//! one test: it walks the knob through forced, zero ("auto"), unparsable
//! and unset states and checks both [`configured_threads`] and the
//! machinery built on it (`sweep::parallel_map`, the sharded runners'
//! `with_shards(0)` width) keep working at every setting.

use skilltax_machine::configured_threads;
use skilltax_machine::sweep::parallel_map;
use skilltax_machine::workload::run_mimd_stagger_multi_sharded;
use skilltax_machine::NullTracer;

#[test]
fn skilltax_threads_override_is_honoured_everywhere() {
    let auto = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // A positive value forces that many threads, however large.
    for forced in [1usize, 2, 8] {
        std::env::set_var("SKILLTAX_THREADS", forced.to_string());
        assert_eq!(configured_threads(), forced, "forced {forced}");
        // The sweep and the auto-width sharded runner both still produce
        // correct results at this width.
        let squares = parallel_map((0..33u64).collect(), |&x| x * x);
        assert_eq!(squares, (0..33u64).map(|x| x * x).collect::<Vec<u64>>());
        let run = run_mimd_stagger_multi_sharded(16, 64, 0, &mut NullTracer).unwrap();
        assert_eq!(run.outputs[0], 64, "long core count at width {forced}");
        assert!(run.outputs[1..].iter().all(|&v| v == 8));
    }

    // Zero, junk, and unset all fall back to available_parallelism.
    for junk in ["0", "-3", "many", ""] {
        std::env::set_var("SKILLTAX_THREADS", junk);
        assert_eq!(configured_threads(), auto, "fallback for {junk:?}");
    }
    std::env::remove_var("SKILLTAX_THREADS");
    assert_eq!(configured_threads(), auto, "fallback when unset");
}

//! Property tests for the executable machines: the simulators against
//! plain-Rust reference semantics on randomly generated programs and
//! workloads.

use proptest::prelude::*;

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::isa::{Instr, Word, NUM_REGS};
use skilltax_machine::multi::MultiSubtype;
use skilltax_machine::program::Program;
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::workload::{
    fir_reference, mimd_mix_reference, run_fir_dataflow, run_fir_uni, run_mimd_mix_multi,
    run_vector_add_multi, vector_add_reference,
};
use skilltax_machine::dataflow::DataflowSubtype;

/// A random straight-line ALU instruction (no control flow, no memory, no
/// fabric) over the register file.
fn alu_instr() -> impl Strategy<Value = Instr> {
    let reg = 0u8..(NUM_REGS as u8);
    prop_oneof![
        (reg.clone(), -1000i64..1000).prop_map(|(rd, imm)| Instr::MovI(rd, imm)),
        (reg.clone(), reg.clone()).prop_map(|(rd, rs)| Instr::Mov(rd, rs)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Instr::Add(d, a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Instr::Sub(d, a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Instr::Mul(d, a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Instr::Min(d, a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Instr::Max(d, a, b)),
        (reg.clone(), reg, -50i64..50).prop_map(|(rd, rs, imm)| Instr::AddI(rd, rs, imm)),
    ]
}

/// Reference interpreter for straight-line ALU programs.
fn reference_regs(instrs: &[Instr]) -> [Word; NUM_REGS] {
    let mut regs = [0i64; NUM_REGS];
    for instr in instrs {
        match *instr {
            Instr::MovI(rd, imm) => regs[rd as usize] = imm,
            Instr::Mov(rd, rs) => regs[rd as usize] = regs[rs as usize],
            Instr::Add(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_add(regs[b as usize])
            }
            Instr::Sub(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_sub(regs[b as usize])
            }
            Instr::Mul(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_mul(regs[b as usize])
            }
            Instr::Min(d, a, b) => regs[d as usize] = regs[a as usize].min(regs[b as usize]),
            Instr::Max(d, a, b) => regs[d as usize] = regs[a as usize].max(regs[b as usize]),
            Instr::AddI(rd, rs, imm) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(imm)
            }
            _ => unreachable!("strategy only emits ALU instructions"),
        }
    }
    regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn uniprocessor_matches_the_reference_interpreter(
        instrs in prop::collection::vec(alu_instr(), 0..64)
    ) {
        let mut with_halt = instrs.clone();
        with_halt.push(Instr::Halt);
        let program = Program::new(with_halt).unwrap();
        let mut machine = UniProcessor::new(4);
        let stats = machine.run(&program).unwrap();
        let expected = reference_regs(&instrs);
        #[allow(clippy::needless_range_loop)]
        for r in 0..NUM_REGS {
            prop_assert_eq!(machine.reg(r as u8), expected[r], "r{}", r);
        }
        prop_assert_eq!(stats.instructions, instrs.len() as u64 + 1);
        prop_assert_eq!(stats.cycles, instrs.len() as u64 + 1);
    }

    #[test]
    fn simd_array_equals_per_lane_reference(
        instrs in prop::collection::vec(alu_instr(), 0..32),
        lanes in 1usize..8,
    ) {
        // With a lane-id seed, each lane's register file should equal the
        // reference interpreter run with r0 preloaded to the lane index.
        let mut body = vec![Instr::LaneId(0)];
        body.extend(instrs.iter().copied());
        body.push(Instr::Halt);
        let program = Program::new(body).unwrap();
        let mut machine = ArrayMachine::new(ArraySubtype::I, lanes, 4);
        machine.run(&program).unwrap();
        for lane in 0..lanes {
            let mut seeded = vec![Instr::MovI(0, lane as Word)];
            seeded.extend(instrs.iter().copied());
            let expected = reference_regs(&seeded);
            #[allow(clippy::needless_range_loop)]
        for r in 0..NUM_REGS {
                prop_assert_eq!(
                    machine.lane_reg(lane, r as u8),
                    expected[r],
                    "lane {} r{}",
                    lane,
                    r
                );
            }
        }
    }

    #[test]
    fn simd_emulation_on_every_imp_subtype_matches_reference(
        a in prop::collection::vec(-500i64..500, 2..10),
        code in 0u8..16,
    ) {
        let b: Vec<Word> = a.iter().map(|x| 1000 - x).collect();
        let subtype = MultiSubtype::from_code(code).unwrap();
        let run = run_vector_add_multi(subtype, &a, &b).unwrap();
        prop_assert_eq!(run.outputs, vector_add_reference(&a, &b));
    }

    #[test]
    fn mimd_mix_matches_reference_for_any_shape(
        cores in 2usize..6,
        len in 1usize..8,
        seed in 0i64..1000,
    ) {
        let slices: Vec<Vec<Word>> = (0..cores)
            .map(|c| (0..len).map(|i| seed + (c * len + i) as Word % 7 - 3).collect())
            .collect();
        let run = run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap();
        prop_assert_eq!(run.outputs, mimd_mix_reference(&slices));
    }

    #[test]
    fn fir_machines_agree_with_the_reference(
        taps in prop::collection::vec(-5i64..5, 1..5),
        extra in prop::collection::vec(-20i64..20, 0..8),
    ) {
        let mut signal = taps.clone(); // ensure signal >= taps
        signal.extend(extra);
        let reference = fir_reference(&taps, &signal);
        let uni = run_fir_uni(&taps, &signal).unwrap();
        prop_assert_eq!(&uni.outputs, &reference);
        let df = run_fir_dataflow(DataflowSubtype::IV, 4, &taps, &signal).unwrap();
        prop_assert_eq!(&df.outputs, &reference);
    }
}

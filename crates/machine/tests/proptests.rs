//! Property-style tests for the executable machines: the simulators
//! against plain-Rust reference semantics on randomly generated programs
//! and workloads.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::dataflow::DataflowSubtype;
use skilltax_machine::isa::{Instr, Word, NUM_REGS};
use skilltax_machine::multi::MultiSubtype;
use skilltax_machine::program::Program;
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::workload::{
    fir_reference, mimd_mix_reference, run_fir_dataflow, run_fir_uni, run_mimd_mix_multi,
    run_vector_add_multi, vector_add_reference,
};
use skilltax_model::rng::{sweep_cases, XorShift64};

/// A random straight-line ALU instruction (no control flow, no memory, no
/// fabric) over the register file.
fn alu_instr(rng: &mut XorShift64) -> Instr {
    let reg = |rng: &mut XorShift64| rng.below_usize(NUM_REGS) as u8;
    match rng.below(8) {
        0 => Instr::MovI(reg(rng), rng.range_i64(-1000, 1000)),
        1 => Instr::Mov(reg(rng), reg(rng)),
        2 => Instr::Add(reg(rng), reg(rng), reg(rng)),
        3 => Instr::Sub(reg(rng), reg(rng), reg(rng)),
        4 => Instr::Mul(reg(rng), reg(rng), reg(rng)),
        5 => Instr::Min(reg(rng), reg(rng), reg(rng)),
        6 => Instr::Max(reg(rng), reg(rng), reg(rng)),
        _ => Instr::AddI(reg(rng), reg(rng), rng.range_i64(-50, 50)),
    }
}

fn alu_block(rng: &mut XorShift64, max_len: usize) -> Vec<Instr> {
    let len = rng.below_usize(max_len);
    (0..len).map(|_| alu_instr(rng)).collect()
}

/// Reference interpreter for straight-line ALU programs.
fn reference_regs(instrs: &[Instr]) -> [Word; NUM_REGS] {
    let mut regs = [0i64; NUM_REGS];
    for instr in instrs {
        match *instr {
            Instr::MovI(rd, imm) => regs[rd as usize] = imm,
            Instr::Mov(rd, rs) => regs[rd as usize] = regs[rs as usize],
            Instr::Add(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_add(regs[b as usize])
            }
            Instr::Sub(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_sub(regs[b as usize])
            }
            Instr::Mul(d, a, b) => {
                regs[d as usize] = regs[a as usize].wrapping_mul(regs[b as usize])
            }
            Instr::Min(d, a, b) => regs[d as usize] = regs[a as usize].min(regs[b as usize]),
            Instr::Max(d, a, b) => regs[d as usize] = regs[a as usize].max(regs[b as usize]),
            Instr::AddI(rd, rs, imm) => regs[rd as usize] = regs[rs as usize].wrapping_add(imm),
            _ => unreachable!("generator only emits ALU instructions"),
        }
    }
    regs
}

#[test]
fn uniprocessor_matches_the_reference_interpreter() {
    sweep_cases(0xA10, 96, |case, rng| {
        let instrs = alu_block(rng, 64);
        let mut with_halt = instrs.clone();
        with_halt.push(Instr::Halt);
        let program = Program::new(with_halt).unwrap();
        let mut machine = UniProcessor::new(4);
        let stats = machine.run(&program).unwrap();
        let expected = reference_regs(&instrs);
        #[allow(clippy::needless_range_loop)]
        for r in 0..NUM_REGS {
            assert_eq!(machine.reg(r as u8), expected[r], "case {case} r{r}");
        }
        assert_eq!(stats.instructions, instrs.len() as u64 + 1);
        assert_eq!(stats.cycles, instrs.len() as u64 + 1);
    });
}

#[test]
fn simd_array_equals_per_lane_reference() {
    sweep_cases(0xA11, 96, |case, rng| {
        // With a lane-id seed, each lane's register file should equal the
        // reference interpreter run with r0 preloaded to the lane index.
        let instrs = alu_block(rng, 32);
        let lanes = rng.range_usize(1, 8);
        let mut body = vec![Instr::LaneId(0)];
        body.extend(instrs.iter().copied());
        body.push(Instr::Halt);
        let program = Program::new(body).unwrap();
        let mut machine = ArrayMachine::new(ArraySubtype::I, lanes, 4);
        machine.run(&program).unwrap();
        for lane in 0..lanes {
            let mut seeded = vec![Instr::MovI(0, lane as Word)];
            seeded.extend(instrs.iter().copied());
            let expected = reference_regs(&seeded);
            #[allow(clippy::needless_range_loop)]
            for r in 0..NUM_REGS {
                assert_eq!(
                    machine.lane_reg(lane, r as u8),
                    expected[r],
                    "case {case} lane {lane} r{r}"
                );
            }
        }
    });
}

#[test]
fn simd_emulation_on_every_imp_subtype_matches_reference() {
    sweep_cases(0xA12, 96, |case, rng| {
        let len = rng.range_usize(2, 10);
        let a: Vec<Word> = (0..len).map(|_| rng.range_i64(-500, 500)).collect();
        let code = rng.below(16) as u8;
        let b: Vec<Word> = a.iter().map(|x| 1000 - x).collect();
        let subtype = MultiSubtype::from_code(code).unwrap();
        let run = run_vector_add_multi(subtype, &a, &b).unwrap();
        assert_eq!(
            run.outputs,
            vector_add_reference(&a, &b),
            "case {case} code {code}"
        );
    });
}

#[test]
fn mimd_mix_matches_reference_for_any_shape() {
    sweep_cases(0xA13, 96, |case, rng| {
        let cores = rng.range_usize(2, 6);
        let len = rng.range_usize(1, 8);
        let seed = rng.range_i64(0, 1000);
        let slices: Vec<Vec<Word>> = (0..cores)
            .map(|c| {
                (0..len)
                    .map(|i| seed + (c * len + i) as Word % 7 - 3)
                    .collect()
            })
            .collect();
        let run = run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap();
        assert_eq!(run.outputs, mimd_mix_reference(&slices), "case {case}");
    });
}

#[test]
fn fir_machines_agree_with_the_reference() {
    sweep_cases(0xA14, 96, |case, rng| {
        let taps: Vec<Word> = (0..rng.range_usize(1, 5))
            .map(|_| rng.range_i64(-5, 5))
            .collect();
        let extra: Vec<Word> = (0..rng.below_usize(8))
            .map(|_| rng.range_i64(-20, 20))
            .collect();
        let mut signal = taps.clone(); // ensure signal >= taps
        signal.extend(extra);
        let reference = fir_reference(&taps, &signal);
        let uni = run_fir_uni(&taps, &signal).unwrap();
        assert_eq!(&uni.outputs, &reference, "case {case} (uni)");
        let df = run_fir_dataflow(DataflowSubtype::IV, 4, &taps, &signal).unwrap();
        assert_eq!(&df.outputs, &reference, "case {case} (dataflow)");
    });
}

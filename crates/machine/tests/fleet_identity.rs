//! Differential tests for the fleet executors (DESIGN.md §14): a
//! structure-of-arrays fleet of N instances must produce exactly the
//! same per-instance [`Stats`], the same errors (including embedded
//! partial stats), and the same event-class totals as running the N
//! instances sequentially on the dense reference machines — on clean
//! runs, divergent control flow, watchdog/deadline trips, memory and
//! routing errors, and transient fault plans alike.
//!
//! The chunked runner resolves its worker count through
//! `SKILLTAX_FLEET_THREADS` / `SKILLTAX_THREADS`, and the CI harness
//! re-runs this binary with the override pinned to 1, 2 and 8
//! (scripts/verify.sh) so fleet×thread composition is exercised at
//! several widths regardless of the host.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::fault::FaultPlan;
use skilltax_machine::fleet::{
    array_chunked_outcomes, chunked_results, run_array_fleet_chunked, run_uni_fleet_chunked,
    ArrayFleet, FleetExec, LaneKernels, UniFleet,
};
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::workload::{
    run_fault_monte_carlo_array, run_spin_swarm_uni_traced, run_vector_add_swarm_array_traced,
};
use skilltax_machine::{Assembler, CancelToken, Instr, MachineError, Program, Telemetry, Word};

/// Count to a bound read from memory address 0 — data-dependent control
/// flow, so a fleet with mixed bounds diverges and re-converges.
fn data_spin_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(2, 0).emit(Instr::Load(1, 2));
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Divergent per-instance spin bounds (several cohorts, re-merging).
fn spin_bounds(n: usize) -> Vec<Word> {
    (0..n).map(|i| ((i * 13) % 97 + 1) as Word).collect()
}

/// Both batched kernel selections.  In a default build `Wide` degrades
/// to the scalar loops; under `--features simd` it takes the explicit
/// wide kernels — verify.sh runs this suite both ways, so every leg
/// here is differential against the dense machines in all four
/// (kernels × feature) combinations.
const KERNELS: [LaneKernels; 2] = [LaneKernels::Scalar, LaneKernels::Wide];

// -------------------------------------------------------------------------
// Uni-processor fleets
// -------------------------------------------------------------------------

#[test]
fn uni_fleet_identity_with_divergent_control_flow() {
    let program = data_spin_program();
    for kernels in KERNELS {
        for n in [1usize, 3, 64, 130] {
            let bounds = spin_bounds(n);
            let mut fleet = UniFleet::new(n, 2).with_kernels(kernels);
            for (i, &b) in bounds.iter().enumerate() {
                fleet.write_mem(i, 0, b);
            }
            let mut fleet_telemetry = Telemetry::new();
            let results = fleet.run_traced(&program, &mut fleet_telemetry);
            let mut seq_telemetry = Telemetry::new();
            for (i, &b) in bounds.iter().enumerate() {
                let mut machine = UniProcessor::new(2);
                machine.memory_mut().bank_mut(0).load(&[b]);
                let expected = machine.run_traced(&program, &mut seq_telemetry).unwrap();
                assert_eq!(
                    results[i].as_ref().unwrap(),
                    &expected,
                    "{kernels:?} n={n} instance {i}"
                );
                assert_eq!(fleet.reg(i, 0), b, "{kernels:?} n={n} instance {i}");
            }
            assert_eq!(
                fleet_telemetry.trace.class_counts(),
                seq_telemetry.trace.class_counts(),
                "{kernels:?} n={n}: event-class totals diverged"
            );
        }
    }
}

#[test]
fn uni_fleet_watchdog_identity() {
    let mut asm = Assembler::new();
    asm.emit(Instr::Jmp(0));
    let forever = asm.assemble().unwrap();
    let mut fleet = UniFleet::new(5, 2).with_cycle_limit(64);
    let results = fleet.run(&forever);
    let mut machine = UniProcessor::new(2).with_cycle_limit(64);
    let expected = machine.run(&forever).unwrap_err();
    for (i, r) in results.into_iter().enumerate() {
        assert_eq!(r.unwrap_err(), expected, "instance {i}");
    }
}

#[test]
fn uni_fleet_deadline_cancel_identity() {
    let program = data_spin_program();
    let bounds = spin_bounds(12);
    // Deadline below some instances' runtimes: short spins finish clean,
    // long spins cancel with partial stats — per instance, exactly as
    // the sequential machine decides it.
    let mut fleet = UniFleet::new(12, 2).with_cancel(CancelToken::new().with_deadline(40));
    for (i, &b) in bounds.iter().enumerate() {
        fleet.write_mem(i, 0, b);
    }
    let results = fleet.run(&program);
    let mut saw_cancel = false;
    let mut saw_clean = false;
    for (i, &b) in bounds.iter().enumerate() {
        let mut machine = UniProcessor::new(2).with_cancel(CancelToken::new().with_deadline(40));
        machine.memory_mut().bank_mut(0).load(&[b]);
        match (results[i].clone(), machine.run(&program)) {
            (Ok(got), Ok(want)) => {
                saw_clean = true;
                assert_eq!(got, want, "instance {i}");
            }
            (Err(got), Err(want)) => {
                saw_cancel = true;
                assert_eq!(got, want, "instance {i}");
                assert!(matches!(got, MachineError::Cancelled { at_cycle: 40, .. }));
            }
            (got, want) => panic!("instance {i}: fleet {got:?} vs sequential {want:?}"),
        }
    }
    assert!(saw_cancel && saw_clean, "deadline must split the fleet");
}

#[test]
fn uni_fleet_memory_error_identity() {
    // One bad instance (out-of-bounds pointer) among good ones: it
    // retires with the sequential machine's exact error, the rest run on.
    let mut asm = Assembler::new();
    asm.movi(2, 0)
        .emit(Instr::Load(0, 2)) // pointer from mem[0]
        .emit(Instr::Load(1, 0)) // deref
        .emit(Instr::Halt);
    let program = asm.assemble().unwrap();
    let pointers: [Word; 4] = [1, 99, -3, 0];
    let mut fleet = UniFleet::new(4, 4);
    for (i, &p) in pointers.iter().enumerate() {
        fleet.write_mem(i, 0, p);
    }
    let results = fleet.run(&program);
    for (i, &p) in pointers.iter().enumerate() {
        let mut machine = UniProcessor::new(4);
        machine.memory_mut().bank_mut(0).load(&[p]);
        match machine.run(&program) {
            Ok(want) => assert_eq!(results[i].as_ref().unwrap(), &want, "instance {i}"),
            Err(want) => assert_eq!(results[i].as_ref().unwrap_err(), &want, "instance {i}"),
        }
    }
}

#[test]
fn uni_fleet_chunked_identity_auto_threads() {
    // threads = 0 resolves via SKILLTAX_FLEET_THREADS / SKILLTAX_THREADS
    // — the leg the verify.sh thread matrix exercises at widths 1/2/8.
    let program = data_spin_program();
    let n = 150;
    let bounds = spin_bounds(n);
    let chunks = run_uni_fleet_chunked(
        n,
        2,
        10_000,
        &CancelToken::new(),
        &program,
        LaneKernels::default(),
        |global, fleet, local| fleet.write_mem(local, 0, ((global * 13) % 97 + 1) as Word),
        0,
    );
    let results = chunked_results(chunks);
    assert_eq!(results.len(), n);
    for (i, &b) in bounds.iter().enumerate() {
        let mut machine = UniProcessor::new(2).with_cycle_limit(10_000);
        machine.memory_mut().bank_mut(0).load(&[b]);
        let expected = machine.run(&program).unwrap();
        assert_eq!(results[i].as_ref().unwrap(), &expected, "instance {i}");
    }
}

#[test]
fn spin_swarm_workload_identity_traced() {
    let mut seq_telemetry = Telemetry::new();
    let sequential =
        run_spin_swarm_uni_traced(96, 150, FleetExec::Sequential, &mut seq_telemetry).unwrap();
    for kernels in KERNELS {
        let mut fleet_telemetry = Telemetry::new();
        let fleet =
            run_spin_swarm_uni_traced(96, 150, FleetExec::Fleet(kernels), &mut fleet_telemetry)
                .unwrap();
        assert_eq!(fleet, sequential, "{kernels:?}");
        assert_eq!(
            fleet_telemetry.trace.class_counts(),
            seq_telemetry.trace.class_counts(),
            "{kernels:?}"
        );
    }
}

// -------------------------------------------------------------------------
// Array-machine fleets
// -------------------------------------------------------------------------

#[test]
fn array_fleet_identity_all_subtypes_traced() {
    for subtype in ArraySubtype::ALL {
        let mut seq_telemetry = Telemetry::new();
        let sequential = run_vector_add_swarm_array_traced(
            subtype,
            24,
            4,
            FleetExec::Sequential,
            &mut seq_telemetry,
        )
        .unwrap();
        for kernels in KERNELS {
            let mut fleet_telemetry = Telemetry::new();
            let fleet = run_vector_add_swarm_array_traced(
                subtype,
                24,
                4,
                FleetExec::Fleet(kernels),
                &mut fleet_telemetry,
            )
            .unwrap();
            assert_eq!(fleet, sequential, "{subtype:?} {kernels:?}");
            assert_eq!(
                fleet_telemetry.trace.class_counts(),
                seq_telemetry.trace.class_counts(),
                "{subtype:?} {kernels:?}: event-class totals diverged"
            );
        }
    }
}

#[test]
fn array_fleet_matches_dense_and_event_schedulers() {
    // The sequential array machine has an event-driven live-lane loop and
    // a dense per-cycle reference; the fleet must equal both (they equal
    // each other per scheduler_identity).
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 50)
        .emit(Instr::Add(1, 1, 0))
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    let program = asm.assemble().unwrap();
    for subtype in ArraySubtype::ALL {
        let mut fleet = ArrayFleet::new(subtype, 4, 4, 8);
        let results = fleet.run(&program);
        for dense in [false, true] {
            let mut machine = ArrayMachine::new(subtype, 4, 4).with_dense_reference(dense);
            let expected = machine.run(&program).unwrap();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(
                    r.as_ref().unwrap(),
                    &expected,
                    "{subtype:?} dense={dense} instance {i}"
                );
            }
        }
    }
}

/// A lane-0 broadcast via `getlane` (every lane fetches lane 0's value).
fn getlane_broadcast_program() -> Program {
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .emit(Instr::AddI(3, 0, 100)) // r3 = 100 + lane
        .movi(1, 0) // source lane 0
        .emit(Instr::GetLane(4, 1, 3))
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

#[test]
fn array_fleet_getlane_identity_with_and_without_fabric() {
    let program = getlane_broadcast_program();
    for subtype in ArraySubtype::ALL {
        let mut fleet = ArrayFleet::new(subtype, 4, 4, 6);
        let results = fleet.run(&program);
        let mut machine = ArrayMachine::new(subtype, 4, 4);
        match machine.run(&program) {
            // IAP-II / IAP-IV: the DP-DP crossbar routes the broadcast.
            Ok(expected) => {
                for (i, r) in results.iter().enumerate() {
                    assert_eq!(r.as_ref().unwrap(), &expected, "{subtype:?} instance {i}");
                    for lane in 0..4 {
                        assert_eq!(fleet.lane_reg(i, lane, 4), 100, "{subtype:?} lane {lane}");
                    }
                }
            }
            // IAP-I / IAP-III: no DP-DP switch — same typed refusal.
            Err(expected) => {
                for (i, r) in results.iter().enumerate() {
                    assert_eq!(
                        r.as_ref().unwrap_err(),
                        &expected,
                        "{subtype:?} instance {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn array_fleet_out_of_range_getlane_and_send_identity() {
    let mut asm = Assembler::new();
    asm.movi(1, 99)
        .emit(Instr::GetLane(4, 1, 0))
        .emit(Instr::Halt);
    let bad_src = asm.assemble().unwrap();
    let mut asm = Assembler::new();
    asm.emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let send = asm.assemble().unwrap();
    for (label, program) in [("bad-src", &bad_src), ("send", &send)] {
        for subtype in [ArraySubtype::II, ArraySubtype::IV] {
            let mut fleet = ArrayFleet::new(subtype, 4, 4, 3);
            let results = fleet.run(program);
            let mut machine = ArrayMachine::new(subtype, 4, 4);
            let expected = machine.run(program).unwrap_err();
            for (i, r) in results.into_iter().enumerate() {
                assert_eq!(r.unwrap_err(), expected, "{label} {subtype:?} instance {i}");
            }
        }
    }
}

#[test]
fn array_fleet_faulted_identity_private_and_shared() {
    // Transient faults (stalls + bit flips) across a seed population on
    // both memory topologies; per-seed outcomes must equal sequential
    // run_resilient exactly, including injected-fault counts.
    let seeds: Vec<u64> = (0..24).map(|s| s * 11 + 5).collect();
    for subtype in [ArraySubtype::I, ArraySubtype::III] {
        let sequential =
            run_fault_monte_carlo_array(subtype, 4, &seeds, 0.25, 0.1, FleetExec::Sequential);
        for kernels in KERNELS {
            let fleet = run_fault_monte_carlo_array(
                subtype,
                4,
                &seeds,
                0.25,
                0.1,
                FleetExec::Fleet(kernels),
            );
            assert_eq!(fleet, sequential, "{subtype:?} {kernels:?}");
        }
    }
}

#[test]
fn array_fleet_faulted_watchdog_partial_stats_identity() {
    // A stall-heavy plan under a tight budget: instances trip the
    // watchdog with partial stats that include the stall counts.
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, 1_000);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    let program = asm.assemble().unwrap();
    let seeds = [2u64, 9, 31];
    let plan_for = |seed: u64| FaultPlan::seeded(seed).stall_dps(0.5);
    let mut fleet = ArrayFleet::new(ArraySubtype::I, 4, 4, seeds.len()).with_cycle_limit(200);
    let results = fleet.run_faulted(&program, seeds.iter().map(|&s| plan_for(s)).collect());
    for (i, &seed) in seeds.iter().enumerate() {
        let mut machine = ArrayMachine::new(ArraySubtype::I, 4, 4).with_cycle_limit(200);
        let expected = machine.run_resilient(&program, plan_for(seed)).unwrap_err();
        let got = results[i].as_ref().unwrap_err();
        assert_eq!(got, &expected, "seed {seed}");
        match got {
            MachineError::WatchdogTimeout { partial, .. } => {
                assert!(
                    partial.stalls > 0,
                    "seed {seed}: stalls missing from partials"
                )
            }
            other => panic!("seed {seed}: expected watchdog, got {other:?}"),
        }
    }
}

/// Spin to a per-instance bound, then dereference a per-instance
/// pointer: control flow diverges first, and the faults land
/// *mid-kernel* at instance-specific cycles — some clean, some
/// out-of-bounds, in arbitrary retirement order.
fn divergent_deref_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(2, 0)
        .emit(Instr::Load(1, 2)) // bound from mem[0]
        .movi(2, 1)
        .emit(Instr::Load(3, 2)) // pointer from mem[1]
        .movi(0, 0);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Load(4, 3)) // deref — faults iff pointer bad
        .emit(Instr::Halt);
    asm.assemble().unwrap()
}

#[test]
fn uni_fleet_divergence_heavy_mid_kernel_fault_identity() {
    let program = divergent_deref_program();
    let n = 48;
    let bounds = spin_bounds(n);
    // Every third instance carries a bad pointer (alternating too-high
    // and negative), so retirements interleave with live cohorts.
    let pointer = |i: usize| -> Word {
        match i % 3 {
            0 => (i % 4) as Word,
            1 => 99,
            _ => -((i as Word) + 1),
        }
    };
    for kernels in KERNELS {
        let mut fleet = UniFleet::new(n, 4).with_kernels(kernels);
        for (i, &b) in bounds.iter().enumerate() {
            fleet.write_mem(i, 0, b);
            fleet.write_mem(i, 1, pointer(i));
        }
        let mut fleet_telemetry = Telemetry::new();
        let results = fleet.run_traced(&program, &mut fleet_telemetry);
        let mut seq_telemetry = Telemetry::new();
        for (i, &b) in bounds.iter().enumerate() {
            let mut machine = UniProcessor::new(4);
            machine.memory_mut().bank_mut(0).load(&[b, pointer(i)]);
            match machine.run_traced(&program, &mut seq_telemetry) {
                Ok(want) => {
                    assert_eq!(
                        results[i].as_ref().unwrap(),
                        &want,
                        "{kernels:?} instance {i}"
                    );
                }
                Err(want) => {
                    assert_eq!(
                        results[i].as_ref().unwrap_err(),
                        &want,
                        "{kernels:?} instance {i}"
                    );
                }
            }
        }
        assert_eq!(
            fleet_telemetry.trace.class_counts(),
            seq_telemetry.trace.class_counts(),
            "{kernels:?}: event-class totals diverged"
        );
    }
}

#[test]
fn cohort_rebuild_keeps_ascending_error_attribution() {
    // Regression for the step_cohorts rebuild (the per-divergence-step
    // sort_unstable() was replaced by an in-order retain): with many
    // simultaneous cohorts and out-of-order retirements, each error
    // must stay attributed to its own instance slot with the exact
    // sequential error value, and survivors' architectural state must
    // land untouched.
    let program = divergent_deref_program();
    let n = 60;
    // Bounds chosen so cohort membership is strided (i % 5) and bad
    // pointers sit at stride-7 positions — retirement order is far from
    // ascending.
    let bound = |i: usize| ((i % 5) * 9 + 3) as Word;
    let pointer = |i: usize| -> Word {
        if i.is_multiple_of(7) {
            99
        } else {
            2
        }
    };
    let mut fleet = UniFleet::new(n, 4);
    for i in 0..n {
        fleet.write_mem(i, 0, bound(i));
        fleet.write_mem(i, 1, pointer(i));
    }
    let results = fleet.run(&program);
    for (i, result) in results.iter().enumerate() {
        let mut machine = UniProcessor::new(4);
        machine
            .memory_mut()
            .bank_mut(0)
            .load(&[bound(i), pointer(i)]);
        match machine.run(&program) {
            Ok(want) => {
                assert_eq!(result.as_ref().unwrap(), &want, "instance {i}");
                assert_eq!(fleet.reg(i, 0), bound(i), "instance {i} final counter");
            }
            Err(want) => {
                assert!(i.is_multiple_of(7), "only stride-7 instances fault");
                assert_eq!(result.as_ref().unwrap_err(), &want, "instance {i}");
            }
        }
    }
}

#[test]
fn array_fleet_chunked_identity() {
    // Chunked ≡ one fleet ≡ N sequential run_resilient: the same
    // contract as the uni runner, across explicit widths and the
    // env-resolved default.
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 100)
        .emit(Instr::Add(1, 1, 0))
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    let program = asm.assemble().unwrap();
    let n = 40;
    let plan_for = |g: usize| {
        FaultPlan::seeded(g as u64 * 11 + 5)
            .stall_dps(0.25)
            .flip_memory_bits(0.1)
    };
    let mut sequential = Vec::with_capacity(n);
    for g in 0..n {
        let mut machine = ArrayMachine::new(ArraySubtype::III, 4, 4).with_cycle_limit(50_000);
        sequential.push(machine.run_resilient(&program, plan_for(g)));
    }
    for threads in [0usize, 1, 3, 8] {
        let chunks = run_array_fleet_chunked(
            ArraySubtype::III,
            4,
            4,
            n,
            50_000,
            &CancelToken::new(),
            &program,
            LaneKernels::default(),
            |_, _, _| {},
            plan_for,
            threads,
        );
        let outcomes = array_chunked_outcomes(chunks);
        assert_eq!(outcomes.len(), n, "threads={threads}");
        for (g, (got, want)) in outcomes.iter().zip(&sequential).enumerate() {
            assert_eq!(got, want, "threads={threads} instance {g}");
        }
    }
}

#[test]
fn array_fleet_rejects_permanent_failures_like_sequential() {
    let mut asm = Assembler::new();
    asm.emit(Instr::Halt);
    let program = asm.assemble().unwrap();
    let plan = FaultPlan::seeded(1).fail_dp(2);
    // Private banks: the same DegradationImpossible the sequential
    // machine raises.
    let mut fleet = ArrayFleet::new(ArraySubtype::I, 4, 4, 2);
    let results = fleet.run_faulted(&program, vec![plan.clone(), FaultPlan::seeded(7)]);
    let mut machine = ArrayMachine::new(ArraySubtype::I, 4, 4);
    let expected = machine.run_resilient(&program, plan.clone()).unwrap_err();
    assert_eq!(results[0].as_ref().unwrap_err(), &expected);
    assert!(results[1].is_ok(), "clean plan still runs");
    // Shared crossbar: degraded replay is per-instance work — a typed
    // refusal pointing at run_resilient.
    let mut fleet = ArrayFleet::new(ArraySubtype::III, 4, 4, 1);
    match fleet.run_faulted(&program, vec![plan]) {
        ref r if r.len() == 1 => match r[0].as_ref().unwrap_err() {
            MachineError::WorkloadUnsupported { machine, reason } => {
                assert!(machine.contains("array fleet"), "{machine}");
                assert!(reason.contains("run_resilient"), "{reason}");
            }
            other => panic!("expected WorkloadUnsupported, got {other:?}"),
        },
        other => panic!("expected one outcome, got {other:?}"),
    }
}

//! Differential tests for cooperative cancellation (DESIGN.md §9/§11):
//! a [`CancelToken`] deadline composes with the watchdog budget at every
//! run loop — firing *before* the budget yields `Cancelled`, firing
//! *after* leaves the watchdog in charge, and a tie goes to the
//! cancellation — with partial [`Stats`] that are bit-identical across
//! the dense reference, the event-driven scheduler and every shard
//! width.  The asynchronous flag stops promptly with the same typed
//! error, though its stop cycle is not replayable.

use skilltax_machine::array::{ArrayMachine, ArraySubtype};
use skilltax_machine::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use skilltax_machine::interconnect::FabricTopology;
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::spatial::SpatialMachine;
use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::universal::fabric::{Bitstream, CellConfig, LutFabric, Source};
use skilltax_machine::universal::lut::{tables, LutCell};
use skilltax_machine::vliw::{Bundle, VliwMachine, VliwProgram};
use skilltax_machine::{
    Assembler, CancelToken, Instr, MachineError, Program, Stats, Telemetry, Word,
};

/// Count to `iters` and halt (no memory traffic).
fn spin_program(iters: Word) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

fn expect_cancelled(result: Result<Stats, MachineError>, at: u64) -> Stats {
    match result {
        Err(MachineError::Cancelled { at_cycle, partial }) => {
            assert_eq!(at_cycle, at, "cancelled at the wrong cycle");
            assert_eq!(partial.cycles, at, "partial stats disagree with the stop");
            partial
        }
        other => panic!("expected Cancelled at {at}, got {other:?}"),
    }
}

// -------------------------------------------------------------------------
// Deadline x watchdog composition, identical across schedulers (IMP)
// -------------------------------------------------------------------------

#[test]
fn multi_deadline_before_at_after_budget_identity() {
    // (deadline, the error that owns the stop, the stop cycle).
    let cases = [
        (30u64, true, 30u64), // before the budget: cancellation
        (60, true, 60),       // at the budget: cancellation wins the tie
        (100, false, 60),     // after the budget: plain watchdog
    ];
    for (deadline, cancels, stop) in cases {
        let run = |dense: bool, shards: usize, t: &mut Telemetry| {
            let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 4, 4)
                .with_cycle_limit(60)
                .with_dense_reference(dense)
                .with_shards(shards)
                .with_cancel(CancelToken::new().with_deadline(deadline));
            m.run_traced(&vec![spin_program(10_000); 4], t)
        };
        let mut base_telemetry = Telemetry::new();
        let base = run(true, 1, &mut base_telemetry);
        match &base {
            Err(MachineError::Cancelled { at_cycle, partial }) => {
                assert!(cancels, "deadline {deadline}: unexpected cancellation");
                assert_eq!((*at_cycle, partial.cycles), (stop, stop));
            }
            Err(MachineError::WatchdogTimeout { limit, partial }) => {
                assert!(!cancels, "deadline {deadline}: watchdog beat the deadline");
                assert_eq!((*limit, partial.cycles), (stop, stop));
            }
            other => panic!("deadline {deadline}: expected a typed stop, got {other:?}"),
        }
        for (dense, shards) in [(false, 1), (false, 2), (false, 8), (false, 0)] {
            let mut telemetry = Telemetry::new();
            let outcome = run(dense, shards, &mut telemetry);
            assert_eq!(
                format!("{base:?}"),
                format!("{outcome:?}"),
                "deadline {deadline} x{shards}: outcomes diverged"
            );
            assert_eq!(
                base_telemetry.trace.class_counts(),
                telemetry.trace.class_counts(),
                "deadline {deadline} x{shards}: event-class totals diverged"
            );
        }
    }
}

// -------------------------------------------------------------------------
// Uni-processor (IUP)
// -------------------------------------------------------------------------

#[test]
fn uni_deadline_composes_with_the_watchdog() {
    let run = |deadline: u64| {
        let mut m = UniProcessor::new(4)
            .with_cycle_limit(40)
            .with_cancel(CancelToken::new().with_deadline(deadline));
        m.run(&spin_program(10_000))
    };
    expect_cancelled(run(15), 15);
    assert!(matches!(
        run(80),
        Err(MachineError::WatchdogTimeout {
            limit: 40,
            partial: Stats { cycles: 40, .. }
        })
    ));
}

#[test]
fn uni_pre_raised_flag_cancels_before_the_first_cycle() {
    let token = CancelToken::new();
    token.cancel();
    let mut m = UniProcessor::new(4).with_cancel(token);
    expect_cancelled(m.run(&spin_program(10_000)), 0);
}

#[test]
fn flag_raised_from_another_thread_stops_a_running_machine() {
    let token = CancelToken::new();
    let remote = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        remote.cancel();
    });
    // An infinite loop bounded only by a budget far beyond the test's
    // patience: only the flag can stop it this side of the timeout.
    let mut asm = Assembler::new();
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.jmp("loop");
    asm.emit(Instr::Halt);
    let mut m = UniProcessor::new(4)
        .with_cycle_limit(u64::MAX)
        .with_cancel(token);
    let result = m.run(&asm.assemble().unwrap());
    canceller.join().unwrap();
    match result {
        Err(MachineError::Cancelled { at_cycle, partial }) => {
            assert_eq!(partial.cycles, at_cycle);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn uni_reset_and_fresh_token_support_pool_reuse() {
    let mut m = UniProcessor::new(4).with_cancel(CancelToken::new().with_deadline(5));
    expect_cancelled(m.run(&spin_program(10_000)), 5);
    // `reset` scrubs state without touching the (request-scoped) token;
    // the pool swaps in a fresh one before the next tenant.
    m.reset();
    m.set_cancel(CancelToken::new());
    let stats = m.run(&spin_program(10)).unwrap();
    assert!(stats.cycles > 5, "reset machine still carries the deadline");
    assert_eq!(m.reg(0), 10, "reset failed to scrub the register file");
}

// -------------------------------------------------------------------------
// Array (IAP), dense vs masked path
// -------------------------------------------------------------------------

#[test]
fn array_deadline_identical_on_both_paths() {
    let run = |dense: bool| {
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4)
            .with_cycle_limit(50)
            .with_dense_reference(dense)
            .with_cancel(CancelToken::new().with_deadline(20));
        m.run(&spin_program(10_000))
    };
    let base = run(true);
    expect_cancelled(run(false), 20);
    assert_eq!(format!("{base:?}"), format!("{:?}", run(false)));
}

// -------------------------------------------------------------------------
// Spatial (ISP), across shard widths
// -------------------------------------------------------------------------

#[test]
fn spatial_deadline_shard_identity() {
    let run = |shards: usize, t: &mut Telemetry| {
        let mut m = SpatialMachine::new(
            MultiSubtype::from_index(1).unwrap(),
            FabricTopology::Crossbar,
            4,
            4,
        )
        .unwrap()
        .with_cycle_limit(60)
        .with_shards(shards)
        .with_cancel(CancelToken::new().with_deadline(20));
        m.run_traced(&vec![spin_program(10_000); 4], t)
    };
    let mut base_telemetry = Telemetry::new();
    let base = run(1, &mut base_telemetry);
    match &base {
        Err(MachineError::Cancelled {
            at_cycle: 20,
            partial,
        }) => assert_eq!(partial.cycles, 20),
        other => panic!("expected Cancelled at 20, got {other:?}"),
    }
    for shards in [2usize, 8, 0] {
        let mut telemetry = Telemetry::new();
        let outcome = run(shards, &mut telemetry);
        assert_eq!(format!("{base:?}"), format!("{outcome:?}"), "x{shards}");
        assert_eq!(
            base_telemetry.trace.class_counts(),
            telemetry.trace.class_counts(),
            "x{shards}"
        );
    }
}

// -------------------------------------------------------------------------
// Dataflow (DUP), dense vs event firing loops
// -------------------------------------------------------------------------

#[test]
fn dataflow_deadline_identical_on_both_schedulers() {
    let graph = library::tree_sum(64);
    let inputs: Vec<Word> = (0..64).collect();
    let run = |dense: bool| {
        let machine = DataflowMachine::new(DataflowSubtype::Uni, 1)
            .unwrap()
            .with_dense_reference(dense)
            .with_cancel(CancelToken::new().with_deadline(10));
        machine.run(&graph, &inputs, &Placement::RoundRobin)
    };
    for dense in [true, false] {
        match run(dense) {
            Err(MachineError::Cancelled {
                at_cycle: 10,
                partial,
            }) => {
                assert_eq!(partial.cycles, 10, "dense={dense}");
            }
            other => panic!("dense={dense}: expected Cancelled at 10, got {other:?}"),
        }
    }
    assert_eq!(format!("{:?}", run(true)), format!("{:?}", run(false)));
}

// -------------------------------------------------------------------------
// Universal fabric (USP), single-threaded and region-sharded
// -------------------------------------------------------------------------

/// Two disconnected toggle flip-flops: two weakly-connected regions, so
/// the fabric can shard, and a predicate that never holds keeps it
/// clocking until something trips.
fn two_region_togglers() -> Bitstream {
    let toggler = |_: usize| CellConfig {
        lut: LutCell::new(2, tables::XOR2.to_vec()).unwrap(),
        inputs: vec![Source::Cell(0), Source::Primary(0)],
        registered: true,
    };
    let mut cells: Vec<CellConfig> = (0..2).map(toggler).collect();
    cells[1].inputs[0] = Source::Cell(1);
    Bitstream {
        outputs: vec![Source::Cell(0), Source::Cell(1)],
        cells,
    }
}

#[test]
fn fabric_deadline_shard_identity() {
    let fabric = LutFabric::new(4, 2, 1);
    let run = |shards: usize| {
        let mut f = fabric
            .configure(&two_region_togglers())
            .unwrap()
            .with_shards(shards)
            .with_cancel(CancelToken::new().with_deadline(10));
        f.run_until(&[true], 32, |_| false)
    };
    for shards in [1usize, 2] {
        match run(shards) {
            Err(MachineError::Cancelled {
                at_cycle: 10,
                partial,
            }) => {
                assert_eq!(partial.cycles, 10, "x{shards}");
            }
            other => panic!("x{shards}: expected Cancelled at 10, got {other:?}"),
        }
    }
    assert_eq!(format!("{:?}", run(1)), format!("{:?}", run(2)));
}

// -------------------------------------------------------------------------
// VLIW (IAP issue-style variant)
// -------------------------------------------------------------------------

#[test]
fn vliw_deadline_cancels_an_infinite_sequencer_loop() {
    let bundles = vec![Bundle {
        slots: vec![Some(Instr::AddI(0, 0, 1)), None],
        control: Some(Instr::Jmp(0)),
    }];
    let program = VliwProgram::new(bundles, 2).unwrap();
    let mut m = VliwMachine::new(ArraySubtype::I, 2, 4)
        .with_cycle_limit(1_000)
        .with_cancel(CancelToken::new().with_deadline(12));
    expect_cancelled(m.run(&program), 12);
}

//! A compact register ISA for the instruction-flow machines.
//!
//! The taxonomy does not prescribe an ISA; this one is the smallest set
//! that lets the executable machines demonstrate the paper's claims:
//! arithmetic, memory access, control flow, a lane-id query (so one SIMD
//! program can address per-lane data) and explicit inter-processor
//! transfers (which only exist when the DP–DP relation carries a switch).

use std::fmt;

/// Machine word.
pub type Word = i64;

/// Register index (each DP has [`NUM_REGS`] registers).
pub type Reg = u8;

/// Registers per data processor.
pub const NUM_REGS: usize = 16;

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Do nothing for a cycle.
    Nop,
    /// Stop the processor.
    Halt,
    /// `rd <- imm`.
    MovI(Reg, Word),
    /// `rd <- rs`.
    Mov(Reg, Reg),
    /// `rd <- rs1 + rs2`.
    Add(Reg, Reg, Reg),
    /// `rd <- rs1 - rs2`.
    Sub(Reg, Reg, Reg),
    /// `rd <- rs1 * rs2`.
    Mul(Reg, Reg, Reg),
    /// `rd <- min(rs1, rs2)`.
    Min(Reg, Reg, Reg),
    /// `rd <- max(rs1, rs2)`.
    Max(Reg, Reg, Reg),
    /// `rd <- rs + imm`.
    AddI(Reg, Reg, Word),
    /// `rd <- DM[rs]` (address in `rs`).
    Load(Reg, Reg),
    /// `DM[ra] <- rs` (address in `ra`, value in `rs`).
    Store(Reg, Reg),
    /// `rd <- lane index` (0 on scalar machines).
    LaneId(Reg),
    /// Branch to `target` if `rs1 == rs2`.
    Beq(Reg, Reg, usize),
    /// Branch to `target` if `rs1 != rs2`.
    Bne(Reg, Reg, usize),
    /// Branch to `target` if `rs1 < rs2`.
    Blt(Reg, Reg, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Send `rs` to processor `dest` over the DP–DP fabric.
    Send(usize, Reg),
    /// Receive into `rd` from processor `src` over the DP–DP fabric
    /// (stalls until a value is available).
    Recv(Reg, usize),
    /// `rd <- remote lane's register` — SIMD neighbourhood read: fetch
    /// register `rs` of the lane whose index is in register `lane_reg`.
    GetLane(Reg, Reg, Reg),
}

impl Instr {
    /// Is this a control-flow instruction (handled by the IP rather than
    /// the DP)?
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Jmp(_) | Instr::Halt
        )
    }

    /// Does this instruction touch data memory?
    pub fn touches_memory(&self) -> bool {
        matches!(self, Instr::Load(..) | Instr::Store(..))
    }

    /// Does this instruction use the DP–DP fabric?
    pub fn uses_dp_dp(&self) -> bool {
        matches!(self, Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..))
    }

    /// The registers this instruction reads.
    pub fn reads(&self) -> Vec<Reg> {
        match *self {
            Instr::Nop | Instr::Halt | Instr::MovI(..) | Instr::LaneId(_) | Instr::Jmp(_) => {
                vec![]
            }
            Instr::Mov(_, rs) | Instr::AddI(_, rs, _) | Instr::Load(_, rs) => vec![rs],
            Instr::Add(_, a, b)
            | Instr::Sub(_, a, b)
            | Instr::Mul(_, a, b)
            | Instr::Min(_, a, b)
            | Instr::Max(_, a, b) => vec![a, b],
            Instr::Store(ra, rs) => vec![ra, rs],
            Instr::Beq(a, b, _) | Instr::Bne(a, b, _) | Instr::Blt(a, b, _) => vec![a, b],
            Instr::Send(_, rs) => vec![rs],
            Instr::Recv(..) => vec![],
            Instr::GetLane(_, lane, rs) => vec![lane, rs],
        }
    }

    /// The register this instruction writes, if any.
    pub fn writes(&self) -> Option<Reg> {
        match *self {
            Instr::MovI(rd, _)
            | Instr::Mov(rd, _)
            | Instr::Add(rd, ..)
            | Instr::Sub(rd, ..)
            | Instr::Mul(rd, ..)
            | Instr::Min(rd, ..)
            | Instr::Max(rd, ..)
            | Instr::AddI(rd, ..)
            | Instr::Load(rd, _)
            | Instr::LaneId(rd)
            | Instr::Recv(rd, _)
            | Instr::GetLane(rd, ..) => Some(rd),
            _ => None,
        }
    }

    /// Validate register indices against [`NUM_REGS`].
    pub fn registers_valid(&self) -> bool {
        let max = NUM_REGS as Reg;
        self.reads().iter().all(|r| *r < max) && self.writes().is_none_or(|r| r < max)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::MovI(rd, imm) => write!(f, "movi r{rd}, {imm}"),
            Instr::Mov(rd, rs) => write!(f, "mov r{rd}, r{rs}"),
            Instr::Add(rd, a, b) => write!(f, "add r{rd}, r{a}, r{b}"),
            Instr::Sub(rd, a, b) => write!(f, "sub r{rd}, r{a}, r{b}"),
            Instr::Mul(rd, a, b) => write!(f, "mul r{rd}, r{a}, r{b}"),
            Instr::Min(rd, a, b) => write!(f, "min r{rd}, r{a}, r{b}"),
            Instr::Max(rd, a, b) => write!(f, "max r{rd}, r{a}, r{b}"),
            Instr::AddI(rd, rs, imm) => write!(f, "addi r{rd}, r{rs}, {imm}"),
            Instr::Load(rd, rs) => write!(f, "load r{rd}, [r{rs}]"),
            Instr::Store(ra, rs) => write!(f, "store [r{ra}], r{rs}"),
            Instr::LaneId(rd) => write!(f, "laneid r{rd}"),
            Instr::Beq(a, b, t) => write!(f, "beq r{a}, r{b}, @{t}"),
            Instr::Bne(a, b, t) => write!(f, "bne r{a}, r{b}, @{t}"),
            Instr::Blt(a, b, t) => write!(f, "blt r{a}, r{b}, @{t}"),
            Instr::Jmp(t) => write!(f, "jmp @{t}"),
            Instr::Send(dest, rs) => write!(f, "send p{dest}, r{rs}"),
            Instr::Recv(rd, src) => write!(f, "recv r{rd}, p{src}"),
            Instr::GetLane(rd, lane, rs) => write!(f, "getlane r{rd}, [r{lane}].r{rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(Instr::Halt.is_control());
        assert!(Instr::Beq(0, 1, 5).is_control());
        assert!(!Instr::Add(0, 1, 2).is_control());
    }

    #[test]
    fn memory_and_fabric_classification() {
        assert!(Instr::Load(0, 1).touches_memory());
        assert!(Instr::Store(0, 1).touches_memory());
        assert!(!Instr::Mov(0, 1).touches_memory());
        assert!(Instr::Send(3, 0).uses_dp_dp());
        assert!(Instr::GetLane(0, 1, 2).uses_dp_dp());
        assert!(!Instr::Load(0, 1).uses_dp_dp());
    }

    #[test]
    fn read_write_sets() {
        let i = Instr::Add(3, 1, 2);
        assert_eq!(i.reads(), vec![1, 2]);
        assert_eq!(i.writes(), Some(3));
        assert_eq!(Instr::Store(4, 5).reads(), vec![4, 5]);
        assert_eq!(Instr::Store(4, 5).writes(), None);
        assert_eq!(Instr::Halt.reads(), vec![]);
    }

    #[test]
    fn register_validation() {
        assert!(Instr::Add(15, 0, 1).registers_valid());
        assert!(!Instr::Add(16, 0, 1).registers_valid());
        assert!(!Instr::Mov(0, 200).registers_valid());
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(Instr::Add(1, 2, 3).to_string(), "add r1, r2, r3");
        assert_eq!(Instr::Beq(0, 1, 9).to_string(), "beq r0, r1, @9");
        assert_eq!(Instr::GetLane(2, 3, 4).to_string(), "getlane r2, [r3].r4");
    }
}

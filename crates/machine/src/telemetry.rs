//! Cycle-level tracing and metrics for every machine family.
//!
//! The paper's argument is quantitative (flexibility scores, per-class
//! trade-offs), so *why* a run cost what it did must be observable, not
//! just the final [`Stats`](crate::exec::Stats) blob.  This module adds a
//! zero-dependency observability layer:
//!
//! * [`Tracer`] — the hook trait every run loop is generic over.  All
//!   methods have no-op defaults, and the loops are monomorphised per
//!   tracer type, so a [`NullTracer`] compiles away entirely: tracing off
//!   costs nothing on the hot path.
//! * [`EventTrace`] — a bounded ring buffer of cycle-stamped
//!   [`TraceEvent`]s.  Per-class totals are kept in monotonic counters
//!   *outside* the ring, so event accounting stays exact even after the
//!   buffer wraps and old events are overwritten.
//! * [`MetricsRegistry`] — named monotonic counters plus log2-bucketed
//!   [`Histogram`]s (per-DP utilisation, queue depths, backoff delays).
//! * [`Telemetry`] — the everything-on combination of the two.
//!
//! The event taxonomy mirrors the [`Stats`](crate::exec::Stats) fields
//! one-for-one (`Issue` ↔ `instructions`, `Stall` ↔ `stalls`, …), which is
//! what lets `tests/telemetry.rs` reconcile traced counts against the
//! counters exactly for every family.

use std::collections::BTreeMap;

/// Which kind of fault a [`EventKind::FaultInjected`] event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A directed link was down when a send was attempted.
    LinkDown,
    /// An in-flight message was dropped.
    Dropped,
    /// A delivered payload was corrupted.
    Corrupted,
    /// A DP was transiently stalled.
    Stall,
    /// A memory bit was flipped.
    BitFlip,
    /// A DP is permanently failed (recorded once per failed DP).
    DpFailed,
}

/// One cycle-stamped event, as emitted by the machine run loops.
///
/// Every variant that mirrors a [`Stats`](crate::exec::Stats) counter is
/// emitted exactly once per counter increment, so per-class trace totals
/// reconcile with the final statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One instruction issued (mirrors `Stats::instructions`).
    Issue,
    /// One ALU operation retired (mirrors `Stats::alu_ops`).
    AluOp,
    /// One data-memory read (mirrors `Stats::mem_reads`).
    MemRead,
    /// One data-memory write (mirrors `Stats::mem_writes`).
    MemWrite,
    /// One DP–DP transfer delivered (mirrors `Stats::messages`).
    Message {
        /// Source lane.
        from: usize,
        /// Destination lane.
        to: usize,
    },
    /// A transfer crossed a crossbar switch (emitted alongside the
    /// [`EventKind::Message`] it priced; not a `Stats` counter).
    CrossbarTraversal,
    /// A stalled processor-cycle (mirrors `Stats::stalls`).
    Stall,
    /// The fault plan fired (not a `Stats` counter).
    FaultInjected(FaultKind),
    /// A sender retried after a failed transfer.
    Retry,
    /// Work was remapped off a failed component.
    Degradation,
    /// The watchdog cycle budget tripped.
    Watchdog,
    /// The run was cancelled (deadline cycle or asynchronous flag).
    Cancelled,
}

/// The field-less classification of an [`EventKind`], used for counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// Instruction issue.
    Issue,
    /// ALU operation.
    AluOp,
    /// Memory read.
    MemRead,
    /// Memory write.
    MemWrite,
    /// DP–DP message.
    Message,
    /// Crossbar traversal.
    CrossbarTraversal,
    /// Stalled cycle.
    Stall,
    /// Injected fault.
    FaultInjected,
    /// Send retry.
    Retry,
    /// Degraded remap.
    Degradation,
    /// Watchdog trip.
    Watchdog,
    /// Cancellation.
    Cancelled,
}

impl EventClass {
    /// Every class, in display order.
    pub const ALL: [EventClass; 12] = [
        EventClass::Issue,
        EventClass::AluOp,
        EventClass::MemRead,
        EventClass::MemWrite,
        EventClass::Message,
        EventClass::CrossbarTraversal,
        EventClass::Stall,
        EventClass::FaultInjected,
        EventClass::Retry,
        EventClass::Degradation,
        EventClass::Watchdog,
        EventClass::Cancelled,
    ];

    /// A short stable label (used in counter tables and CSV headers).
    pub fn label(&self) -> &'static str {
        match self {
            EventClass::Issue => "issue",
            EventClass::AluOp => "alu",
            EventClass::MemRead => "mem.read",
            EventClass::MemWrite => "mem.write",
            EventClass::Message => "message",
            EventClass::CrossbarTraversal => "crossbar",
            EventClass::Stall => "stall",
            EventClass::FaultInjected => "fault",
            EventClass::Retry => "retry",
            EventClass::Degradation => "degradation",
            EventClass::Watchdog => "watchdog",
            EventClass::Cancelled => "cancelled",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl EventKind {
    /// The field-less class of this event.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::Issue => EventClass::Issue,
            EventKind::AluOp => EventClass::AluOp,
            EventKind::MemRead => EventClass::MemRead,
            EventKind::MemWrite => EventClass::MemWrite,
            EventKind::Message { .. } => EventClass::Message,
            EventKind::CrossbarTraversal => EventClass::CrossbarTraversal,
            EventKind::Stall => EventClass::Stall,
            EventKind::FaultInjected(_) => EventClass::FaultInjected,
            EventKind::Retry => EventClass::Retry,
            EventKind::Degradation => EventClass::Degradation,
            EventKind::Watchdog => EventClass::Watchdog,
            EventKind::Cancelled => EventClass::Cancelled,
        }
    }
}

/// The observation hooks a machine run loop calls.
///
/// All methods default to no-ops and the run loops are generic over the
/// tracer type, so running with [`NullTracer`] monomorphises every hook
/// into nothing — the overhead-when-disabled guarantee.  Implementations
/// that do record must override [`Tracer::enabled`] to return `true`: the
/// run loops use it to skip work that exists only to feed the tracer
/// (counter diffing, per-DP sampling).
pub trait Tracer {
    /// Does this tracer record anything?  Loops skip trace-only work
    /// (e.g. ALU counter diffing) when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Record one cycle-stamped event.
    fn record(&mut self, _cycle: u64, _kind: EventKind) {}

    /// Record `n` identical events in one call (SIMD broadcasts issue one
    /// instruction per live lane).
    fn record_many(&mut self, cycle: u64, kind: EventKind, n: u64) {
        for _ in 0..n {
            self.record(cycle, kind);
        }
    }

    /// Bump a named monotonic counter.
    fn counter(&mut self, _name: &str, _delta: u64) {}

    /// Record one observation of a named distribution (histogram).
    fn sample(&mut self, _name: &str, _value: u64) {}

    /// Open a hierarchical phase span at `cycle` (see
    /// [`profile`](crate::profile)).  Defaults to a no-op so span hooks,
    /// like every other hook, compile away under [`NullTracer`].
    fn span_enter(&mut self, _cycle: u64, _phase: crate::profile::Phase) {}

    /// Close the innermost open phase span at `cycle`.
    fn span_exit(&mut self, _cycle: u64) {}

    /// Record an instantaneous phase marker at `cycle` (barrier crossings,
    /// deliveries, retries — events with no duration of their own).
    fn span_mark(&mut self, _cycle: u64, _phase: crate::profile::Phase) {}
}

/// The do-nothing tracer: every hook inlines away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record_many(&mut self, _cycle: u64, _kind: EventKind, _n: u64) {}
}

/// One recorded event with its cycle stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The machine cycle the event occurred on.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Default ring-buffer capacity of [`EventTrace::new`] /
/// [`Telemetry::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded ring buffer of cycle-stamped events.
///
/// When the buffer is full the **oldest** event is overwritten (and
/// [`EventTrace::dropped`] counts it), but the per-class totals are kept
/// in monotonic counters outside the ring, so [`EventTrace::count`] is
/// exact regardless of capacity.
#[derive(Debug, Clone)]
pub struct EventTrace {
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Oldest slot once the buffer has wrapped.
    head: usize,
    counts: [u64; EventClass::ALL.len()],
    dropped: u64,
    last_cycle: u64,
}

impl EventTrace {
    /// An empty trace bounded at [`DEFAULT_TRACE_CAPACITY`] events.
    pub fn new() -> EventTrace {
        EventTrace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty trace bounded at `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> EventTrace {
        let capacity = capacity.max(1);
        EventTrace {
            capacity,
            buf: Vec::new(),
            head: 0,
            counts: [0; EventClass::ALL.len()],
            dropped: 0,
            last_cycle: 0,
        }
    }

    /// The ring-buffer bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event.
    pub fn push(&mut self, cycle: u64, kind: EventKind) {
        self.counts[kind.class().index()] += 1;
        self.last_cycle = self.last_cycle.max(cycle);
        let event = TraceEvent { cycle, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Exact monotonic total for one event class (unaffected by ring
    /// overwrites).
    pub fn count(&self, class: EventClass) -> u64 {
        self.counts[class.index()]
    }

    /// Exact total over all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events currently held in the ring (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The highest cycle stamp recorded.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// `(label, exact count)` for every class, in display order — the
    /// plain-data form the report crate renders.
    pub fn class_counts(&self) -> Vec<(String, u64)> {
        EventClass::ALL
            .iter()
            .map(|c| (c.label().to_owned(), self.count(*c)))
            .collect()
    }
}

impl Default for EventTrace {
    fn default() -> Self {
        EventTrace::new()
    }
}

impl Tracer for EventTrace {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.push(cycle, kind);
    }
}

/// A log2-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 while empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `buckets[i]` counts values whose log2 floor is `i - 1` (bucket 0
    /// holds zeros); the last bucket absorbs everything larger.
    buckets: [u64; 17],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 17],
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(16)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Histogram::bucket_index(value)] += 1;
    }

    /// Mean observation (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The log2 bucket counts (index 0 = zeros).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Named monotonic counters and histograms sampled from the run loops.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Bump a named counter by `delta` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// A counter's current value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one observation in a named histogram.
    pub fn sample(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name — plain data for reporting.
    pub fn counter_list(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// All histograms as `(name, count, min, max, sum)`, sorted by name —
    /// plain data for reporting.
    pub fn histogram_list(&self) -> Vec<(String, u64, u64, u64, u64)> {
        self.histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.count, h.min, h.max, h.sum))
            .collect()
    }
}

/// The everything-on tracer: a bounded [`EventTrace`] plus a
/// [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// The recorded event ring and exact per-class totals.
    pub trace: EventTrace,
    /// Counters and histograms.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Telemetry with the default ring capacity.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Telemetry with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            trace: EventTrace::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
        }
    }
}

impl Tracer for Telemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.trace.push(cycle, kind);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn sample(&mut self, name: &str, value: u64) {
        self.metrics.sample(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NullTracer.enabled());
    }

    #[test]
    fn every_kind_maps_to_a_distinct_class_index() {
        let kinds = [
            EventKind::Issue,
            EventKind::AluOp,
            EventKind::MemRead,
            EventKind::MemWrite,
            EventKind::Message { from: 0, to: 1 },
            EventKind::CrossbarTraversal,
            EventKind::Stall,
            EventKind::FaultInjected(FaultKind::BitFlip),
            EventKind::Retry,
            EventKind::Degradation,
            EventKind::Watchdog,
            EventKind::Cancelled,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (i, kind) in kinds.iter().enumerate() {
            assert_eq!(kind.class(), EventClass::ALL[i]);
            assert!(seen.insert(kind.class().index()));
        }
        assert_eq!(seen.len(), EventClass::ALL.len());
    }

    #[test]
    fn ring_buffer_overwrites_oldest_but_counts_stay_exact() {
        let mut trace = EventTrace::with_capacity(4);
        for cycle in 1..=10u64 {
            trace.push(cycle, EventKind::Issue);
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 6);
        assert_eq!(trace.count(EventClass::Issue), 10, "counts survive wraps");
        assert_eq!(trace.total(), 10);
        assert_eq!(trace.last_cycle(), 10);
        // Retained events are the newest four, oldest first.
        let cycles: Vec<u64> = trace.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10]);
    }

    #[test]
    fn class_counts_cover_every_class_in_order() {
        let mut trace = EventTrace::new();
        trace.push(1, EventKind::Stall);
        trace.push(2, EventKind::Stall);
        let counts = trace.class_counts();
        assert_eq!(counts.len(), EventClass::ALL.len());
        assert_eq!(counts[0], ("issue".to_owned(), 0));
        assert!(counts.contains(&("stall".to_owned(), 2)));
    }

    #[test]
    fn default_record_many_loops_record() {
        let mut trace = EventTrace::new();
        trace.record_many(3, EventKind::Issue, 5);
        assert_eq!(trace.count(EventClass::Issue), 5);
        assert!(trace.events().all(|e| e.cycle == 3));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[11], 1); // 1024
        assert_eq!(buckets[16], 1); // overflow bucket
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_edges_are_well_defined() {
        // Empty: mean is 0.0, not NaN, and min/max stay at their
        // documented zero placeholders.
        let empty = Histogram::default();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!((empty.count, empty.min, empty.max, empty.sum), (0, 0, 0, 0));

        // A lone zero is a real observation, distinct from empty.
        let mut zero = Histogram::default();
        zero.record(0);
        assert_eq!((zero.count, zero.min, zero.max, zero.sum), (1, 0, 0, 0));
        assert_eq!(zero.mean(), 0.0);
        assert_eq!(zero.bucket_counts()[0], 1);
        assert_eq!(zero.bucket_counts()[1..].iter().sum::<u64>(), 0);

        // u64::MAX lands in the overflow bucket and the sum saturates
        // instead of wrapping when recorded repeatedly.
        let mut max = Histogram::default();
        max.record(u64::MAX);
        max.record(u64::MAX);
        assert_eq!(max.count, 2);
        assert_eq!(max.sum, u64::MAX);
        assert_eq!(max.max, u64::MAX);
        assert_eq!(max.bucket_counts()[16], 2);
        assert!(max.mean().is_finite());

        // Bucket boundaries: 2^15 - 1 is the last finite bucket's top;
        // 2^15 spills into the overflow bucket.
        let mut edge = Histogram::default();
        edge.record((1 << 15) - 1);
        edge.record(1 << 15);
        assert_eq!(edge.bucket_counts()[15], 1);
        assert_eq!(edge.bucket_counts()[16], 1);
    }

    #[test]
    fn registry_counters_and_histograms_accumulate() {
        let mut m = MetricsRegistry::new();
        m.add("retries", 1);
        m.add("retries", 2);
        m.sample("backoff.delay", 1);
        m.sample("backoff.delay", 4);
        assert_eq!(m.counter("retries"), 3);
        assert_eq!(m.counter("absent"), 0);
        let h = m.histogram("backoff.delay").unwrap();
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 1, 4, 5));
        assert_eq!(m.counter_list(), vec![("retries".to_owned(), 3)]);
        assert_eq!(
            m.histogram_list(),
            vec![("backoff.delay".to_owned(), 2, 1, 4, 5)]
        );
    }

    #[test]
    fn telemetry_routes_all_three_channels() {
        let mut t = Telemetry::with_capacity(8);
        assert!(t.enabled());
        t.record(1, EventKind::AluOp);
        t.record_many(2, EventKind::Issue, 3);
        t.counter("runs", 1);
        t.sample("dp.alu_ops", 9);
        assert_eq!(t.trace.count(EventClass::AluOp), 1);
        assert_eq!(t.trace.count(EventClass::Issue), 3);
        assert_eq!(t.metrics.counter("runs"), 1);
        assert_eq!(t.metrics.histogram("dp.alu_ops").unwrap().max, 9);
    }
}

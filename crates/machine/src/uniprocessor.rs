//! The instruction-flow uni-processor (IUP): one IP, one DP, direct links —
//! the Von Neumann baseline every other machine is compared against.

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::dp::{DataProcessor, LocalOutcome};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::isa::Word;
use crate::mem::{BankedMemory, DataTopology};
use crate::profile::Phase;
use crate::program::Program;
use crate::telemetry::{EventKind, NullTracer, Tracer};

/// Default cycle budget before a run is declared livelocked.
pub const DEFAULT_CYCLE_LIMIT: u64 = 10_000_000;

/// A uni-processor machine.
#[derive(Debug)]
pub struct UniProcessor {
    dp: DataProcessor,
    mem: BankedMemory,
    cycle_limit: u64,
    cancel: CancelToken,
}

impl UniProcessor {
    /// A uni-processor with a single private memory bank of `mem_words`.
    pub fn new(mem_words: usize) -> UniProcessor {
        UniProcessor {
            dp: DataProcessor::new(0),
            mem: BankedMemory::new(1, mem_words, DataTopology::PrivateBanks),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
        }
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> UniProcessor {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token for subsequent runs (deadline cycles
    /// stop deterministically; the flag stops promptly).
    pub fn with_cancel(mut self, cancel: CancelToken) -> UniProcessor {
        self.cancel = cancel;
        self
    }

    /// Install a cancellation token without consuming the machine (for
    /// pooled instances that are reset and reused between requests).
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Scrub architectural state — registers, counters, every memory
    /// word — without a single allocation, so a pooled instance can be
    /// reused across tenants at zero steady-state heap cost.
    ///
    /// The cancellation token is deliberately left in place (replacing
    /// it would allocate): cancellation is per-request state, so a pool
    /// that installed a request token must swap in a fresh one with
    /// [`UniProcessor::set_cancel`] before the next checkout.
    pub fn reset(&mut self) {
        self.dp.reset();
        self.mem.clear();
    }

    /// The data memory (for workload setup and result checks).
    pub fn memory_mut(&mut self) -> &mut BankedMemory {
        &mut self.mem
    }

    /// The data memory.
    pub fn memory(&self) -> &BankedMemory {
        &self.mem
    }

    /// Read a register after a run.
    pub fn reg(&self, r: u8) -> Word {
        self.dp.reg(r)
    }

    /// Run a program to completion; returns execution statistics.
    ///
    /// The uni-processor has no DP–DP fabric, so any `send`/`recv`/
    /// `getlane` instruction is a routing error — exactly the paper's point
    /// that an IUP "doesn't have enough DPs" to act as an array processor.
    pub fn run(&mut self, program: &Program) -> Result<Stats, MachineError> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`UniProcessor::run`] with observation hooks; with a [`NullTracer`]
    /// this monomorphises back to the plain run loop.
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        let mut stats = Stats::default();
        let mut pc = 0usize;
        let base = self.dp.counters();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        loop {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            let Some(instr) = program.fetch(pc) else {
                // Running off the end is a clean stop.
                break;
            };
            stats.cycles += 1;
            if instr.uses_dp_dp() {
                return Err(MachineError::RouteDenied {
                    from: 0,
                    to: 0,
                    reason: "a uni-processor has no DP-DP fabric".to_owned(),
                });
            }
            stats.instructions += 1;
            tracer.record(stats.cycles, EventKind::Issue);
            match self
                .dp
                .execute_traced(instr, &mut self.mem, stats.cycles, tracer)?
            {
                LocalOutcome::Next => pc += 1,
                LocalOutcome::Branch(t) => pc = t,
                LocalOutcome::Halt => break,
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        let (alu, mr, mw) = self.dp.counters();
        stats.alu_ops = alu - base.0;
        stats.mem_reads = mr - base.1;
        stats.mem_writes = mw - base.2;
        if tracer.enabled() {
            tracer.sample("dp.alu_ops", stats.alu_ops);
            tracer.sample("dp.mem_ops", stats.mem_reads + stats.mem_writes);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;
    use crate::program::Assembler;

    /// Sum memory[0..8] into r2 and store at memory[15].
    fn sum_program() -> Program {
        let mut asm = Assembler::new();
        asm.movi(0, 0) // index
            .movi(1, 8) // limit
            .movi(2, 0); // accumulator
        asm.label("loop").unwrap();
        asm.emit(Instr::Load(3, 0))
            .emit(Instr::Add(2, 2, 3))
            .emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.movi(4, 15).emit(Instr::Store(4, 2)).emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn runs_a_reduction() {
        let mut m = UniProcessor::new(16);
        m.memory_mut().bank_mut(0).load(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let stats = m.run(&sum_program()).unwrap();
        assert_eq!(m.memory().bank(0).contents()[15], 36);
        assert_eq!(m.reg(2), 36);
        assert!(stats.cycles > 8 * 4);
        assert_eq!(stats.mem_reads, 8);
        assert_eq!(stats.mem_writes, 1);
        assert_eq!(stats.ipc(), 1.0); // perfect scalar pipeline
    }

    #[test]
    fn falls_off_the_end_cleanly() {
        let mut m = UniProcessor::new(8);
        let prog = Program::new(vec![Instr::MovI(0, 1)]).unwrap();
        let stats = m.run(&prog).unwrap();
        assert_eq!(stats.instructions, 1);
        assert_eq!(m.reg(0), 1);
    }

    #[test]
    fn infinite_loop_trips_the_watchdog_with_partial_stats() {
        let mut m = UniProcessor::new(8).with_cycle_limit(1_000);
        let prog = Program::new(vec![Instr::Jmp(0)]).unwrap();
        match m.run(&prog) {
            Err(MachineError::WatchdogTimeout {
                limit: 1_000,
                partial,
            }) => {
                assert_eq!(partial.cycles, 1_000);
                assert_eq!(partial.instructions, 1_000);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn fabric_instructions_are_route_denied() {
        let mut m = UniProcessor::new(8);
        let prog = Program::new(vec![Instr::Send(1, 0), Instr::Halt]).unwrap();
        assert!(matches!(
            m.run(&prog),
            Err(MachineError::RouteDenied { .. })
        ));
    }

    #[test]
    fn lane_id_is_zero_on_a_scalar_machine() {
        let mut m = UniProcessor::new(8);
        let prog = Program::new(vec![Instr::LaneId(0), Instr::Halt]).unwrap();
        m.run(&prog).unwrap();
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn memory_violations_surface() {
        let mut m = UniProcessor::new(4);
        let prog = Program::new(vec![Instr::MovI(0, 100), Instr::Load(1, 0), Instr::Halt]).unwrap();
        assert!(matches!(
            m.run(&prog),
            Err(MachineError::MemoryOutOfBounds { .. })
        ));
    }
}

//! Workloads: the programs the flexibility claims are tested with.
//!
//! Each workload has a plain-Rust reference implementation and compilers
//! for the machine families that can run it.  Where a family *cannot* run
//! a workload, the compiler returns the taxonomy-level reason as a typed
//! error — e.g. an array processor asked to run `n` different programs
//! fails with the paper's own argument ("IAP-I cannot execute 'n'
//! different programs at the same time").

use crate::array::{ArrayMachine, ArraySubtype};
use crate::dataflow::{graph::library, DataflowMachine, DataflowSubtype, Placement};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::{FaultPlan, LinkOutage};
use crate::fleet::FleetExec;
use crate::interconnect::FabricTopology;
use crate::isa::{Instr, Word};
use crate::multi::{MultiMachine, MultiSubtype};
use crate::program::{Assembler, Program};
use crate::spatial::SpatialMachine;
use crate::telemetry::{NullTracer, Tracer};
use crate::uniprocessor::UniProcessor;
use crate::universal::{Bitstream, CellConfig, LutCell, LutFabric, Source};

/// Outputs plus statistics from one workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadResult {
    /// Output values (workload-defined order).
    pub outputs: Vec<Word>,
    /// Execution statistics.
    pub stats: Stats,
}

// ---------------------------------------------------------------------------
// Vector addition: c[i] = a[i] + b[i].
// ---------------------------------------------------------------------------

/// Reference vector addition.
pub fn vector_add_reference(a: &[Word], b: &[Word]) -> Vec<Word> {
    a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect()
}

/// The per-lane SIMD kernel used by array machines and SIMD-emulating
/// multiprocessors (bank layout: `[a, b, c]` at addresses 0, 1, 2).
fn vector_add_kernel() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0)
        .movi(1, 1)
        .movi(2, 2)
        .emit(Instr::Load(3, 0))
        .emit(Instr::Load(4, 1))
        .emit(Instr::Add(5, 3, 4))
        .emit(Instr::Store(2, 5))
        .emit(Instr::Halt);
    asm.assemble().expect("vector-add kernel is well formed")
}

/// Vector addition on a uni-processor: a sequential loop.  Memory layout:
/// `a` at 0.., `b` at n.., `c` at 2n...
pub fn run_vector_add_uni(a: &[Word], b: &[Word]) -> Result<WorkloadResult, MachineError> {
    run_vector_add_uni_traced(a, b, &mut NullTracer)
}

/// [`run_vector_add_uni`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_vector_add_uni_traced<T: Tracer>(
    a: &[Word],
    b: &[Word],
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let n = a.len();
    if b.len() != n {
        return Err(MachineError::config("vector lengths differ"));
    }
    let mut machine = UniProcessor::new(3 * n + 1);
    {
        let bank = machine.memory_mut().bank_mut(0);
        for (i, &v) in a.iter().enumerate() {
            bank.write(i, v);
        }
        for (i, &v) in b.iter().enumerate() {
            bank.write(n + i, v);
        }
    }
    let mut asm = Assembler::new();
    asm.movi(0, 0) // i
        .movi(1, n as Word);
    asm.label("loop").unwrap();
    asm.emit(Instr::Load(2, 0)) // a[i]
        .emit(Instr::AddI(3, 0, n as Word))
        .emit(Instr::Load(4, 3)) // b[i]
        .emit(Instr::Add(5, 2, 4))
        .emit(Instr::AddI(6, 0, 2 * n as Word))
        .emit(Instr::Store(6, 5))
        .emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    let stats = machine.run_traced(&asm.assemble()?, tracer)?;
    let outputs = machine.memory().bank(0).contents()[2 * n..3 * n].to_vec();
    Ok(WorkloadResult { outputs, stats })
}

/// Vector addition on an array machine: one lane per element.
pub fn run_vector_add_array(
    subtype: ArraySubtype,
    a: &[Word],
    b: &[Word],
) -> Result<WorkloadResult, MachineError> {
    run_vector_add_array_traced(subtype, a, b, &mut NullTracer)
}

/// [`run_vector_add_array`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_vector_add_array_traced<T: Tracer>(
    subtype: ArraySubtype,
    a: &[Word],
    b: &[Word],
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let n = a.len();
    if b.len() != n || n == 0 {
        return Err(MachineError::config("vector lengths differ or empty"));
    }
    let mut machine = ArrayMachine::new(subtype, n, 4);
    for (lane, (&x, &y)) in a.iter().zip(b).enumerate() {
        machine.memory_mut().bank_mut(lane).load(&[x, y, 0, 0]);
    }
    // On shared-crossbar sub-types the same layout works because global
    // bank addressing coincides with lane-local offsets only for the
    // private case; compile a lane-relative program instead.
    let program = match subtype.data_topology() {
        crate::mem::DataTopology::PrivateBanks => vector_add_kernel(),
        crate::mem::DataTopology::SharedCrossbar => {
            let mut asm = Assembler::new();
            asm.emit(Instr::LaneId(7))
                .movi(6, 4)
                .emit(Instr::Mul(7, 7, 6)) // lane * bank_size
                .emit(Instr::Mov(0, 7))
                .emit(Instr::AddI(1, 7, 1))
                .emit(Instr::AddI(2, 7, 2))
                .emit(Instr::Load(3, 0))
                .emit(Instr::Load(4, 1))
                .emit(Instr::Add(5, 3, 4))
                .emit(Instr::Store(2, 5))
                .emit(Instr::Halt);
            asm.assemble()?
        }
    };
    let stats = machine.run_traced(&program, tracer)?;
    let outputs = (0..n)
        .map(|lane| machine.memory().bank(lane).contents()[2])
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

/// Vector addition on a multi-processor in SIMD-emulation mode (the
/// morphing claim: any IMP acts as an array processor).
pub fn run_vector_add_multi(
    subtype: MultiSubtype,
    a: &[Word],
    b: &[Word],
) -> Result<WorkloadResult, MachineError> {
    run_vector_add_multi_traced(subtype, a, b, &mut NullTracer)
}

/// [`run_vector_add_multi`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_vector_add_multi_traced<T: Tracer>(
    subtype: MultiSubtype,
    a: &[Word],
    b: &[Word],
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let n = a.len();
    if b.len() != n || n < 2 {
        return Err(MachineError::config("need at least two elements"));
    }
    let mut machine = MultiMachine::new(subtype, n, 4);
    for (lane, (&x, &y)) in a.iter().zip(b).enumerate() {
        machine.memory_mut().bank_mut(lane).load(&[x, y, 0, 0]);
    }
    if subtype.dp_dm_crossbar() {
        // Shared memory: compile lane-relative addressing.
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(7))
            .movi(6, 4)
            .emit(Instr::Mul(7, 7, 6))
            .emit(Instr::Mov(0, 7))
            .emit(Instr::AddI(1, 7, 1))
            .emit(Instr::AddI(2, 7, 2))
            .emit(Instr::Load(3, 0))
            .emit(Instr::Load(4, 1))
            .emit(Instr::Add(5, 3, 4))
            .emit(Instr::Store(2, 5))
            .emit(Instr::Halt);
        let stats = machine.run_simd_traced(&asm.assemble()?, tracer)?;
        let outputs = (0..n)
            .map(|lane| machine.memory().bank(lane).contents()[2])
            .collect();
        return Ok(WorkloadResult { outputs, stats });
    }
    let stats = machine.run_simd_traced(&vector_add_kernel(), tracer)?;
    let outputs = (0..n)
        .map(|lane| machine.memory().bank(lane).contents()[2])
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

// ---------------------------------------------------------------------------
// MIMD mix: core i runs a *different* program over its private slice.
// ---------------------------------------------------------------------------

/// The per-core operation of the MIMD mix (cycles through sum, product,
/// maximum).
fn mimd_op(core: usize, slice: &[Word]) -> Word {
    match core % 3 {
        0 => slice.iter().fold(0, |acc, &v| acc.wrapping_add(v)),
        1 => slice.iter().fold(1, |acc, &v| acc.wrapping_mul(v)),
        _ => slice.iter().copied().max().unwrap_or(Word::MIN),
    }
}

/// Reference MIMD mix.
pub fn mimd_mix_reference(slices: &[Vec<Word>]) -> Vec<Word> {
    slices
        .iter()
        .enumerate()
        .map(|(i, s)| mimd_op(i, s))
        .collect()
}

/// The per-core MIMD-mix program.  `base` is the core's address offset:
/// 0 with private banks (lane-local addressing), `core * bank_size` when
/// the DP–DM relation is a shared crossbar (global addressing).
fn mimd_program(core: usize, len: usize, base: Word) -> Result<Program, MachineError> {
    let mut asm = Assembler::new();
    let out_addr = base + len as Word; // result stored after the slice
    match core % 3 {
        0 | 1 => {
            let (init, op): (Word, fn(u8, u8, u8) -> Instr) = if core.is_multiple_of(3) {
                (0, |d, a, b| Instr::Add(d, a, b))
            } else {
                (1, |d, a, b| Instr::Mul(d, a, b))
            };
            asm.movi(0, base).movi(1, base + len as Word).movi(2, init);
            asm.label("loop").unwrap();
            asm.emit(Instr::Load(3, 0))
                .emit(op(2, 2, 3))
                .emit(Instr::AddI(0, 0, 1));
            asm.blt(0, 1, "loop");
            asm.movi(4, out_addr)
                .emit(Instr::Store(4, 2))
                .emit(Instr::Halt);
        }
        _ => {
            asm.movi(0, base)
                .movi(1, base + len as Word)
                .movi(2, Word::MIN);
            asm.label("loop").unwrap();
            asm.emit(Instr::Load(3, 0))
                .emit(Instr::Max(2, 2, 3))
                .emit(Instr::AddI(0, 0, 1));
            asm.blt(0, 1, "loop");
            asm.movi(4, out_addr)
                .emit(Instr::Store(4, 2))
                .emit(Instr::Halt);
        }
    }
    asm.assemble()
}

/// MIMD mix on a multi-processor: the capability an array machine lacks.
pub fn run_mimd_mix_multi(
    subtype: MultiSubtype,
    slices: &[Vec<Word>],
) -> Result<WorkloadResult, MachineError> {
    run_mimd_mix_multi_traced(subtype, slices, &mut NullTracer)
}

/// [`run_mimd_mix_multi`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_mimd_mix_multi_traced<T: Tracer>(
    subtype: MultiSubtype,
    slices: &[Vec<Word>],
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let cores = slices.len();
    if cores < 2 {
        return Err(MachineError::config("need at least two slices"));
    }
    let len = slices[0].len();
    if slices.iter().any(|s| s.len() != len) || len == 0 {
        return Err(MachineError::config(
            "slices must be equal-length and non-empty",
        ));
    }
    let mut machine = MultiMachine::new(subtype, cores, len + 1);
    for (core, slice) in slices.iter().enumerate() {
        machine.memory_mut().bank_mut(core).load(slice);
    }
    let bank_size = (len + 1) as Word;
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|c| {
            let base = if subtype.dp_dm_crossbar() {
                c as Word * bank_size
            } else {
                0
            };
            mimd_program(c, len, base)
        })
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores)
        .map(|c| machine.memory().bank(c).contents()[len])
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

/// MIMD mix "on" an array machine: always a typed refusal — a single
/// instruction processor cannot issue `n` different instruction streams.
pub fn run_mimd_mix_array(
    subtype: ArraySubtype,
    slices: &[Vec<Word>],
) -> Result<WorkloadResult, MachineError> {
    let distinct = slices.len().min(3); // programs cycle with period 3
    if distinct <= 1 {
        // One program only: that is just SIMD, which the array does run.
        let flat: Vec<Vec<Word>> = slices.to_vec();
        let reference = mimd_mix_reference(&flat);
        // Single-op mixes degenerate to a reduction; run it as SIMD by
        // reusing the multi-style kernel is out of scope here — report the
        // reference directly as this branch only exists for completeness.
        return Ok(WorkloadResult {
            outputs: reference,
            stats: Stats::default(),
        });
    }
    Err(MachineError::unsupported(
        format!("{} array machine", subtype.class_name()),
        format!(
            "the workload needs {distinct} different programs at the same time, \
             but an array processor has a single instruction processor \
             broadcasting one stream (cf. Section III-B: IAP cannot execute \
             'n' different programs)"
        ),
    ))
}

// ---------------------------------------------------------------------------
// Reduction: sum of a data vector.
// ---------------------------------------------------------------------------

/// Reference sum.
pub fn reduce_sum_reference(data: &[Word]) -> Word {
    data.iter().fold(0, |acc, &v| acc.wrapping_add(v))
}

/// The placement policy that fits a data-flow sub-type's switches:
/// everything-crossbar machines spread freely; private-bank machines pin
/// I/O to its bank (islands); shared-memory-only machines serialise on
/// one DP (no cross-DP edges allowed); DMP-I gets islands and will be
/// refused by the engine when the graph genuinely needs what it lacks.
fn dataflow_placement(subtype: DataflowSubtype) -> Placement {
    match (subtype.dp_dp_crossbar(), subtype.dp_dm_crossbar()) {
        (true, true) => Placement::RoundRobin,
        (true, false) => Placement::Islands,
        (false, true) => Placement::AllOnOne,
        (false, false) => Placement::Islands,
    }
}

/// Reduction on a data-flow machine via a balanced tree graph.
pub fn run_reduce_dataflow(
    subtype: DataflowSubtype,
    n_dps: usize,
    data: &[Word],
) -> Result<WorkloadResult, MachineError> {
    run_reduce_dataflow_traced(subtype, n_dps, data, &mut NullTracer)
}

/// [`run_reduce_dataflow`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_reduce_dataflow_traced<T: Tracer>(
    subtype: DataflowSubtype,
    n_dps: usize,
    data: &[Word],
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    run_reduce_dataflow_with(subtype, n_dps, data, false, tracer)
}

/// [`run_reduce_dataflow_traced`] with an explicit scheduler choice:
/// `dense` forces the per-cycle reference firing loop (the benchmark
/// twin of the event-driven default).
pub fn run_reduce_dataflow_with<T: Tracer>(
    subtype: DataflowSubtype,
    n_dps: usize,
    data: &[Word],
    dense: bool,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let padded = data.len().next_power_of_two().max(2);
    let mut inputs = data.to_vec();
    inputs.resize(padded, 0);
    let graph = library::tree_sum(padded);
    let machine = DataflowMachine::new(subtype, n_dps)?.with_dense_reference(dense);
    let placement = if subtype == DataflowSubtype::Uni {
        Placement::RoundRobin
    } else {
        dataflow_placement(subtype)
    };
    let run = machine.run_traced(&graph, &inputs, &placement, tracer)?;
    Ok(WorkloadResult {
        outputs: run.outputs,
        stats: run.stats,
    })
}

/// Reduction on a uni-processor.
pub fn run_reduce_uni(data: &[Word]) -> Result<WorkloadResult, MachineError> {
    let n = data.len();
    let mut machine = UniProcessor::new(n + 1);
    machine.memory_mut().bank_mut(0).load(data);
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, n as Word).movi(2, 0);
    asm.label("loop").unwrap();
    asm.emit(Instr::Load(3, 0))
        .emit(Instr::Add(2, 2, 3))
        .emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.movi(4, n as Word)
        .emit(Instr::Store(4, 2))
        .emit(Instr::Halt);
    let stats = machine.run(&asm.assemble()?)?;
    Ok(WorkloadResult {
        outputs: vec![machine.memory().bank(0).contents()[n]],
        stats,
    })
}

// ---------------------------------------------------------------------------
// FIR filter: y[j] = sum_k taps[k] * x[j + k].
// ---------------------------------------------------------------------------

/// Reference sliding FIR (valid positions only).
pub fn fir_reference(taps: &[Word], signal: &[Word]) -> Vec<Word> {
    if signal.len() < taps.len() {
        return Vec::new();
    }
    (0..=signal.len() - taps.len())
        .map(|j| {
            taps.iter().enumerate().fold(0, |acc: Word, (k, &t)| {
                acc.wrapping_add(t.wrapping_mul(signal[j + k]))
            })
        })
        .collect()
}

/// Sliding FIR on a data-flow machine: one graph evaluation per output
/// position (stats accumulate).
pub fn run_fir_dataflow(
    subtype: DataflowSubtype,
    n_dps: usize,
    taps: &[Word],
    signal: &[Word],
) -> Result<WorkloadResult, MachineError> {
    if taps.is_empty() || signal.len() < taps.len() {
        return Err(MachineError::config("signal shorter than the filter"));
    }
    let graph = library::fir(taps);
    let machine = DataflowMachine::new(subtype, n_dps)?;
    let placement = if subtype == DataflowSubtype::Uni {
        Placement::RoundRobin
    } else {
        dataflow_placement(subtype)
    };
    let mut outputs = Vec::new();
    let mut stats = Stats::default();
    for j in 0..=signal.len() - taps.len() {
        let window = &signal[j..j + taps.len()];
        let run = machine.run(&graph, window, &placement)?;
        outputs.push(run.outputs[0]);
        stats = stats.accumulate_sequential(run.stats);
    }
    Ok(WorkloadResult { outputs, stats })
}

/// Sliding FIR on a SIMD array: lane `j` computes output position `j`,
/// which means every lane must read the *overlapping* window
/// `signal[j..j+k]` — only possible when DP–DM is a crossbar (IAP-III /
/// IAP-IV).  On private-bank sub-types the overlap is unreachable and the
/// run fails with a typed error: the concrete content of the IAP-I→IAP-III
/// flexibility step.
pub fn run_fir_array(
    subtype: ArraySubtype,
    taps: &[Word],
    signal: &[Word],
) -> Result<WorkloadResult, MachineError> {
    if taps.is_empty() || signal.len() < taps.len() {
        return Err(MachineError::config("signal shorter than the filter"));
    }
    let k = taps.len();
    let out_count = signal.len() - k + 1;
    if out_count < 1 {
        return Err(MachineError::config("no output positions"));
    }
    if subtype.data_topology() == crate::mem::DataTopology::PrivateBanks {
        return Err(MachineError::unsupported(
            format!("{} array machine", subtype.class_name()),
            "a sliding FIR needs every lane to read an overlapping signal \
             window from its neighbours' banks, but DP-DM is a direct switch \
             (private banks); IAP-III/IAP-IV run this workload",
        ));
    }
    // Shared-crossbar layout: bank 0.. hold the global array
    // [taps..., signal...]; each lane gathers its window.
    let lanes = out_count;
    let total_words = k + signal.len();
    let bank_words = total_words.div_ceil(lanes).max(2);
    let mut machine = ArrayMachine::new(subtype, lanes, bank_words);
    {
        // Fill global memory through lane 0's crossbar view.
        let mem = machine.memory_mut();
        for (i, &t) in taps.iter().enumerate() {
            mem.write(0, i as Word, t)?;
        }
        for (i, &x) in signal.iter().enumerate() {
            mem.write(0, (k + i) as Word, x)?;
        }
    }
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0)) // j
        .movi(1, 0) // tap index
        .movi(2, k as Word)
        .movi(3, 0); // acc
    asm.label("tap").unwrap();
    asm.emit(Instr::Load(4, 1)) // taps[t]
        .emit(Instr::Add(5, 0, 1)) // j + t
        .emit(Instr::AddI(5, 5, k as Word))
        .emit(Instr::Load(6, 5)) // signal[j + t]
        .emit(Instr::Mul(7, 4, 6))
        .emit(Instr::Add(3, 3, 7))
        .emit(Instr::AddI(1, 1, 1));
    asm.blt(1, 2, "tap");
    asm.emit(Instr::Halt);
    let stats = machine.run(&asm.assemble()?)?;
    let outputs = (0..out_count)
        .map(|lane| machine.lane_reg(lane, 3))
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

/// Sliding FIR on a uni-processor (nested loop).
pub fn run_fir_uni(taps: &[Word], signal: &[Word]) -> Result<WorkloadResult, MachineError> {
    if taps.is_empty() || signal.len() < taps.len() {
        return Err(MachineError::config("signal shorter than the filter"));
    }
    let k = taps.len();
    let n = signal.len();
    let out_count = n - k + 1;
    // Layout: taps at 0..k, signal at k..k+n, outputs at k+n...
    let mut machine = UniProcessor::new(k + n + out_count);
    {
        let bank = machine.memory_mut().bank_mut(0);
        for (i, &t) in taps.iter().enumerate() {
            bank.write(i, t);
        }
        for (i, &x) in signal.iter().enumerate() {
            bank.write(k + i, x);
        }
    }
    let mut asm = Assembler::new();
    asm.movi(0, 0) // j
        .movi(1, out_count as Word);
    asm.label("outer").unwrap();
    asm.movi(2, 0) // k index
        .movi(3, k as Word)
        .movi(4, 0); // acc
    asm.label("inner").unwrap();
    asm.emit(Instr::Load(5, 2)) // taps[k]
        .emit(Instr::Add(6, 0, 2))
        .emit(Instr::AddI(6, 6, k as Word))
        .emit(Instr::Load(7, 6)) // signal[j + k]
        .emit(Instr::Mul(8, 5, 7))
        .emit(Instr::Add(4, 4, 8))
        .emit(Instr::AddI(2, 2, 1));
    asm.blt(2, 3, "inner");
    asm.emit(Instr::AddI(9, 0, (k + n) as Word))
        .emit(Instr::Store(9, 4))
        .emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "outer");
    asm.emit(Instr::Halt);
    let stats = machine.run(&asm.assemble()?)?;
    let outputs = machine.memory().bank(0).contents()[k + n..].to_vec();
    Ok(WorkloadResult { outputs, stats })
}

// ---------------------------------------------------------------------------
// Matrix multiply: C = A * B (square, row-major).
// ---------------------------------------------------------------------------

/// Reference square matrix multiply (row-major `dim x dim`).
pub fn matmul_reference(a: &[Word], b: &[Word], dim: usize) -> Vec<Word> {
    let mut c = vec![0; dim * dim];
    for i in 0..dim {
        for j in 0..dim {
            let mut acc: Word = 0;
            for k in 0..dim {
                acc = acc.wrapping_add(a[i * dim + k].wrapping_mul(b[k * dim + j]));
            }
            c[i * dim + j] = acc;
        }
    }
    c
}

/// Matrix multiply on a uni-processor: the classic triple loop.
/// Layout: A at 0.., B at d², C at 2d².
pub fn run_matmul_uni(a: &[Word], b: &[Word], dim: usize) -> Result<WorkloadResult, MachineError> {
    let d2 = dim * dim;
    if a.len() != d2 || b.len() != d2 || dim == 0 {
        return Err(MachineError::config("matrices must be dim x dim"));
    }
    let mut machine = UniProcessor::new(3 * d2);
    {
        let bank = machine.memory_mut().bank_mut(0);
        for (i, &v) in a.iter().enumerate() {
            bank.write(i, v);
        }
        for (i, &v) in b.iter().enumerate() {
            bank.write(d2 + i, v);
        }
    }
    let d = dim as Word;
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, d); // i, dim
    asm.label("i").unwrap();
    asm.movi(2, 0); // j
    asm.label("j").unwrap();
    asm.movi(3, 0).movi(4, 0); // k, acc
    asm.label("k").unwrap();
    // a[i*d + k]
    asm.emit(Instr::Mul(5, 0, 1))
        .emit(Instr::Add(5, 5, 3))
        .emit(Instr::Load(6, 5))
        // b[k*d + j]
        .emit(Instr::Mul(7, 3, 1))
        .emit(Instr::Add(7, 7, 2))
        .emit(Instr::AddI(7, 7, d2 as Word))
        .emit(Instr::Load(8, 7))
        .emit(Instr::Mul(9, 6, 8))
        .emit(Instr::Add(4, 4, 9))
        .emit(Instr::AddI(3, 3, 1));
    asm.blt(3, 1, "k");
    // c[i*d + j] = acc
    asm.emit(Instr::Mul(10, 0, 1))
        .emit(Instr::Add(10, 10, 2))
        .emit(Instr::AddI(10, 10, 2 * d2 as Word))
        .emit(Instr::Store(10, 4))
        .emit(Instr::AddI(2, 2, 1));
    asm.blt(2, 1, "j");
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "i");
    asm.emit(Instr::Halt);
    let stats = machine.run(&asm.assemble()?)?;
    let outputs = machine.memory().bank(0).contents()[2 * d2..3 * d2].to_vec();
    Ok(WorkloadResult { outputs, stats })
}

/// Matrix multiply on an array machine: lane `i` computes row `i` of C.
/// Every lane reads all of B, so the DP–DM relation must be a crossbar
/// (IAP-III / IAP-IV); private-bank arrays refuse.
pub fn run_matmul_array(
    subtype: ArraySubtype,
    a: &[Word],
    b: &[Word],
    dim: usize,
) -> Result<WorkloadResult, MachineError> {
    let d2 = dim * dim;
    if a.len() != d2 || b.len() != d2 || dim == 0 {
        return Err(MachineError::config("matrices must be dim x dim"));
    }
    if subtype.data_topology() == crate::mem::DataTopology::PrivateBanks {
        return Err(MachineError::unsupported(
            format!("{} array machine", subtype.class_name()),
            "every lane must read the whole of B, which lives across all \
             banks; the DP-DM relation must be a crossbar (IAP-III/IAP-IV)",
        ));
    }
    // Global layout as in the uni-processor case, spread over `dim` banks.
    let bank_words = (3 * d2).div_ceil(dim).max(2);
    let mut machine = ArrayMachine::new(subtype, dim, bank_words);
    for (i, &v) in a.iter().enumerate() {
        machine.memory_mut().write(0, i as Word, v)?;
    }
    for (i, &v) in b.iter().enumerate() {
        machine.memory_mut().write(0, (d2 + i) as Word, v)?;
    }
    let d = dim as Word;
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0)) // i = lane
        .movi(1, d)
        .movi(2, 0); // j
    asm.label("j").unwrap();
    asm.movi(3, 0).movi(4, 0); // k, acc
    asm.label("k").unwrap();
    asm.emit(Instr::Mul(5, 0, 1))
        .emit(Instr::Add(5, 5, 3))
        .emit(Instr::Load(6, 5)) // a[i*d + k]
        .emit(Instr::Mul(7, 3, 1))
        .emit(Instr::Add(7, 7, 2))
        .emit(Instr::AddI(7, 7, d2 as Word))
        .emit(Instr::Load(8, 7)) // b[k*d + j]
        .emit(Instr::Mul(9, 6, 8))
        .emit(Instr::Add(4, 4, 9))
        .emit(Instr::AddI(3, 3, 1));
    asm.blt(3, 1, "k");
    asm.emit(Instr::Mul(10, 0, 1))
        .emit(Instr::Add(10, 10, 2))
        .emit(Instr::AddI(10, 10, 2 * d2 as Word))
        .emit(Instr::Store(10, 4))
        .emit(Instr::AddI(2, 2, 1));
    asm.blt(2, 1, "j");
    asm.emit(Instr::Halt);
    let stats = machine.run(&asm.assemble()?)?;
    let mut outputs = Vec::with_capacity(d2);
    for idx in 0..d2 {
        outputs.push(machine.memory_mut().read(0, (2 * d2 + idx) as Word)?);
    }
    Ok(WorkloadResult { outputs, stats })
}

// ---------------------------------------------------------------------------
// Staggered-halt workloads: a few long-running cores among many short ones.
//
// These are the scheduler stress shapes: the dense per-cycle loop keeps
// visiting every halted core until the last one finishes, while the
// event-driven scheduler's active set shrinks as cores halt.  Both produce
// identical outputs and counters; only wall time differs.
// ---------------------------------------------------------------------------

/// A count-to-`iters` loop that stores the final count at address 0.
fn count_loop_program(iters: Word) -> Result<Program, MachineError> {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.movi(2, 0).emit(Instr::Store(2, 0)).emit(Instr::Halt);
    asm.assemble()
}

/// Staggered MIMD on an IMP-I multi-processor: every 32nd core counts to
/// `long_iters`, the rest count to 8 and halt early.  Outputs are the
/// per-core final counts.
pub fn run_mimd_stagger_multi_traced<T: Tracer>(
    cores: usize,
    long_iters: Word,
    dense: bool,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    if cores < 2 {
        return Err(MachineError::config("need at least two cores"));
    }
    let mut machine =
        MultiMachine::new(MultiSubtype::from_index(1)?, cores, 4).with_dense_reference(dense);
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|c| count_loop_program(if c.is_multiple_of(32) { long_iters } else { 8 }))
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores)
        .map(|c| machine.memory().bank(c).contents()[0])
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

/// Staggered compute on an unfused spatial machine (every core leads its
/// own group): every 16th core counts to `long_iters`, the rest to 8.
pub fn run_stagger_spatial_traced<T: Tracer>(
    cores: usize,
    long_iters: Word,
    dense: bool,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let mut machine = SpatialMachine::new(
        MultiSubtype::from_index(1)?,
        FabricTopology::Crossbar,
        cores,
        4,
    )?
    .with_dense_reference(dense);
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|c| count_loop_program(if c.is_multiple_of(16) { long_iters } else { 8 }))
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores).map(|c| machine.core_reg(c, 0)).collect();
    Ok(WorkloadResult { outputs, stats })
}

/// A two-core send/recv pair across a link that is down until
/// `outage_until`: the sender backs off exponentially and the receiver
/// blocks, so almost every cycle of the outage window is dead time.  The
/// event-driven scheduler warps across the backoff gaps; the dense loop
/// walks them cycle by cycle.  The output is the receiver's delivered
/// value (42).
pub fn run_backoff_storm_multi_traced<T: Tracer>(
    outage_until: u64,
    max_retries: u32,
    dense: bool,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let mut machine =
        MultiMachine::new(MultiSubtype::from_index(2)?, 2, 4).with_dense_reference(dense);
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
    let mut receiver = Assembler::new();
    receiver.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
    let programs = vec![sender.assemble()?, receiver.assemble()?];
    let plan = FaultPlan::seeded(0)
        .fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: outage_until,
        })
        .with_max_retries(max_retries);
    let outcome = machine.run_resilient_traced(&programs, plan, tracer)?;
    Ok(WorkloadResult {
        outputs: vec![machine.core_reg(1, 5)],
        stats: outcome.stats,
    })
}

// ---------------------------------------------------------------------------
// Shard-parallel workloads: the same shapes, run on multiple OS threads.
//
// Each runner below is a sharded twin of a single-threaded workload above —
// the determinism contract (identical Stats, errors, and telemetry class
// totals; see DESIGN.md §10) is what `tests/shard_identity.rs` checks by
// running both and comparing.
// ---------------------------------------------------------------------------

/// [`run_mimd_stagger_multi_traced`] with shard-parallel execution (`0` =
/// one shard per available core, honouring `SKILLTAX_THREADS`).
pub fn run_mimd_stagger_multi_sharded<T: Tracer>(
    cores: usize,
    long_iters: Word,
    shards: usize,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    if cores < 2 {
        return Err(MachineError::config("need at least two cores"));
    }
    let mut machine = MultiMachine::new(MultiSubtype::from_index(1)?, cores, 4).with_shards(shards);
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|c| count_loop_program(if c.is_multiple_of(32) { long_iters } else { 8 }))
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores)
        .map(|c| machine.memory().bank(c).contents()[0])
        .collect();
    Ok(WorkloadResult { outputs, stats })
}

/// A backward message ring on an IMP-II machine: every core `i >= 1`
/// sends `100 + i` to core `i - 1`, and every core `i < n - 1` receives
/// from core `i + 1`.  All message edges point backward, so the run
/// shards at any boundary while still exercising cross-shard delivery
/// (`shards = 1` is the single-threaded twin; `0` = per-core auto).
/// Outputs are each core's received value (`0` for the last core, which
/// only sends).
pub fn run_ring_shift_multi_traced<T: Tracer>(
    cores: usize,
    shards: usize,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    if cores < 2 {
        return Err(MachineError::config("need at least two cores"));
    }
    let mut machine = MultiMachine::new(MultiSubtype::from_index(2)?, cores, 4).with_shards(shards);
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|i| {
            let mut asm = Assembler::new();
            if i + 1 == cores {
                asm.movi(0, 100 + i as Word).emit(Instr::Send(i - 1, 0));
            } else if i == 0 {
                asm.emit(Instr::Recv(5, 1));
            } else {
                asm.movi(0, 100 + i as Word)
                    .emit(Instr::Send(i - 1, 0))
                    .emit(Instr::Recv(5, i + 1));
            }
            asm.emit(Instr::Halt);
            asm.assemble()
        })
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores).map(|c| machine.core_reg(c, 5)).collect();
    Ok(WorkloadResult { outputs, stats })
}

/// [`run_backoff_storm_multi_traced`] with the message direction
/// reversed (core 1 sends to core 0 across a downed `1→0` link) and
/// shard-parallel execution: the backward edge keeps the two cores
/// shardable, so the retry/backoff fault path runs under the barrier
/// protocol.  The output is the receiver's delivered value (42).
pub fn run_backoff_storm_backward_multi_sharded<T: Tracer>(
    outage_until: u64,
    max_retries: u32,
    shards: usize,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let mut machine = MultiMachine::new(MultiSubtype::from_index(2)?, 2, 4).with_shards(shards);
    let mut receiver = Assembler::new();
    receiver.emit(Instr::Recv(5, 1)).emit(Instr::Halt);
    let mut sender = Assembler::new();
    sender.movi(0, 42).emit(Instr::Send(0, 0)).emit(Instr::Halt);
    let programs = vec![receiver.assemble()?, sender.assemble()?];
    let plan = FaultPlan::seeded(0)
        .fail_link(LinkOutage {
            from: 1,
            to: 0,
            from_cycle: 0,
            until_cycle: outage_until,
        })
        .with_max_retries(max_retries);
    let outcome = machine.run_resilient_traced(&programs, plan, tracer)?;
    Ok(WorkloadResult {
        outputs: vec![machine.core_reg(0, 5)],
        stats: outcome.stats,
    })
}

/// [`run_stagger_spatial_traced`] with shard-parallel execution over the
/// unfused groups (`0` = one shard per available core, honouring
/// `SKILLTAX_THREADS`).
pub fn run_stagger_spatial_sharded<T: Tracer>(
    cores: usize,
    long_iters: Word,
    shards: usize,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    let mut machine = SpatialMachine::new(
        MultiSubtype::from_index(1)?,
        FabricTopology::Crossbar,
        cores,
        4,
    )?
    .with_shards(shards);
    let programs: Result<Vec<Program>, MachineError> = (0..cores)
        .map(|c| count_loop_program(if c.is_multiple_of(16) { long_iters } else { 8 }))
        .collect();
    let stats = machine.run_traced(&programs?, tracer)?;
    let outputs = (0..cores).map(|c| machine.core_reg(c, 0)).collect();
    Ok(WorkloadResult { outputs, stats })
}

/// Independent delay chains on the USP fabric: region `r` is a chain of
/// `r + 1` registered buffer cells seeded from the constant `One`, so
/// its output goes (and stays) high after `r + 1` clock edges.  The run
/// finishes when every region's output is high — after `regions` edges.
/// The chains share no wires, so the fabric shards one region (or a
/// contiguous run of regions) per worker; `shards = 1` is the
/// single-threaded twin.  Outputs are the final region outputs as 0/1
/// words.
pub fn run_fabric_counters_traced<T: Tracer>(
    regions: usize,
    shards: usize,
    limit: u64,
    tracer: &mut T,
) -> Result<WorkloadResult, MachineError> {
    if regions < 2 {
        return Err(MachineError::config("need at least two fabric regions"));
    }
    let buffer = LutCell::new(1, vec![false, true])?;
    let mut cells = Vec::new();
    let mut outputs = Vec::with_capacity(regions);
    for r in 0..regions {
        for j in 0..=r {
            cells.push(CellConfig {
                lut: buffer.clone(),
                inputs: vec![if j == 0 {
                    Source::One
                } else {
                    Source::Cell(cells.len() - 1)
                }],
                registered: true,
            });
        }
        outputs.push(Source::Cell(cells.len() - 1));
    }
    let n_cells = cells.len();
    let bitstream = Bitstream { cells, outputs };
    let mut fabric = LutFabric::new(n_cells, 2, 0)
        .configure(&bitstream)?
        .with_shards(shards);
    let (out, stats) = fabric.run_until_traced(&[], limit, |o| o.iter().all(|&b| b), tracer)?;
    Ok(WorkloadResult {
        outputs: out.into_iter().map(Word::from).collect(),
        stats,
    })
}

// ---------------------------------------------------------------------------
// Fleet workloads: N lockstep instances of the same architecture.
//
// Each runner below takes a [`FleetExec`]: `Sequential` runs the N
// instances one by one on the dense reference machines,
// `Fleet(kernels)` routes them through the structure-of-arrays
// executors in [`crate::fleet`] with the chosen batched lane kernels.
// All paths are bit-identical in per-instance `Stats`, telemetry class
// totals, and errors (DESIGN.md §14); `tests/fleet_identity.rs` and the
// `*/fleet` + `*/fleet_simd` bench twins hold them to it.
// ---------------------------------------------------------------------------

/// The swarm spin kernel: count to a per-instance bound read from memory
/// address 0 — a parameter sweep where the parameter rides in a data
/// lane, so all instances share one program and diverge only in data.
fn swarm_spin_program() -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(2, 0).emit(Instr::Load(1, 2));
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().expect("swarm spin kernel is well formed")
}

/// The per-instance spin bound for instance `i` of a swarm around
/// `base_iters` (a deterministic spread, so instances genuinely diverge).
fn swarm_spin_bound(base_iters: Word, i: usize) -> Word {
    base_iters + (i % 17) as Word
}

/// A parameter sweep of `instances` uni-processors, each counting to its
/// own bound around `base_iters`.  Returns the sequentially accumulated
/// [`Stats`] over all instances.
pub fn run_spin_swarm_uni(
    instances: usize,
    base_iters: Word,
    exec: FleetExec,
) -> Result<Stats, MachineError> {
    run_spin_swarm_uni_traced(instances, base_iters, exec, &mut NullTracer)
}

/// [`run_spin_swarm_uni`] with observation hooks — the counter-capture
/// entry point the continuous-performance collector records through.
pub fn run_spin_swarm_uni_traced<T: Tracer>(
    instances: usize,
    base_iters: Word,
    exec: FleetExec,
    tracer: &mut T,
) -> Result<Stats, MachineError> {
    if instances == 0 {
        return Err(MachineError::config("a swarm needs at least one instance"));
    }
    let program = swarm_spin_program();
    let mut total = Stats::default();
    match exec {
        FleetExec::Fleet(kernels) => {
            let mut swarm = crate::fleet::UniFleet::new(instances, 2).with_kernels(kernels);
            for i in 0..instances {
                swarm.write_mem(i, 0, swarm_spin_bound(base_iters, i));
            }
            for result in swarm.run_traced(&program, tracer) {
                total = total.accumulate_sequential(result?);
            }
        }
        FleetExec::Sequential => {
            for i in 0..instances {
                let mut machine = UniProcessor::new(2);
                machine
                    .memory_mut()
                    .bank_mut(0)
                    .load(&[swarm_spin_bound(base_iters, i)]);
                total = total.accumulate_sequential(machine.run_traced(&program, tracer)?);
            }
        }
    }
    Ok(total)
}

/// Per-instance input element for instance `i`, lane `lane` of the
/// vector-add swarm (deterministic, distinct across the fleet).
fn swarm_vector_inputs(i: usize, lane: usize) -> (Word, Word) {
    ((i * 31 + lane * 7) as Word, (i * 13 + lane * 3 + 1) as Word)
}

/// A swarm of `instances` array machines (each `lanes`×4-word banks)
/// running the vector-add kernel over per-instance data.  Outputs are
/// verified against the reference before returning the accumulated
/// [`Stats`].
pub fn run_vector_add_swarm_array(
    subtype: ArraySubtype,
    instances: usize,
    lanes: usize,
    exec: FleetExec,
) -> Result<Stats, MachineError> {
    run_vector_add_swarm_array_traced(subtype, instances, lanes, exec, &mut NullTracer)
}

/// [`run_vector_add_swarm_array`] with observation hooks — the
/// counter-capture entry point the continuous-performance collector
/// records through.
pub fn run_vector_add_swarm_array_traced<T: Tracer>(
    subtype: ArraySubtype,
    instances: usize,
    lanes: usize,
    exec: FleetExec,
    tracer: &mut T,
) -> Result<Stats, MachineError> {
    if instances == 0 || lanes == 0 {
        return Err(MachineError::config("a swarm needs instances and lanes"));
    }
    // The same program selection as `run_vector_add_array_traced`:
    // private banks take lane-local addressing, shared crossbars compile
    // lane-relative global addressing (bank size 4).
    let program = match subtype.data_topology() {
        crate::mem::DataTopology::PrivateBanks => vector_add_kernel(),
        crate::mem::DataTopology::SharedCrossbar => {
            let mut asm = Assembler::new();
            asm.emit(Instr::LaneId(7))
                .movi(6, 4)
                .emit(Instr::Mul(7, 7, 6))
                .emit(Instr::Mov(0, 7))
                .emit(Instr::AddI(1, 7, 1))
                .emit(Instr::AddI(2, 7, 2))
                .emit(Instr::Load(3, 0))
                .emit(Instr::Load(4, 1))
                .emit(Instr::Add(5, 3, 4))
                .emit(Instr::Store(2, 5))
                .emit(Instr::Halt);
            asm.assemble()?
        }
    };
    let check = |i: usize, lane: usize, got: Word| -> Result<(), MachineError> {
        let (x, y) = swarm_vector_inputs(i, lane);
        if got != x.wrapping_add(y) {
            return Err(MachineError::config(format!(
                "swarm instance {i} lane {lane}: got {got}, want {}",
                x.wrapping_add(y)
            )));
        }
        Ok(())
    };
    let mut total = Stats::default();
    match exec {
        FleetExec::Fleet(kernels) => {
            let mut swarm =
                crate::fleet::ArrayFleet::new(subtype, lanes, 4, instances).with_kernels(kernels);
            for i in 0..instances {
                for lane in 0..lanes {
                    let (x, y) = swarm_vector_inputs(i, lane);
                    swarm.load_bank(i, lane, &[x, y, 0, 0]);
                }
            }
            for (i, result) in swarm.run_traced(&program, tracer).into_iter().enumerate() {
                total = total.accumulate_sequential(result?);
                for lane in 0..lanes {
                    check(i, lane, swarm.mem_word(i, lane * 4 + 2))?;
                }
            }
        }
        FleetExec::Sequential => {
            for i in 0..instances {
                let mut machine = ArrayMachine::new(subtype, lanes, 4);
                for lane in 0..lanes {
                    let (x, y) = swarm_vector_inputs(i, lane);
                    machine.memory_mut().bank_mut(lane).load(&[x, y, 0, 0]);
                }
                total = total.accumulate_sequential(machine.run_traced(&program, tracer)?);
                for lane in 0..lanes {
                    check(i, lane, machine.memory().bank(lane).contents()[2])?;
                }
            }
        }
    }
    Ok(total)
}

/// A Monte-Carlo transient-fault study: one array-machine instance per
/// seed, each running the lane-store kernel under its own
/// [`FaultPlan`] with the given stall and bit-flip rates.  Per-seed
/// outcomes in seed order; `FleetExec::Fleet` routes the population
/// through [`crate::fleet::run_array_fleet_chunked`] (sub-fleet chunks
/// across the `SKILLTAX_FLEET_THREADS` worker resolution),
/// `Sequential` runs [`ArrayMachine::run_resilient`] per seed —
/// bit-identical results either way.
pub fn run_fault_monte_carlo_array(
    subtype: ArraySubtype,
    lanes: usize,
    seeds: &[u64],
    stall_rate: f64,
    flip_rate: f64,
    exec: FleetExec,
) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
    let mut asm = Assembler::new();
    asm.emit(Instr::LaneId(0))
        .movi(1, 100)
        .emit(Instr::Add(1, 1, 0))
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    let program = asm.assemble().expect("monte-carlo kernel is well formed");
    let bank_words = lanes.max(4);
    let plan_for = |seed: u64| {
        FaultPlan::seeded(seed)
            .stall_dps(stall_rate)
            .flip_memory_bits(flip_rate)
    };
    match exec {
        FleetExec::Fleet(kernels) => {
            if seeds.is_empty() {
                return Vec::new();
            }
            let chunks = crate::fleet::run_array_fleet_chunked(
                subtype,
                lanes,
                bank_words,
                seeds.len(),
                100_000,
                &crate::cancel::CancelToken::new(),
                &program,
                kernels,
                |_, _, _| {},
                |g| plan_for(seeds[g]),
                0,
            );
            crate::fleet::array_chunked_outcomes(chunks)
        }
        FleetExec::Sequential => seeds
            .iter()
            .map(|&s| {
                let mut machine =
                    ArrayMachine::new(subtype, lanes, bank_words).with_cycle_limit(100_000);
                machine.run_resilient(&program, plan_for(s))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_add_agrees_across_machine_families() {
        let a: Vec<Word> = (0..8).collect();
        let b: Vec<Word> = (100..108).collect();
        let reference = vector_add_reference(&a, &b);
        assert_eq!(run_vector_add_uni(&a, &b).unwrap().outputs, reference);
        for subtype in ArraySubtype::ALL {
            assert_eq!(
                run_vector_add_array(subtype, &a, &b).unwrap().outputs,
                reference,
                "{subtype:?}"
            );
        }
        for idx in [1u8, 4, 16] {
            assert_eq!(
                run_vector_add_multi(MultiSubtype::from_index(idx).unwrap(), &a, &b)
                    .unwrap()
                    .outputs,
                reference,
                "IMP index {idx}"
            );
        }
    }

    #[test]
    fn parallel_machines_use_fewer_cycles_than_the_uniprocessor() {
        let a: Vec<Word> = (0..16).collect();
        let b: Vec<Word> = (0..16).rev().collect();
        let uni = run_vector_add_uni(&a, &b).unwrap();
        let array = run_vector_add_array(ArraySubtype::I, &a, &b).unwrap();
        assert!(
            array.stats.cycles * 4 < uni.stats.cycles,
            "array {} vs uni {}",
            array.stats.cycles,
            uni.stats.cycles
        );
    }

    #[test]
    fn mimd_mix_runs_on_multi_but_not_on_array() {
        let slices: Vec<Vec<Word>> = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 3, 4],
            vec![9, 1, 5, 3],
            vec![2, 2, 2, 2],
        ];
        let reference = mimd_mix_reference(&slices);
        assert_eq!(reference, vec![10, 24, 9, 8]); // sum, product, max, sum
        let got = run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &slices).unwrap();
        assert_eq!(got.outputs, reference);
        // The array machine refuses with the paper's argument.
        let err = run_mimd_mix_array(ArraySubtype::IV, &slices).unwrap_err();
        match err {
            MachineError::WorkloadUnsupported { reason, .. } => {
                assert!(reason.contains("single instruction processor"), "{reason}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reductions_agree_between_dup_dmp_and_iup() {
        let data: Vec<Word> = (1..=13).collect();
        let reference = reduce_sum_reference(&data);
        assert_eq!(reference, 91);
        assert_eq!(run_reduce_uni(&data).unwrap().outputs, vec![91]);
        assert_eq!(
            run_reduce_dataflow(DataflowSubtype::Uni, 1, &data)
                .unwrap()
                .outputs,
            vec![91]
        );
        assert_eq!(
            run_reduce_dataflow(DataflowSubtype::IV, 4, &data)
                .unwrap()
                .outputs,
            vec![91]
        );
    }

    #[test]
    fn fir_agrees_between_uni_and_dataflow() {
        let taps: Vec<Word> = vec![1, -2, 3];
        let signal: Vec<Word> = vec![4, 1, 0, -1, 2, 5];
        let reference = fir_reference(&taps, &signal);
        assert_eq!(run_fir_uni(&taps, &signal).unwrap().outputs, reference);
        assert_eq!(
            run_fir_dataflow(DataflowSubtype::IV, 4, &taps, &signal)
                .unwrap()
                .outputs,
            reference
        );
    }

    #[test]
    fn matmul_agrees_between_uni_and_shared_memory_arrays() {
        let dim = 4usize;
        let a: Vec<Word> = (0..(dim * dim) as Word).collect();
        let b: Vec<Word> = (0..(dim * dim) as Word).map(|v| 2 - v % 5).collect();
        let reference = matmul_reference(&a, &b, dim);
        let uni = run_matmul_uni(&a, &b, dim).unwrap();
        assert_eq!(uni.outputs, reference);
        for subtype in [ArraySubtype::III, ArraySubtype::IV] {
            let run = run_matmul_array(subtype, &a, &b, dim).unwrap();
            assert_eq!(run.outputs, reference, "{subtype:?}");
            assert!(
                run.stats.cycles * 2 < uni.stats.cycles,
                "row-parallel {} vs scalar {}",
                run.stats.cycles,
                uni.stats.cycles
            );
        }
        for subtype in [ArraySubtype::I, ArraySubtype::II] {
            assert!(matches!(
                run_matmul_array(subtype, &a, &b, dim),
                Err(MachineError::WorkloadUnsupported { .. })
            ));
        }
    }

    #[test]
    fn matmul_shape_validation() {
        assert!(run_matmul_uni(&[1, 2, 3], &[1, 2, 3], 2).is_err());
        assert!(run_matmul_uni(&[], &[], 0).is_err());
        assert!(run_matmul_array(ArraySubtype::IV, &[1], &[1, 2], 1).is_err());
    }

    #[test]
    fn fir_on_the_array_needs_the_memory_crossbar() {
        let taps: Vec<Word> = vec![2, -1, 3];
        let signal: Vec<Word> = vec![1, 4, -2, 0, 5, 3, -1, 2];
        let reference = fir_reference(&taps, &signal);
        // IAP-III and IAP-IV (shared crossbar): run and agree.
        for subtype in [ArraySubtype::III, ArraySubtype::IV] {
            let run = run_fir_array(subtype, &taps, &signal).unwrap();
            assert_eq!(run.outputs, reference, "{subtype:?}");
        }
        // IAP-I and IAP-II (private banks): typed refusal.
        for subtype in [ArraySubtype::I, ArraySubtype::II] {
            assert!(matches!(
                run_fir_array(subtype, &taps, &signal),
                Err(MachineError::WorkloadUnsupported { .. })
            ));
        }
    }

    #[test]
    fn stagger_runners_count_to_their_targets() {
        for dense in [false, true] {
            let multi = run_mimd_stagger_multi_traced(8, 40, dense, &mut NullTracer).unwrap();
            let expected: Vec<Word> = (0..8).map(|c| if c == 0 { 40 } else { 8 }).collect();
            assert_eq!(multi.outputs, expected, "dense={dense}");
            let spatial = run_stagger_spatial_traced(4, 25, dense, &mut NullTracer).unwrap();
            assert_eq!(spatial.outputs, vec![25, 8, 8, 8], "dense={dense}");
        }
    }

    #[test]
    fn backoff_storm_delivers_after_the_outage() {
        for dense in [false, true] {
            let run = run_backoff_storm_multi_traced(500, 40, dense, &mut NullTracer).unwrap();
            assert_eq!(run.outputs, vec![42], "dense={dense}");
            assert!(run.stats.cycles > 500, "dense={dense}: {:?}", run.stats);
        }
    }

    #[test]
    fn spin_swarm_fleet_matches_sequential() {
        use crate::fleet::LaneKernels;
        let sequential = run_spin_swarm_uni(24, 50, FleetExec::Sequential).unwrap();
        for kernels in [LaneKernels::Scalar, LaneKernels::Wide] {
            let fleet = run_spin_swarm_uni(24, 50, FleetExec::Fleet(kernels)).unwrap();
            assert_eq!(sequential, fleet, "{kernels:?}");
        }
    }

    #[test]
    fn vector_add_swarm_fleet_matches_sequential() {
        use crate::fleet::LaneKernels;
        for subtype in ArraySubtype::ALL {
            let sequential =
                run_vector_add_swarm_array(subtype, 12, 4, FleetExec::Sequential).unwrap();
            for kernels in [LaneKernels::Scalar, LaneKernels::Wide] {
                let fleet =
                    run_vector_add_swarm_array(subtype, 12, 4, FleetExec::Fleet(kernels)).unwrap();
                assert_eq!(sequential, fleet, "{subtype:?} {kernels:?}");
            }
        }
    }

    #[test]
    fn monte_carlo_fleet_matches_sequential() {
        let seeds: Vec<u64> = (0..16).map(|s| s * 7 + 1).collect();
        let sequential = run_fault_monte_carlo_array(
            ArraySubtype::III,
            4,
            &seeds,
            0.2,
            0.05,
            FleetExec::Sequential,
        );
        let fleet = run_fault_monte_carlo_array(
            ArraySubtype::III,
            4,
            &seeds,
            0.2,
            0.05,
            FleetExec::fleet(),
        );
        assert_eq!(sequential, fleet);
    }

    #[test]
    fn degenerate_shapes_are_config_errors() {
        assert!(run_vector_add_uni(&[1], &[1, 2]).is_err());
        assert!(run_vector_add_multi(MultiSubtype::from_index(1).unwrap(), &[1], &[1]).is_err());
        assert!(run_fir_uni(&[1, 2, 3], &[1]).is_err());
        assert!(
            run_mimd_mix_multi(MultiSubtype::from_index(1).unwrap(), &[vec![1], vec![1, 2]])
                .is_err()
        );
    }
}

//! The spatial machine (ISP-I..XVI): a multi-processor whose IPs connect
//! to other IPs, so several small processors can *fuse* into one wider
//! processor.
//!
//! Fusion is the executable meaning of the paper's IP–IP extension: "a
//! bigger IP can be divided among two smaller IPs" / "systems ... have the
//! ability to create complex computing machines by connecting IPs or DPs
//! together".  A fused group is driven by its leader's program in lockstep
//! across all member DPs — a dynamically-created SIMD sub-machine living
//! inside a MIMD fabric — while unfused cores keep running independently.
//!
//! Which fusions are possible is governed by the IP–IP fabric topology:
//! a full crossbar (MATRIX) fuses anything; a 3-hop window (DRRA) only
//! fuses neighbours.

use std::sync::Mutex;

use skilltax_model::{ArchSpec, Count, Link, Relation};

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::dp::{DataProcessor, LocalOutcome};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::interconnect::FabricTopology;
use crate::isa::{Instr, Word};
use crate::mem::{BankedMemory, DataTopology};
use crate::multi::MultiSubtype;
use crate::profile::Phase;
use crate::program::Program;
use crate::shard::{plan_cuts, resolve_shards, SenseBarrier, StageTracer, StagedOp};
use crate::telemetry::{EventKind, NullTracer, Tracer};
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// A spatial machine: MIMD cores plus an IP–IP fabric enabling fusion.
#[derive(Debug)]
pub struct SpatialMachine {
    subtype: MultiSubtype,
    ip_ip: FabricTopology,
    n: usize,
    dps: Vec<DataProcessor>,
    mem: BankedMemory,
    /// `group[i]` is the leader of core `i`'s fused group (itself if solo).
    group: Vec<usize>,
    cycle_limit: u64,
    dense_reference: bool,
    shards: usize,
    cancel: CancelToken,
}

impl SpatialMachine {
    /// A spatial machine of `cores` cores.  `subtype` carries the same
    /// 4-bit crossbar code as IMP (the ISP sub-types mirror them); `ip_ip`
    /// is the IP–IP fabric (crossbar for MATRIX-style, window for
    /// DRRA-style).
    pub fn new(
        subtype: MultiSubtype,
        ip_ip: FabricTopology,
        cores: usize,
        bank_words: usize,
    ) -> Result<SpatialMachine, MachineError> {
        if cores < 2 {
            return Err(MachineError::config(
                "a spatial machine needs at least two cores",
            ));
        }
        if ip_ip == FabricTopology::None {
            return Err(MachineError::config(
                "a spatial machine without an IP-IP switch is just a multi-processor; \
                 use MultiMachine",
            ));
        }
        let topology = if subtype.dp_dm_crossbar() {
            DataTopology::SharedCrossbar
        } else {
            DataTopology::PrivateBanks
        };
        Ok(SpatialMachine {
            subtype,
            ip_ip,
            n: cores,
            dps: (0..cores).map(DataProcessor::new).collect(),
            mem: BankedMemory::new(cores, bank_words, topology),
            group: (0..cores).collect(),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            dense_reference: false,
            shards: 1,
            cancel: CancelToken::new(),
        })
    }

    /// Request shard-parallel execution over (up to) `shards` worker
    /// threads (`0` = auto via the `SKILLTAX_THREADS` override, `1` =
    /// single-threaded, the default).  Fused groups are partitioned
    /// between threads; the run stays bit-identical to the
    /// single-threaded schedulers and silently falls back to them when
    /// it cannot shard (shared data memory, or group lane sets that
    /// interleave across every boundary; see DESIGN.md §10).
    pub fn with_shards(mut self, shards: usize) -> SpatialMachine {
        self.shards = shards;
        self
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> SpatialMachine {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token for subsequent runs (deadline cycles
    /// stop deterministically across all schedulers; the flag stops
    /// promptly — per cycle single-threaded, per slice when sharded).
    pub fn with_cancel(mut self, cancel: CancelToken) -> SpatialMachine {
        self.cancel = cancel;
        self
    }

    /// Force the dense reference loop instead of the active-set
    /// scheduler (see DESIGN.md §9); the two are counter-identical.
    pub fn with_dense_reference(mut self, dense: bool) -> SpatialMachine {
        self.dense_reference = dense;
        self
    }

    /// The ISP class name corresponding to this machine's sub-type code.
    pub fn class_name(&self) -> String {
        format!(
            "ISP-{}",
            skilltax_taxonomy::roman::to_roman(u16::from(self.subtype.code()) + 1)
        )
    }

    /// The banked memory.
    pub fn memory_mut(&mut self) -> &mut BankedMemory {
        &mut self.mem
    }

    /// The banked memory.
    pub fn memory(&self) -> &BankedMemory {
        &self.mem
    }

    /// A core's register, after a run.
    pub fn core_reg(&self, core: usize, r: u8) -> Word {
        self.dps[core].reg(r)
    }

    /// Fuse core `follower` into `leader`'s group.  Both must be reachable
    /// over the IP–IP fabric; the follower's IP goes quiet and its DP joins
    /// the leader's lockstep broadcast — two IPs have become one bigger IP.
    pub fn fuse(&mut self, leader: usize, follower: usize) -> Result<(), MachineError> {
        if leader >= self.n || follower >= self.n || leader == follower {
            return Err(MachineError::config(format!(
                "cannot fuse {follower} into {leader}"
            )));
        }
        let root = self.group[leader];
        self.ip_ip.route(root, follower, self.n)?;
        self.group[follower] = root;
        Ok(())
    }

    /// Undo all fusions.
    pub fn defuse_all(&mut self) {
        for i in 0..self.n {
            self.group[i] = i;
        }
    }

    /// Members of each active group, keyed by leader.
    fn groups(&self) -> Vec<(usize, Vec<usize>)> {
        let mut out: Vec<(usize, Vec<usize>)> = Vec::new();
        for leader in 0..self.n {
            if self.group[leader] == leader {
                let members: Vec<usize> =
                    (0..self.n).filter(|&i| self.group[i] == leader).collect();
                out.push((leader, members));
            }
        }
        out
    }

    /// The structural [`ArchSpec`] of this machine.
    pub fn spec(&self) -> ArchSpec {
        let n = (self.n as u32).max(2);
        let pick = |x: bool| {
            if x {
                Link::crossbar_between(n, n)
            } else {
                Link::direct_between(n, n)
            }
        };
        let dp_dp = if self.subtype.dp_dp_crossbar() {
            Link::crossbar_between(n, n)
        } else {
            Link::None
        };
        let ip_ip = match self.ip_ip {
            FabricTopology::Window { hops } => Link::crossbar_between(n, (2 * hops as u32).min(n)),
            _ => Link::crossbar_between(n, n),
        };
        ArchSpec::builder(format!("spatial-{}x{}", self.class_name(), n))
            .ips(Count::fixed(n))
            .dps(Count::fixed(n))
            .link(Relation::IpIp, ip_ip)
            .link(Relation::IpDp, pick(self.subtype.ip_dp_crossbar()))
            .link(Relation::IpIm, pick(self.subtype.ip_im_crossbar()))
            .link(Relation::DpDm, pick(self.subtype.dp_dm_crossbar()))
            .link(Relation::DpDp, dp_dp)
            .build_unchecked()
    }

    /// Run one program per *group leader* (followers' programs are ignored
    /// — their IPs are fused away).  Each leader broadcasts its instruction
    /// stream across its group's DPs in lockstep; control flow follows the
    /// leader's DP.
    pub fn run(&mut self, programs: &[Program]) -> Result<Stats, MachineError> {
        self.run_traced(programs, &mut NullTracer)
    }

    /// [`SpatialMachine::run`] with observation hooks; with a
    /// [`NullTracer`] this monomorphises back to the plain group loop.
    pub fn run_traced<T: Tracer>(
        &mut self,
        programs: &[Program],
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        if programs.len() != self.n {
            return Err(MachineError::config(format!(
                "{} programs for {} cores",
                programs.len(),
                self.n
            )));
        }
        let groups = self.groups();
        if !self.dense_reference {
            if let Some(cuts) = self.shard_partition(&groups) {
                return self.run_sharded(programs, &groups, &cuts, tracer);
            }
        }
        let mut pcs = vec![0usize; self.n];
        let mut halted = vec![false; self.n]; // per leader
        let mut stats = Stats::default();
        let base: Vec<(u64, u64, u64)> = self.dps.iter().map(|d| d.counters()).collect();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        if self.dense_reference {
            // Dense reference loop: every group is visited every cycle.
            loop {
                if groups.iter().all(|(leader, _)| halted[*leader]) {
                    break;
                }
                if self.cancel.flag_raised() {
                    return Err(flag_trip(stats.cycles, stats, tracer));
                }
                if stats.cycles >= budget.limit() {
                    return Err(budget.trip(stats.cycles, stats, tracer));
                }
                stats.cycles += 1;
                for (leader, members) in &groups {
                    if halted[*leader] {
                        continue;
                    }
                    self.step_group(
                        programs,
                        *leader,
                        members,
                        &mut pcs,
                        &mut halted,
                        &mut stats,
                        tracer,
                    )?;
                }
            }
        } else {
            // Active-set scheduler: halted groups drop out of the scan
            // entirely (see DESIGN.md §9).  `groups()` yields groups in
            // ascending leader order and the ordered remove preserves
            // it, so the within-cycle step order matches the dense loop
            // exactly.
            let mut active: Vec<usize> = (0..groups.len()).collect();
            loop {
                if active.is_empty() {
                    break;
                }
                if self.cancel.flag_raised() {
                    return Err(flag_trip(stats.cycles, stats, tracer));
                }
                if stats.cycles >= budget.limit() {
                    return Err(budget.trip(stats.cycles, stats, tracer));
                }
                stats.cycles += 1;
                let mut idx = 0;
                while idx < active.len() {
                    let (leader, members) = &groups[active[idx]];
                    self.step_group(
                        programs,
                        *leader,
                        members,
                        &mut pcs,
                        &mut halted,
                        &mut stats,
                        tracer,
                    )?;
                    if halted[*leader] {
                        active.remove(idx);
                    } else {
                        idx += 1;
                    }
                }
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        for (i, dp) in self.dps.iter().enumerate() {
            let (alu, mr, mw) = dp.counters();
            let (b_alu, b_mr, b_mw) = base[i];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        Ok(stats)
    }

    /// Decide whether this run can shard, and into which contiguous runs
    /// of `groups` (ascending leader order).  Returns the shard start
    /// indices into `groups`, or `None` to fall back.
    ///
    /// A boundary before group `j` is legal only when every lane of the
    /// earlier groups precedes every lane of the later ones — then the
    /// private banks split into contiguous per-shard blocks and each
    /// worker owns its lanes outright.  Fusion can interleave lanes
    /// arbitrarily, so this is a property of the current grouping, not
    /// of the machine.
    fn shard_partition(&self, groups: &[(usize, Vec<usize>)]) -> Option<Vec<usize>> {
        if self.shards == 1 {
            return None;
        }
        let shards = resolve_shards(self.shards);
        if shards < 2 {
            return None;
        }
        if self.mem.topology() != DataTopology::PrivateBanks {
            return None;
        }
        let g = groups.len();
        if g < 2 {
            return None;
        }
        let mut prefix_max = vec![0usize; g];
        let mut run_max = 0usize;
        for (j, (_, members)) in groups.iter().enumerate() {
            run_max = run_max.max(*members.iter().max().expect("groups are non-empty"));
            prefix_max[j] = run_max;
        }
        let mut suffix_min = vec![usize::MAX; g];
        let mut run_min = usize::MAX;
        for j in (0..g).rev() {
            run_min = run_min.min(*groups[j].1.iter().min().expect("groups are non-empty"));
            suffix_min[j] = run_min;
        }
        let mut allowed = vec![false; g];
        for j in 1..g {
            allowed[j] = prefix_max[j - 1] < suffix_min[j];
        }
        plan_cuts(g, shards, &allowed)
    }

    /// The shard-parallel group runner: a bulk-synchronous mirror of the
    /// dense loop in [`SpatialMachine::run_traced`], one cycle per
    /// slice.  Each worker owns a contiguous run of groups and the
    /// private banks their lanes cover; groups never communicate, so the
    /// only coordination is the slice barrier and the commit of staged
    /// tracer calls in ascending shard order — which *is* dense group
    /// order, making `Stats`, telemetry class totals and errors
    /// bit-identical to the single-threaded schedulers (DESIGN.md §10).
    fn run_sharded<T: Tracer>(
        &mut self,
        programs: &[Program],
        groups: &[(usize, Vec<usize>)],
        cuts: &[usize],
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        let n = self.n;
        let g = groups.len();
        let k = cuts.len();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let limit = budget.limit();
        let cancel = self.cancel.clone();
        let live = tracer.enabled();
        let class_name = self.class_name();
        let base: Vec<(u64, u64, u64)> = self.dps.iter().map(|d| d.counters()).collect();
        // Shard s owns lanes `bounds[s]..bounds[s + 1]` — the cut
        // legality above guarantees these blocks are contiguous and
        // cover every bank exactly once.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&c| {
                groups[c..]
                    .iter()
                    .flat_map(|(_, m)| m.iter().copied())
                    .min()
                    .expect("groups are non-empty")
            })
            .collect();
        bounds.push(n);
        debug_assert_eq!(bounds[0], 0);
        let mut pcs = vec![0usize; n];
        let mut halted = vec![false; n];
        type Seat<'a> = (
            usize,
            &'a [(usize, Vec<usize>)],
            &'a mut [DataProcessor],
            &'a mut [usize],
            &'a mut [bool],
            BankedMemory,
        );
        let mut seats: Vec<Seat<'_>> = Vec::with_capacity(k);
        {
            let mut dps_rest: &mut [DataProcessor] = &mut self.dps;
            let mut pcs_rest: &mut [usize] = &mut pcs;
            let mut halted_rest: &mut [bool] = &mut halted;
            for s in 0..k {
                let lane_start = bounds[s];
                let lane_end = bounds[s + 1];
                let gend = cuts.get(s + 1).copied().unwrap_or(g);
                let (dps_here, dps_tail) = dps_rest.split_at_mut(lane_end - lane_start);
                dps_rest = dps_tail;
                let (pcs_here, pcs_tail) = pcs_rest.split_at_mut(lane_end - lane_start);
                pcs_rest = pcs_tail;
                let (halted_here, halted_tail) = halted_rest.split_at_mut(lane_end - lane_start);
                halted_rest = halted_tail;
                let mem = self.mem.split_lanes(lane_start..lane_end);
                seats.push((
                    lane_start,
                    &groups[cuts[s]..gend],
                    dps_here,
                    pcs_here,
                    halted_here,
                    mem,
                ));
            }
        }
        let barrier = SenseBarrier::new(k + 1);
        let decision = Mutex::new(GroupDecision::Stop);
        let slots: Vec<Mutex<GroupReport>> =
            (0..k).map(|_| Mutex::new(GroupReport::default())).collect();

        let (run_result, mut stats, children) = std::thread::scope(|scope| {
            let handles: Vec<_> = seats
                .into_iter()
                .enumerate()
                .map(|(s, (lane_base, groups_here, dps, pcs, halted, mut mem))| {
                    let barrier = &barrier;
                    let decision = &decision;
                    let slot = &slots[s];
                    let class_name = class_name.clone();
                    scope.spawn(move || {
                        let mut sense = false;
                        let mut stage = StageTracer {
                            live,
                            ops: Vec::new(),
                        };
                        loop {
                            barrier.wait(&mut sense);
                            let GroupDecision::Run { cycle } =
                                *decision.lock().expect("decision lock")
                            else {
                                break;
                            };
                            let mut report = slot.lock().expect("report lock");
                            stage.ops = std::mem::take(&mut report.ops);
                            let mut instructions = 0u64;
                            let mut error: Option<MachineError> = None;
                            'scan: for (leader, members) in groups_here {
                                let lj = leader - lane_base;
                                if halted[lj] {
                                    continue;
                                }
                                let Some(instr) = programs[*leader].fetch(pcs[lj]) else {
                                    halted[lj] = true;
                                    continue;
                                };
                                match instr {
                                    Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                                        error = Some(MachineError::unsupported(
                                            class_name.clone(),
                                            "fused-group broadcast does not combine with \
                                             explicit message instructions in this model",
                                        ));
                                        break 'scan;
                                    }
                                    _ if instr.is_control() => {
                                        instructions += 1;
                                        stage.record(cycle, EventKind::Issue);
                                        match dps[lj]
                                            .execute_traced(instr, &mut mem, cycle, &mut stage)
                                        {
                                            Ok(LocalOutcome::Next) => pcs[lj] += 1,
                                            Ok(LocalOutcome::Branch(t)) => pcs[lj] = t,
                                            Ok(LocalOutcome::Halt) => halted[lj] = true,
                                            Err(e) => {
                                                error = Some(e);
                                                break 'scan;
                                            }
                                        }
                                    }
                                    _ => {
                                        for &m in members {
                                            if let Err(e) = dps[m - lane_base]
                                                .execute_traced(instr, &mut mem, cycle, &mut stage)
                                            {
                                                error = Some(e);
                                                break 'scan;
                                            }
                                        }
                                        instructions += members.len() as u64;
                                        stage.record_many(
                                            cycle,
                                            EventKind::Issue,
                                            members.len() as u64,
                                        );
                                        pcs[lj] += 1;
                                    }
                                }
                            }
                            report.instructions = instructions;
                            report.error = error;
                            report.all_halted = groups_here
                                .iter()
                                .all(|(leader, _)| halted[leader - lane_base]);
                            report.ops = std::mem::take(&mut stage.ops);
                            drop(report);
                            barrier.wait(&mut sense);
                        }
                        mem
                    })
                })
                .collect();

            let mut sense = false;
            let mut stats = Stats::default();
            let mut agg_all_halted = false;
            // Coordinator-side spans: one coherent timeline per run.
            tracer.span_enter(0, Phase::Run);
            tracer.span_enter(0, Phase::Decode);
            tracer.span_exit(0);
            tracer.span_enter(0, Phase::Slice);
            let run_result: Result<(), MachineError> = loop {
                if agg_all_halted {
                    break Ok(());
                }
                // The single-threaded coordinator polls the flag once per
                // slice decision; workers stay deterministic mid-slice.
                if cancel.flag_raised() {
                    break Err(flag_trip(stats.cycles, stats, tracer));
                }
                if stats.cycles >= limit {
                    break Err(budget.trip(stats.cycles, stats, tracer));
                }
                let next = stats.cycles + 1;
                *decision.lock().expect("decision lock") = GroupDecision::Run { cycle: next };
                barrier.wait(&mut sense); // release the slice
                barrier.wait(&mut sense); // all reports are in
                tracer.span_mark(next, Phase::Barrier);
                stats.cycles = next;
                agg_all_halted = true;
                let mut error: Option<MachineError> = None;
                for slot in &slots {
                    let mut report = slot.lock().expect("report lock");
                    if error.is_none() {
                        StageTracer::replay(&report.ops, tracer);
                        stats.instructions += report.instructions;
                        error = report.error.take();
                        agg_all_halted &= report.all_halted;
                    }
                    report.ops.clear();
                    report.instructions = 0;
                }
                if let Some(e) = error {
                    break Err(e);
                }
            };
            if run_result.is_ok() {
                tracer.span_exit(stats.cycles);
                tracer.span_exit(stats.cycles);
            }
            *decision.lock().expect("decision lock") = GroupDecision::Stop;
            barrier.wait(&mut sense);
            let children: Vec<BankedMemory> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (run_result, stats, children)
        });
        for child in children {
            self.mem.absorb_lanes(child);
        }
        run_result?;
        for (i, dp) in self.dps.iter().enumerate() {
            let (alu, mr, mw) = dp.counters();
            let (b_alu, b_mr, b_mw) = base[i];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        Ok(stats)
    }

    /// One cycle of one live group: fetch the leader's instruction and
    /// either retire the group, execute control flow on the leader's DP,
    /// or broadcast across every member DP in lockstep.
    #[allow(clippy::too_many_arguments)]
    fn step_group<T: Tracer>(
        &mut self,
        programs: &[Program],
        leader: usize,
        members: &[usize],
        pcs: &mut [usize],
        halted: &mut [bool],
        stats: &mut Stats,
        tracer: &mut T,
    ) -> Result<(), MachineError> {
        let Some(instr) = programs[leader].fetch(pcs[leader]) else {
            halted[leader] = true;
            return Ok(());
        };
        match instr {
            Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                return Err(MachineError::unsupported(
                    self.class_name(),
                    "fused-group broadcast does not combine with explicit \
                     message instructions in this model",
                ));
            }
            _ if instr.is_control() => {
                stats.instructions += 1;
                tracer.record(stats.cycles, EventKind::Issue);
                match self.dps[leader].execute_traced(instr, &mut self.mem, stats.cycles, tracer)? {
                    LocalOutcome::Next => pcs[leader] += 1,
                    LocalOutcome::Branch(t) => pcs[leader] = t,
                    LocalOutcome::Halt => halted[leader] = true,
                }
            }
            _ => {
                for &m in members {
                    self.dps[m].execute_traced(instr, &mut self.mem, stats.cycles, tracer)?;
                }
                stats.instructions += members.len() as u64;
                tracer.record_many(stats.cycles, EventKind::Issue, members.len() as u64);
                pcs[leader] += 1;
            }
        }
        Ok(())
    }
}

/// What the coordinator tells the group-shard workers to do next.
#[derive(Clone, Copy)]
enum GroupDecision {
    /// Advance every shard's groups through dense cycle `cycle`.
    Run {
        /// The 1-based cycle number this slice simulates.
        cycle: u64,
    },
    /// The run is over; workers return their memory shards.
    Stop,
}

/// One shard's result for one cycle slice of the spatial runner.
#[derive(Default)]
struct GroupReport {
    /// Staged tracer calls, replayed in shard order by the coordinator.
    ops: Vec<StagedOp>,
    /// Instructions retired this slice across the shard's groups.
    instructions: u64,
    /// First error hit while scanning this shard's groups in order.
    error: Option<MachineError>,
    /// Every group leader in this shard has halted.
    all_halted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;

    fn lane_tag_program() -> Program {
        // mem[0] = 1000 + lane
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 1000)
            .emit(Instr::Add(1, 1, 0))
            .movi(2, 0)
            .emit(Instr::Store(2, 1))
            .emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    fn machine(code: u8, ip_ip: FabricTopology, cores: usize) -> SpatialMachine {
        SpatialMachine::new(MultiSubtype::from_code(code).unwrap(), ip_ip, cores, 8).unwrap()
    }

    #[test]
    fn unfused_spatial_machine_behaves_like_mimd() {
        let mut m = machine(0, FabricTopology::Crossbar, 4);
        let progs: Vec<Program> = (0..4).map(|_| lane_tag_program()).collect();
        m.run(&progs).unwrap();
        for core in 0..4 {
            assert_eq!(m.memory().bank(core).contents()[0], 1000 + core as Word);
        }
    }

    #[test]
    fn fused_group_broadcasts_the_leader_program() {
        let mut m = machine(0, FabricTopology::Crossbar, 4);
        m.fuse(0, 1).unwrap();
        m.fuse(0, 2).unwrap();
        // Followers' programs are dummies that would store 9999 — they must
        // NOT run.
        let mut dummy = Assembler::new();
        dummy
            .movi(0, 0)
            .movi(1, 9999)
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        let dummy = dummy.assemble().unwrap();
        let progs = vec![
            lane_tag_program(),
            dummy.clone(),
            dummy.clone(),
            lane_tag_program(),
        ];
        m.run(&progs).unwrap();
        // Group {0,1,2} all executed the leader's program, each on its own
        // lane; core 3 ran solo.
        for core in 0..4 {
            assert_eq!(m.memory().bank(core).contents()[0], 1000 + core as Word);
        }
    }

    #[test]
    fn window_fabric_limits_fusion_distance() {
        // DRRA-style 3-hop window.
        let mut m = machine(3, FabricTopology::Window { hops: 3 }, 16);
        m.fuse(5, 8).unwrap(); // 3 hops: allowed
        assert!(matches!(
            m.fuse(5, 9),
            Err(MachineError::RouteDenied { .. })
        ));
        assert!(matches!(
            m.fuse(0, 12),
            Err(MachineError::RouteDenied { .. })
        ));
    }

    #[test]
    fn fusion_transfers_to_the_group_root() {
        let mut m = machine(0, FabricTopology::Window { hops: 3 }, 16);
        m.fuse(0, 2).unwrap();
        // Fusing 4 into 2's group routes against the *root* (0): distance 4
        // exceeds the window even though |2-4| = 2.
        assert!(matches!(
            m.fuse(2, 4),
            Err(MachineError::RouteDenied { .. })
        ));
        m.defuse_all();
        m.fuse(2, 4).unwrap();
    }

    #[test]
    fn spatial_machine_requires_an_ip_ip_switch() {
        assert!(SpatialMachine::new(
            MultiSubtype::from_code(0).unwrap(),
            FabricTopology::None,
            4,
            8
        )
        .is_err());
    }

    #[test]
    fn specs_classify_as_isp() {
        use skilltax_taxonomy::classify;
        for code in [0u8, 3, 15] {
            let m = machine(code, FabricTopology::Crossbar, 4);
            let c = classify(&m.spec()).unwrap();
            assert_eq!(c.name().to_string(), m.class_name(), "code {code}");
        }
        // Window fabric is still a (limited) crossbar taxonomically.
        let drra_like = machine(3, FabricTopology::Window { hops: 3 }, 16);
        let c = classify(&drra_like.spec()).unwrap();
        assert_eq!(c.name().to_string(), "ISP-IV");
    }

    #[test]
    fn fusing_bad_indices_fails() {
        let mut m = machine(0, FabricTopology::Crossbar, 4);
        assert!(m.fuse(0, 0).is_err());
        assert!(m.fuse(0, 9).is_err());
    }
}

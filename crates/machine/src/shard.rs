//! Shard-parallel execution support: thread-count resolution, the
//! sense-reversing slice barrier, deterministic cut planning, and the
//! staged tracer that lets worker threads replay observations into the
//! caller's [`Tracer`] in exact single-threaded order.
//!
//! The shard runners in [`crate::multi`], [`crate::spatial`] and
//! [`crate::universal::fabric`] partition a machine into contiguous
//! shards, advance every shard one cycle-slice at a time under
//! `std::thread::scope`, and stage inter-shard messages at the barrier so
//! `Stats`, telemetry per-class totals and fault behaviour are
//! bit-identical to the single-threaded schedulers (DESIGN.md §10).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::telemetry::{EventKind, Tracer};

/// Resolve the worker-thread count honouring the `SKILLTAX_THREADS`
/// environment override: a positive value forces that many threads, `0`,
/// unset or unparsable falls back to [`std::thread::available_parallelism`].
///
/// Both [`crate::sweep::parallel_map`] and the sharded machine runners go
/// through this, so one knob pins the whole process for CI reproducibility
/// (documented next to the `SKILLTAX_BENCH_*` knobs in the README).
pub fn configured_threads() -> usize {
    match std::env::var("SKILLTAX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    }
}

/// Resolve a `with_shards(..)` knob value: `0` means "auto" (the
/// [`configured_threads`] count), anything else is taken literally.
pub(crate) fn resolve_shards(requested: usize) -> usize {
    if requested == 0 {
        configured_threads()
    } else {
        requested
    }
}

/// A lightweight sense-reversing barrier for the cycle-slice protocol.
///
/// All `parties` threads call [`SenseBarrier::wait`] with their own local
/// sense flag; the last arrival flips the shared sense and releases the
/// rest.  Waiters spin briefly and then yield, which keeps the
/// slice-to-slice latency low without burning a core when the host is
/// oversubscribed.
#[derive(Debug)]
pub(crate) struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// A barrier for `parties` participants.
    pub(crate) fn new(parties: usize) -> SenseBarrier {
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Block until all parties have arrived.  `local_sense` must be a
    /// per-thread flag initialised to `false` and reused across calls.
    pub(crate) fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Release);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Plan `shards` contiguous cuts over `n` units given a per-boundary
/// legality mask: `allowed[c]` says the cut *before* unit `c` is legal
/// (boundaries `1..n`).  Returns the shard start indices (always
/// beginning with 0) with at least two shards, or `None` when no legal
/// multi-shard partition exists.
///
/// Cuts are chosen greedily nearest to the ideal balanced positions
/// `s * n / shards`, keeping the partition deterministic for a given
/// `(n, shards, allowed)` triple.
pub(crate) fn plan_cuts(n: usize, shards: usize, allowed: &[bool]) -> Option<Vec<usize>> {
    if shards < 2 || n < 2 {
        return None;
    }
    debug_assert_eq!(allowed.len(), n);
    let shards = shards.min(n);
    let mut bounds = vec![0usize];
    for s in 1..shards {
        let ideal = (s * n) / shards;
        let floor = *bounds.last().expect("bounds is non-empty") + 1;
        // Nearest legal boundary to `ideal` within (floor, n).
        let mut best: Option<usize> = None;
        for (c, &ok) in allowed.iter().enumerate().take(n).skip(floor) {
            if !ok {
                continue;
            }
            match best {
                Some(b) if c.abs_diff(ideal) >= b.abs_diff(ideal) => {}
                _ => best = Some(c),
            }
        }
        match best {
            Some(c) => bounds.push(c),
            None => break,
        }
    }
    if bounds.len() < 2 {
        None
    } else {
        Some(bounds)
    }
}

/// One tracer call staged by a worker thread, replayed later into the
/// caller's real tracer in deterministic shard order.
#[derive(Debug, Clone)]
pub(crate) enum StagedOp {
    /// `record` / `record_many` (n = 1 for plain `record`).
    Event {
        /// Cycle the event happened on.
        cycle: u64,
        /// Event kind.
        kind: EventKind,
        /// Multiplicity.
        n: u64,
    },
    /// `counter(name, delta)`.
    Counter(String, u64),
    /// `sample(name, value)`.
    Sample(String, u64),
}

/// A [`Tracer`] that stages every call into a buffer instead of observing
/// it.  When the destination tracer is disabled, staging is skipped
/// entirely so the hot path stays allocation-free.
#[derive(Debug, Default)]
pub(crate) struct StageTracer {
    /// Mirrors the destination tracer's `enabled()`.
    pub(crate) live: bool,
    /// The staged calls, in issue order.
    pub(crate) ops: Vec<StagedOp>,
}

impl StageTracer {
    /// Replay `ops` into `tracer` verbatim.
    pub(crate) fn replay<T: Tracer>(ops: &[StagedOp], tracer: &mut T) {
        for op in ops {
            match op {
                StagedOp::Event { cycle, kind, n } => {
                    if *n == 1 {
                        tracer.record(*cycle, *kind);
                    } else {
                        tracer.record_many(*cycle, *kind, *n);
                    }
                }
                StagedOp::Counter(name, delta) => tracer.counter(name, *delta),
                StagedOp::Sample(name, value) => tracer.sample(name, *value),
            }
        }
    }
}

impl Tracer for StageTracer {
    fn enabled(&self) -> bool {
        self.live
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        if self.live {
            self.ops.push(StagedOp::Event { cycle, kind, n: 1 });
        }
    }

    fn record_many(&mut self, cycle: u64, kind: EventKind, n: u64) {
        if self.live && n > 0 {
            self.ops.push(StagedOp::Event { cycle, kind, n });
        }
    }

    fn counter(&mut self, name: &str, delta: u64) {
        if self.live {
            self.ops.push(StagedOp::Counter(name.to_owned(), delta));
        }
    }

    fn sample(&mut self, name: &str, value: u64) {
        if self.live {
            self.ops.push(StagedOp::Sample(name.to_owned(), value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventClass, EventTrace};

    #[test]
    fn plan_cuts_balances_when_everything_is_allowed() {
        let mut allowed = vec![true; 16];
        allowed[0] = false; // boundary 0 is never a cut
        let bounds = plan_cuts(16, 4, &allowed).unwrap();
        assert_eq!(bounds, vec![0, 4, 8, 12]);
    }

    #[test]
    fn plan_cuts_respects_forbidden_boundaries() {
        // Only one legal boundary: the partition collapses to two shards.
        let mut allowed = vec![false; 8];
        allowed[5] = true;
        assert_eq!(plan_cuts(8, 4, &allowed).unwrap(), vec![0, 5]);
        // No legal boundary at all: no partition.
        assert!(plan_cuts(8, 4, &[false; 8]).is_none());
        assert!(plan_cuts(8, 1, &[true; 8]).is_none());
    }

    #[test]
    fn plan_cuts_never_exceeds_unit_count() {
        let bounds = plan_cuts(3, 8, &[false, true, true]).unwrap();
        assert_eq!(bounds, vec![0, 1, 2]);
    }

    #[test]
    fn sense_barrier_synchronises_threads() {
        let barrier = SenseBarrier::new(3);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut sense = false;
                    for round in 1..=5usize {
                        hits.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        // After the barrier every thread of this round has
                        // contributed.
                        assert!(hits.load(Ordering::Relaxed) >= round * 3);
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn stage_tracer_replays_into_the_destination() {
        let mut stage = StageTracer {
            live: true,
            ops: Vec::new(),
        };
        stage.record(3, EventKind::Issue);
        stage.record_many(3, EventKind::Stall, 4);
        stage.record_many(3, EventKind::Stall, 0); // dropped: no-op on replay
        stage.counter("retries", 1);
        stage.sample("backoff.delay", 2);
        let mut trace = EventTrace::new();
        StageTracer::replay(&stage.ops, &mut trace);
        assert_eq!(trace.count(EventClass::Issue), 1);
        assert_eq!(trace.count(EventClass::Stall), 4);
    }

    #[test]
    fn disabled_stage_tracer_stages_nothing() {
        let mut stage = StageTracer::default();
        stage.record(1, EventKind::Issue);
        stage.counter("retries", 1);
        assert!(stage.ops.is_empty());
    }
}

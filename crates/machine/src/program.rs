//! Programs and a small label-resolving assembler.

use std::collections::HashMap;
use std::fmt;

use crate::error::MachineError;
use crate::isa::{Instr, Reg, Word};

/// A validated program: instructions with resolved branch targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Wrap and validate a raw instruction list.
    pub fn new(instrs: Vec<Instr>) -> Result<Program, MachineError> {
        for (at, instr) in instrs.iter().enumerate() {
            if !instr.registers_valid() {
                return Err(MachineError::BadRegister {
                    at,
                    instr: instr.to_string(),
                });
            }
            let target = match *instr {
                Instr::Beq(_, _, t) | Instr::Bne(_, _, t) | Instr::Blt(_, _, t) | Instr::Jmp(t) => {
                    Some(t)
                }
                _ => None,
            };
            if let Some(t) = target {
                if t >= instrs.len() {
                    return Err(MachineError::BadBranchTarget {
                        at,
                        target: t,
                        len: instrs.len(),
                    });
                }
            }
        }
        Ok(Program { instrs })
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Instruction at `pc`, if in range.
    pub fn fetch(&self, pc: usize) -> Option<Instr> {
        self.instrs.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Does the program use the DP–DP fabric anywhere?
    pub fn uses_dp_dp(&self) -> bool {
        self.instrs.iter().any(Instr::uses_dp_dp)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:>4}: {instr}")?;
        }
        Ok(())
    }
}

/// Forward-reference-friendly program builder: branches name labels, and
/// `assemble` resolves them.
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<PendingInstr>,
    labels: HashMap<String, usize>,
}

#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instr),
    Branch {
        kind: BranchKind,
        a: Reg,
        b: Reg,
        label: String,
    },
    Jump {
        label: String,
    },
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Eq,
    Ne,
    Lt,
}

impl Assembler {
    /// Start an empty program.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> Result<&mut Self, MachineError> {
        let name = name.into();
        if self
            .labels
            .insert(name.clone(), self.instrs.len())
            .is_some()
        {
            return Err(MachineError::DuplicateLabel { label: name });
        }
        Ok(self)
    }

    /// Append a non-branch instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(PendingInstr::Ready(instr));
        self
    }

    /// `beq a, b, label`.
    pub fn beq(&mut self, a: Reg, b: Reg, label: impl Into<String>) -> &mut Self {
        self.instrs.push(PendingInstr::Branch {
            kind: BranchKind::Eq,
            a,
            b,
            label: label.into(),
        });
        self
    }

    /// `bne a, b, label`.
    pub fn bne(&mut self, a: Reg, b: Reg, label: impl Into<String>) -> &mut Self {
        self.instrs.push(PendingInstr::Branch {
            kind: BranchKind::Ne,
            a,
            b,
            label: label.into(),
        });
        self
    }

    /// `blt a, b, label`.
    pub fn blt(&mut self, a: Reg, b: Reg, label: impl Into<String>) -> &mut Self {
        self.instrs.push(PendingInstr::Branch {
            kind: BranchKind::Lt,
            a,
            b,
            label: label.into(),
        });
        self
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.instrs.push(PendingInstr::Jump {
            label: label.into(),
        });
        self
    }

    /// Shorthand: `rd <- imm`.
    pub fn movi(&mut self, rd: Reg, imm: Word) -> &mut Self {
        self.emit(Instr::MovI(rd, imm))
    }

    /// Resolve labels and validate.
    pub fn assemble(&self) -> Result<Program, MachineError> {
        let resolve = |label: &str| -> Result<usize, MachineError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| MachineError::UndefinedLabel {
                    label: label.to_owned(),
                })
        };
        let mut out = Vec::with_capacity(self.instrs.len());
        for pending in &self.instrs {
            out.push(match pending {
                PendingInstr::Ready(i) => *i,
                PendingInstr::Branch { kind, a, b, label } => {
                    let t = resolve(label)?;
                    match kind {
                        BranchKind::Eq => Instr::Beq(*a, *b, t),
                        BranchKind::Ne => Instr::Bne(*a, *b, t),
                        BranchKind::Lt => Instr::Blt(*a, *b, t),
                    }
                }
                PendingInstr::Jump { label } => Instr::Jmp(resolve(label)?),
            });
        }
        Program::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_program_assembles() {
        let mut asm = Assembler::new();
        asm.movi(0, 5)
            .movi(1, 7)
            .emit(Instr::Add(2, 0, 1))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        assert_eq!(prog.len(), 4);
        assert_eq!(prog.fetch(2), Some(Instr::Add(2, 0, 1)));
        assert_eq!(prog.fetch(99), None);
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(1, 10);
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.jmp("end");
        asm.emit(Instr::Nop); // unreachable
        asm.label("end").unwrap();
        asm.emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        assert_eq!(prog.fetch(3), Some(Instr::Blt(0, 1, 2)));
        assert_eq!(prog.fetch(4), Some(Instr::Jmp(6)));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut asm = Assembler::new();
        asm.jmp("nowhere");
        assert_eq!(
            asm.assemble(),
            Err(MachineError::UndefinedLabel {
                label: "nowhere".into()
            })
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut asm = Assembler::new();
        asm.label("a").unwrap();
        assert!(asm.label("a").is_err());
    }

    #[test]
    fn register_validation_happens_at_program_construction() {
        let err = Program::new(vec![Instr::Add(99, 0, 1)]).unwrap_err();
        assert!(matches!(err, MachineError::BadRegister { at: 0, .. }));
    }

    #[test]
    fn branch_targets_validated() {
        let err = Program::new(vec![Instr::Jmp(7), Instr::Halt]).unwrap_err();
        assert!(matches!(
            err,
            MachineError::BadBranchTarget { target: 7, .. }
        ));
    }

    #[test]
    fn display_lists_numbered_instructions() {
        let prog = Program::new(vec![Instr::MovI(0, 1), Instr::Halt]).unwrap();
        let text = prog.to_string();
        assert!(text.contains("0: movi r0, 1"));
        assert!(text.contains("1: halt"));
    }

    #[test]
    fn dp_dp_usage_detection() {
        let with = Program::new(vec![Instr::Send(1, 0), Instr::Halt]).unwrap();
        let without = Program::new(vec![Instr::Add(0, 1, 2), Instr::Halt]).unwrap();
        assert!(with.uses_dp_dp());
        assert!(!without.uses_dp_dp());
    }
}

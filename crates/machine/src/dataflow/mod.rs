//! Data-flow machines: graphs ([`graph`]) and the token-firing engine
//! ([`engine`]) implementing DUP and DMP-I..IV.

pub mod engine;
pub mod graph;

pub use engine::{DataflowMachine, DataflowRun, DataflowSubtype, Placement};
pub use graph::{DataflowGraph, GraphBuilder, Node, NodeId, OpKind};

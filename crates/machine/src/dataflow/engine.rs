//! The token-driven execution engine for data-flow machines (DUP and
//! DMP-I..IV).
//!
//! Nodes are statically *placed* on data processors.  A node fires when all
//! of its operand tokens have arrived; each DP fires at most one ready node
//! per cycle, so execution is out-of-order within a DP and parallel across
//! DPs — exactly the paper's description of the data-flow paradigm.
//!
//! The DMP sub-types constrain placement feasibility:
//!
//! * an edge between nodes on *different* DPs needs the **DP–DP** switch
//!   (sub-types II and IV);
//! * an Input/Output node placed on DP `p` touches memory bank
//!   `io_index % n`; reaching a *foreign* bank needs the **DP–DM**
//!   crossbar (sub-types III and IV).
//!
//! DMP-I therefore only runs graphs that partition into per-DP islands
//! with bank-local I/O — the executable meaning of its flexibility score
//! of 1.

use skilltax_model::{ArchSpec, Count, Link, Relation};

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::{FaultPlan, RunOutcome};
use crate::isa::Word;
use crate::profile::Phase;
use crate::telemetry::{EventKind, FaultKind, NullTracer, Tracer};

use super::graph::{DataflowGraph, NodeId, OpKind};

/// The data-flow machine sub-types (DUP plus DMP I–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowSubtype {
    /// Single processor (class 1, DUP).
    Uni,
    /// `n` DPs, private banks, no DP–DP (class 2).
    I,
    /// `n` DPs, private banks, DP–DP crossbar (class 3).
    II,
    /// `n` DPs, shared-bank crossbar, no DP–DP (class 4).
    III,
    /// `n` DPs, both crossbars (class 5).
    IV,
}

impl DataflowSubtype {
    /// The four multi-processor sub-types.
    pub const MULTI: [DataflowSubtype; 4] = [
        DataflowSubtype::I,
        DataflowSubtype::II,
        DataflowSubtype::III,
        DataflowSubtype::IV,
    ];

    /// Does the machine have a DP–DP switch (cross-DP edges allowed)?
    pub fn dp_dp_crossbar(&self) -> bool {
        matches!(self, DataflowSubtype::II | DataflowSubtype::IV)
    }

    /// Does the machine have a DP–DM crossbar (foreign-bank I/O allowed)?
    pub fn dp_dm_crossbar(&self) -> bool {
        matches!(self, DataflowSubtype::III | DataflowSubtype::IV)
    }

    /// Taxonomy class name.
    pub fn class_name(&self) -> &'static str {
        match self {
            DataflowSubtype::Uni => "DUP",
            DataflowSubtype::I => "DMP-I",
            DataflowSubtype::II => "DMP-II",
            DataflowSubtype::III => "DMP-III",
            DataflowSubtype::IV => "DMP-IV",
        }
    }
}

/// How to place graph nodes onto data processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Round-robin by node id.
    RoundRobin,
    /// Keep each connected chain on the DP of its lowest input, falling
    /// back to round-robin for orphan nodes — good for island graphs.
    Islands,
    /// Every node on DP 0: fully sequential, but needs no DP–DP switch
    /// (the natural mode for DMP-III's shared-memory-only shape).
    AllOnOne,
    /// Explicit node→DP map.
    Explicit(Vec<usize>),
}

/// Result of a data-flow run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowRun {
    /// The output values, by output index.
    pub outputs: Vec<Word>,
    /// Execution statistics.
    pub stats: Stats,
}

/// A data-flow machine.
#[derive(Debug, Clone)]
pub struct DataflowMachine {
    subtype: DataflowSubtype,
    n_dps: usize,
    cycle_limit: u64,
    dense_reference: bool,
    cancel: CancelToken,
}

impl DataflowMachine {
    /// A machine with `n_dps` data processors (must be 1 for
    /// [`DataflowSubtype::Uni`], ≥ 2 otherwise).
    pub fn new(subtype: DataflowSubtype, n_dps: usize) -> Result<DataflowMachine, MachineError> {
        match (subtype, n_dps) {
            (DataflowSubtype::Uni, 1) => {}
            (DataflowSubtype::Uni, n) => {
                return Err(MachineError::config(format!(
                    "DUP has exactly one DP, got {n}"
                )))
            }
            (_, n) if n < 2 => {
                return Err(MachineError::config("a DMP machine needs at least two DPs"))
            }
            _ => {}
        }
        Ok(DataflowMachine {
            subtype,
            n_dps,
            cycle_limit: 10_000_000,
            dense_reference: false,
            cancel: CancelToken::new(),
        })
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> DataflowMachine {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token for subsequent runs (deadline cycles
    /// stop deterministically; the flag stops promptly).
    pub fn with_cancel(mut self, cancel: CancelToken) -> DataflowMachine {
        self.cancel = cancel;
        self
    }

    /// Force the dense per-cycle firing loop (the reference scheduler)
    /// instead of the event-driven active-DP loop.  Both produce
    /// identical outputs, [`Stats`] and event-class totals.
    pub fn with_dense_reference(mut self, dense: bool) -> DataflowMachine {
        self.dense_reference = dense;
        self
    }

    /// The sub-type.
    pub fn subtype(&self) -> DataflowSubtype {
        self.subtype
    }

    /// Number of data processors.
    pub fn dp_count(&self) -> usize {
        self.n_dps
    }

    /// The structural [`ArchSpec`] of this machine.
    pub fn spec(&self) -> ArchSpec {
        let n = (self.n_dps as u32).max(2);
        let mut b = ArchSpec::builder(format!("dataflow-{}x{}", self.subtype.class_name(), n))
            .ips(Count::zero());
        if self.subtype == DataflowSubtype::Uni {
            return b
                .dps(Count::one())
                .link(Relation::DpDm, Link::direct_between(1, 1))
                .build_unchecked();
        }
        b = b.dps(Count::fixed(n));
        b = b.link(
            Relation::DpDm,
            if self.subtype.dp_dm_crossbar() {
                Link::crossbar_between(n, n)
            } else {
                Link::direct_between(n, n)
            },
        );
        if self.subtype.dp_dp_crossbar() {
            b = b.link(Relation::DpDp, Link::crossbar_between(n, n));
        }
        b.build_unchecked()
    }

    /// Compute a concrete node→DP map for a placement policy.
    pub fn place(&self, graph: &DataflowGraph, placement: &Placement) -> Vec<usize> {
        match placement {
            Placement::Explicit(map) => map.clone(),
            Placement::AllOnOne => vec![0; graph.len()],
            Placement::RoundRobin => (0..graph.len()).map(|i| i % self.n_dps).collect(),
            Placement::Islands => {
                // Pin I/O nodes to their banks, then let everything else
                // adopt a decided neighbour's DP (sweep to fixpoint);
                // isolated leftovers fall back to round-robin.
                let consumers = graph.consumers();
                let mut map = vec![usize::MAX; graph.len()];
                for (id, node) in graph.nodes().iter().enumerate() {
                    if let OpKind::Input(k) | OpKind::Output(k) = node.op {
                        map[id] = k % self.n_dps;
                    }
                }
                let mut changed = true;
                while changed {
                    changed = false;
                    for (id, node) in graph.nodes().iter().enumerate() {
                        if map[id] != usize::MAX {
                            continue;
                        }
                        let neighbour = node
                            .inputs
                            .iter()
                            .chain(consumers[id].iter())
                            .map(|&other| map[other])
                            .find(|&dp| dp != usize::MAX);
                        if let Some(dp) = neighbour {
                            map[id] = dp;
                            changed = true;
                        }
                    }
                }
                for (id, slot) in map.iter_mut().enumerate() {
                    if *slot == usize::MAX {
                        *slot = id % self.n_dps;
                    }
                }
                map
            }
        }
    }

    /// Check a placement against the sub-type's switches; returns a typed
    /// error describing the first infeasibility.
    pub fn check_placement(
        &self,
        graph: &DataflowGraph,
        map: &[usize],
    ) -> Result<(), MachineError> {
        if map.len() != graph.len() {
            return Err(MachineError::config(format!(
                "placement maps {} nodes but the graph has {}",
                map.len(),
                graph.len()
            )));
        }
        if let Some(&bad) = map.iter().find(|&&dp| dp >= self.n_dps) {
            return Err(MachineError::config(format!(
                "placement uses DP {bad} but the machine has {}",
                self.n_dps
            )));
        }
        for (id, node) in graph.nodes().iter().enumerate() {
            for &src in &node.inputs {
                if map[src] != map[id] && !self.subtype.dp_dp_crossbar() {
                    return Err(MachineError::RouteDenied {
                        from: map[src],
                        to: map[id],
                        reason: format!(
                            "{}: edge {src}->{id} crosses DPs but the machine has no \
                             DP-DP switch",
                            self.subtype.class_name()
                        ),
                    });
                }
            }
            if let OpKind::Input(k) | OpKind::Output(k) = node.op {
                let bank = k % self.n_dps;
                if bank != map[id] && !self.subtype.dp_dm_crossbar() {
                    return Err(MachineError::BankAccessDenied {
                        processor: map[id],
                        bank,
                        reason: format!(
                            "{}: I/O {k} lives in bank {bank} but node {id} is placed \
                             on DP {} and DP-DM is direct",
                            self.subtype.class_name(),
                            map[id]
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Run a graph on the machine with the given placement policy.
    pub fn run(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        placement: &Placement,
    ) -> Result<DataflowRun, MachineError> {
        if inputs.len() != graph.input_count() {
            return Err(MachineError::config(format!(
                "graph expects {} inputs, got {}",
                graph.input_count(),
                inputs.len()
            )));
        }
        let map = self.place(graph, placement);
        self.check_placement(graph, &map)?;
        self.execute(graph, inputs, &map, None, &mut NullTracer)
    }

    /// [`DataflowMachine::run`] with observation hooks; with a
    /// [`NullTracer`] this monomorphises back to the plain firing loop.
    pub fn run_traced<T: Tracer>(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        placement: &Placement,
        tracer: &mut T,
    ) -> Result<DataflowRun, MachineError> {
        if inputs.len() != graph.input_count() {
            return Err(MachineError::config(format!(
                "graph expects {} inputs, got {}",
                graph.input_count(),
                inputs.len()
            )));
        }
        let map = self.place(graph, placement);
        self.check_placement(graph, &map)?;
        self.execute(graph, inputs, &map, None, tracer)
    }

    /// Run a graph under a fault plan, degrading around failed DPs.
    ///
    /// Nodes placed on a failed DP are remapped onto healthy substitutes
    /// (all nodes of one failed DP move together, so island structure is
    /// preserved).  Whether the remapped placement is still *feasible* is
    /// exactly the sub-type's switch question: a crossbar on the violated
    /// relation lets the run complete degraded, a direct link makes the
    /// degradation impossible.
    pub fn run_resilient(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        placement: &Placement,
        mut plan: FaultPlan,
    ) -> Result<(DataflowRun, RunOutcome), MachineError> {
        if inputs.len() != graph.input_count() {
            return Err(MachineError::config(format!(
                "graph expects {} inputs, got {}",
                graph.input_count(),
                inputs.len()
            )));
        }
        let mut map = self.place(graph, placement);
        let failed: Vec<usize> = (0..self.n_dps).filter(|&d| plan.dp_failed(d)).collect();
        let healthy: Vec<usize> = (0..self.n_dps).filter(|&d| !plan.dp_failed(d)).collect();
        let mut degraded = false;
        if !failed.is_empty() {
            if healthy.is_empty() {
                return Err(MachineError::DegradationImpossible {
                    machine: self.subtype.class_name().to_owned(),
                    reason: "every data processor has failed".to_owned(),
                });
            }
            // Each failed DP gets one healthy substitute, so co-located
            // nodes stay co-located after the remap.
            let substitute: std::collections::BTreeMap<usize, usize> = failed
                .iter()
                .enumerate()
                .map(|(i, &f)| (f, healthy[i % healthy.len()]))
                .collect();
            let mut moved = false;
            for slot in map.iter_mut() {
                if let Some(&sub) = substitute.get(slot) {
                    *slot = sub;
                    moved = true;
                }
            }
            if moved {
                if let Err(err) = self.check_placement(graph, &map) {
                    return Err(MachineError::DegradationImpossible {
                        machine: self.subtype.class_name().to_owned(),
                        reason: format!("remapping off the failed DPs is not routable: {err}"),
                    });
                }
                degraded = true;
            }
        } else {
            self.check_placement(graph, &map)?;
        }
        let run = self.execute(graph, inputs, &map, Some(&mut plan), &mut NullTracer)?;
        let outcome = RunOutcome {
            stats: run.stats,
            faults_injected: plan.injected() + failed.len() as u64,
            retries: 0,
            degraded,
        };
        Ok((run, outcome))
    }

    /// The token-driven firing loop over a checked placement.
    ///
    /// Dispatches to the event-driven scheduler unless the dense
    /// reference loop is forced.  Stall plans run on either scheduler:
    /// the stall decision is a pure hash of `(cycle, dp)` queried only
    /// for DPs holding a ready token, a set both loops agree on.
    fn execute<T: Tracer>(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        map: &[usize],
        faults: Option<&mut FaultPlan>,
        tracer: &mut T,
    ) -> Result<DataflowRun, MachineError> {
        if self.dense_reference {
            self.execute_dense(graph, inputs, map, faults, tracer)
        } else {
            self.execute_event(graph, inputs, map, faults, tracer)
        }
    }

    /// The dense reference scheduler: every DP is visited every cycle,
    /// idle DPs record a stall each.
    fn execute_dense<T: Tracer>(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        map: &[usize],
        mut faults: Option<&mut FaultPlan>,
        tracer: &mut T,
    ) -> Result<DataflowRun, MachineError> {
        let consumers = graph.consumers();
        let mut pending: Vec<usize> = graph.nodes().iter().map(|n| n.op.arity()).collect();
        let mut value: Vec<Option<Word>> = vec![None; graph.len()];
        // Source nodes are immediately ready.
        let mut ready: Vec<Vec<NodeId>> = vec![Vec::new(); self.n_dps];
        for (id, node) in graph.nodes().iter().enumerate() {
            if node.op.arity() == 0 {
                ready[map[id]].push(id);
            }
        }
        let mut outputs = vec![0; graph.output_count()];
        let mut fired = 0usize;
        let mut stats = Stats::default();

        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        while fired < graph.len() {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            stats.cycles += 1;
            let mut fired_this_cycle: Vec<NodeId> = Vec::new();
            // Each DP fires at most one ready node per cycle.
            for (dp, dp_ready) in ready.iter_mut().enumerate() {
                if tracer.enabled() {
                    tracer.sample("dataflow.ready_depth", dp_ready.len() as u64);
                }
                // The stall roll is queried only for DPs that hold a
                // ready token — the set the event scheduler visits — so
                // both loops ask the same (cycle, dp) questions.
                if !dp_ready.is_empty() {
                    if let Some(plan) = faults.as_deref_mut() {
                        if plan.dp_stalled(stats.cycles, dp) {
                            stats.stalls += 1;
                            tracer.record(stats.cycles, EventKind::FaultInjected(FaultKind::Stall));
                            tracer.record(stats.cycles, EventKind::Stall);
                            continue;
                        }
                    }
                }
                if let Some(id) = dp_ready.pop() {
                    let node = &graph.nodes()[id];
                    let operands: Vec<Word> = node
                        .inputs
                        .iter()
                        .map(|&src| value[src].expect("operand fired before consumer"))
                        .collect();
                    let v = match node.op {
                        OpKind::Input(k) => {
                            stats.mem_reads += 1;
                            tracer.record(stats.cycles, EventKind::MemRead);
                            inputs[k]
                        }
                        OpKind::Output(k) => {
                            stats.mem_writes += 1;
                            tracer.record(stats.cycles, EventKind::MemWrite);
                            outputs[k] = operands[0];
                            operands[0]
                        }
                        other => {
                            if other.is_alu() {
                                stats.alu_ops += 1;
                                tracer.record(stats.cycles, EventKind::AluOp);
                            }
                            other.apply(&operands)
                        }
                    };
                    value[id] = Some(v);
                    stats.instructions += 1;
                    tracer.record(stats.cycles, EventKind::Issue);
                    fired += 1;
                    fired_this_cycle.push(id);
                } else {
                    stats.stalls += 1;
                    tracer.record(stats.cycles, EventKind::Stall);
                }
            }
            // Propagate tokens produced this cycle.
            for id in fired_this_cycle {
                for &consumer in &consumers[id] {
                    if map[consumer] != map[id] {
                        stats.messages += 1;
                        tracer.record(
                            stats.cycles,
                            EventKind::Message {
                                from: map[id],
                                to: map[consumer],
                            },
                        );
                        tracer.record(stats.cycles, EventKind::CrossbarTraversal);
                    }
                    pending[consumer] -= 1;
                    if pending[consumer] == 0 {
                        ready[map[consumer]].push(consumer);
                    }
                }
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        Ok(DataflowRun { outputs, stats })
    }

    /// The event-driven scheduler: only DPs holding ready tokens are
    /// visited, the idle remainder is bulk-accounted as stalls via
    /// [`Tracer::record_many`], and a fully quiescent (livelocked)
    /// machine warps straight to the watchdog limit instead of spinning
    /// cycle by cycle.  Counter-identical to [`execute_dense`] by
    /// construction: `active` is exactly the set of DPs whose ready
    /// stack is non-empty at cycle start, visited in the same ascending
    /// DP order, popping the same LIFO stacks.
    fn execute_event<T: Tracer>(
        &self,
        graph: &DataflowGraph,
        inputs: &[Word],
        map: &[usize],
        mut faults: Option<&mut FaultPlan>,
        tracer: &mut T,
    ) -> Result<DataflowRun, MachineError> {
        let consumers = graph.consumers();
        let mut pending: Vec<usize> = graph.nodes().iter().map(|n| n.op.arity()).collect();
        let mut value: Vec<Option<Word>> = vec![None; graph.len()];
        let mut ready: Vec<Vec<NodeId>> = vec![Vec::new(); self.n_dps];
        for (id, node) in graph.nodes().iter().enumerate() {
            if node.op.arity() == 0 {
                ready[map[id]].push(id);
            }
        }
        let mut outputs = vec![0; graph.output_count()];
        let mut fired = 0usize;
        let mut stats = Stats::default();
        let mut active: Vec<usize> = (0..self.n_dps).filter(|&d| !ready[d].is_empty()).collect();
        let mut fired_this_cycle: Vec<NodeId> = Vec::new();

        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        while fired < graph.len() {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if active.is_empty() {
                // No token can ever arrive again; the dense loop would
                // stall every DP each cycle until the budget runs out.
                let ceiling = budget.limit();
                let span = ceiling.saturating_sub(stats.cycles);
                stats.stalls += span * self.n_dps as u64;
                tracer.record_many(ceiling, EventKind::Stall, span * self.n_dps as u64);
                stats.cycles = ceiling;
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            stats.cycles += 1;
            let idle = (self.n_dps - active.len()) as u64;
            stats.stalls += idle;
            tracer.record_many(stats.cycles, EventKind::Stall, idle);
            fired_this_cycle.clear();
            for &dp in &active {
                if tracer.enabled() {
                    tracer.sample("dataflow.ready_depth", ready[dp].len() as u64);
                }
                // Same fetch-stage stall query as the dense loop: active
                // is exactly the DPs with a ready token this cycle.
                if let Some(plan) = faults.as_deref_mut() {
                    if plan.dp_stalled(stats.cycles, dp) {
                        stats.stalls += 1;
                        tracer.record(stats.cycles, EventKind::FaultInjected(FaultKind::Stall));
                        tracer.record(stats.cycles, EventKind::Stall);
                        continue;
                    }
                }
                let id = ready[dp].pop().expect("active DP has a ready token");
                let node = &graph.nodes()[id];
                let operands: Vec<Word> = node
                    .inputs
                    .iter()
                    .map(|&src| value[src].expect("operand fired before consumer"))
                    .collect();
                let v = match node.op {
                    OpKind::Input(k) => {
                        stats.mem_reads += 1;
                        tracer.record(stats.cycles, EventKind::MemRead);
                        inputs[k]
                    }
                    OpKind::Output(k) => {
                        stats.mem_writes += 1;
                        tracer.record(stats.cycles, EventKind::MemWrite);
                        outputs[k] = operands[0];
                        operands[0]
                    }
                    other => {
                        if other.is_alu() {
                            stats.alu_ops += 1;
                            tracer.record(stats.cycles, EventKind::AluOp);
                        }
                        other.apply(&operands)
                    }
                };
                value[id] = Some(v);
                stats.instructions += 1;
                tracer.record(stats.cycles, EventKind::Issue);
                fired += 1;
                fired_this_cycle.push(id);
            }
            active.retain(|&dp| !ready[dp].is_empty());
            for &id in &fired_this_cycle {
                for &consumer in &consumers[id] {
                    if map[consumer] != map[id] {
                        stats.messages += 1;
                        tracer.record(
                            stats.cycles,
                            EventKind::Message {
                                from: map[id],
                                to: map[consumer],
                            },
                        );
                        tracer.record(stats.cycles, EventKind::CrossbarTraversal);
                    }
                    pending[consumer] -= 1;
                    if pending[consumer] == 0 {
                        let dp = map[consumer];
                        if ready[dp].is_empty() {
                            let pos = active.partition_point(|&d| d < dp);
                            active.insert(pos, dp);
                        }
                        ready[dp].push(consumer);
                    }
                }
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        Ok(DataflowRun { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::graph::library::{fir, independent_chains, poly2, tree_sum};

    #[test]
    fn dup_runs_any_graph_sequentially() {
        let m = DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap();
        let g = poly2();
        let run = m.run(&g, &[7, 3], &Placement::RoundRobin).unwrap();
        assert_eq!(run.outputs, g.eval_reference(&[7, 3]).unwrap());
        // One node per cycle: cycles == node count.
        assert_eq!(run.stats.cycles, g.len() as u64);
    }

    #[test]
    fn dmp_iv_matches_reference_on_every_library_graph() {
        let m = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
        let cases: Vec<(DataflowGraph, Vec<Word>)> = vec![
            (poly2(), vec![5, 2]),
            (fir(&[1, 2, 3, 4]), vec![9, 8, 7, 6]),
            (tree_sum(8), (1..=8).collect()),
            (independent_chains(4), vec![3, 1, 4, 1]),
        ];
        for (g, inputs) in cases {
            let run = m.run(&g, &inputs, &Placement::RoundRobin).unwrap();
            assert_eq!(run.outputs, g.eval_reference(&inputs).unwrap());
        }
    }

    #[test]
    fn parallel_dataflow_beats_sequential_on_wide_graphs() {
        let g = tree_sum(16);
        let inputs: Vec<Word> = (0..16).collect();
        let uni = DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap();
        let wide = DataflowMachine::new(DataflowSubtype::IV, 8).unwrap();
        let seq = uni.run(&g, &inputs, &Placement::RoundRobin).unwrap();
        let par = wide.run(&g, &inputs, &Placement::RoundRobin).unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert!(
            par.stats.cycles < seq.stats.cycles / 2,
            "parallel {} vs sequential {}",
            par.stats.cycles,
            seq.stats.cycles
        );
    }

    #[test]
    fn dmp_i_rejects_cross_dp_edges() {
        // poly2 has cross edges under round-robin placement.
        let m = DataflowMachine::new(DataflowSubtype::I, 2).unwrap();
        assert!(matches!(
            m.run(&poly2(), &[1, 2], &Placement::RoundRobin),
            Err(MachineError::RouteDenied { .. })
        ));
    }

    #[test]
    fn dmp_i_runs_island_graphs_with_island_placement() {
        // Independent chains partition cleanly: DMP-I's legitimate niche.
        let m = DataflowMachine::new(DataflowSubtype::I, 4).unwrap();
        let g = independent_chains(4);
        let inputs = vec![2, 3, 4, 5];
        let run = m.run(&g, &inputs, &Placement::Islands).unwrap();
        assert_eq!(run.outputs, g.eval_reference(&inputs).unwrap());
        assert_eq!(run.stats.messages, 0, "island placement must not cross DPs");
    }

    #[test]
    fn dmp_iii_reaches_foreign_banks_without_dp_dp() {
        // All nodes on DP 0, I/O spread across banks: needs DP-DM crossbar
        // but no DP-DP switch.
        let g = independent_chains(2);
        let all_on_zero = Placement::Explicit(vec![0; g.len()]);
        let iii = DataflowMachine::new(DataflowSubtype::III, 2).unwrap();
        let run = iii.run(&g, &[1, 1], &all_on_zero).unwrap();
        assert_eq!(run.outputs, g.eval_reference(&[1, 1]).unwrap());

        let i = DataflowMachine::new(DataflowSubtype::I, 2).unwrap();
        assert!(matches!(
            i.run(&g, &[1, 1], &all_on_zero),
            Err(MachineError::BankAccessDenied { .. })
        ));
    }

    #[test]
    fn out_of_order_firing_is_by_availability() {
        // In poly2 the Sub can fire before the Add or after — either way
        // the result is the same (checked against reference on an engine
        // that pops ready nodes LIFO, i.e. not in topological order).
        let m = DataflowMachine::new(DataflowSubtype::IV, 2).unwrap();
        let g = poly2();
        for placement in [
            Placement::RoundRobin,
            Placement::Explicit(vec![0, 1, 0, 1, 0, 1]),
        ] {
            let run = m.run(&g, &[9, 4], &placement).unwrap();
            assert_eq!(run.outputs, vec![(9 + 4) * (9 - 4)]);
        }
    }

    #[test]
    fn bad_configurations_rejected() {
        assert!(DataflowMachine::new(DataflowSubtype::Uni, 2).is_err());
        assert!(DataflowMachine::new(DataflowSubtype::II, 1).is_err());
        let m = DataflowMachine::new(DataflowSubtype::IV, 2).unwrap();
        let g = poly2();
        assert!(m.run(&g, &[1], &Placement::RoundRobin).is_err()); // wrong input count
        assert!(m.check_placement(&g, &vec![5; g.len()]).is_err()); // DP out of range
        assert!(m.check_placement(&g, &[0]).is_err()); // wrong length
    }

    #[test]
    fn resilient_run_remaps_off_the_failed_dp() {
        let m = DataflowMachine::new(DataflowSubtype::IV, 4).unwrap();
        let g = tree_sum(8);
        let inputs: Vec<Word> = (1..=8).collect();
        let plan = FaultPlan::seeded(11).fail_dp(1);
        let (run, outcome) = m
            .run_resilient(&g, &inputs, &Placement::RoundRobin, plan)
            .unwrap();
        assert_eq!(run.outputs, g.eval_reference(&inputs).unwrap());
        assert!(outcome.degraded);
        assert!(outcome.faults_injected >= 1);
    }

    #[test]
    fn resilient_run_impossible_on_dmp_i() {
        // Chain 2's I/O lives in bank 2; with DP 2 dead its nodes must move,
        // but DMP-I's direct DP-DM link cannot reach a foreign bank.
        let m = DataflowMachine::new(DataflowSubtype::I, 4).unwrap();
        let g = independent_chains(4);
        let plan = FaultPlan::seeded(12).fail_dp(2);
        match m.run_resilient(&g, &[3, 1, 4, 1], &Placement::Islands, plan) {
            Err(MachineError::DegradationImpossible { machine, reason }) => {
                assert_eq!(machine, "DMP-I");
                assert!(reason.contains("not routable"), "reason: {reason}");
            }
            other => panic!("expected DegradationImpossible, got {other:?}"),
        }
    }

    #[test]
    fn resilient_all_on_one_survives_on_dmp_iii() {
        // AllOnOne keeps everything co-located after the remap, and the
        // DP-DM crossbar still reaches every bank from the substitute DP.
        let m = DataflowMachine::new(DataflowSubtype::III, 2).unwrap();
        let g = independent_chains(2);
        let plan = FaultPlan::seeded(13).fail_dp(0);
        let (run, outcome) = m
            .run_resilient(&g, &[5, 6], &Placement::AllOnOne, plan)
            .unwrap();
        assert_eq!(run.outputs, g.eval_reference(&[5, 6]).unwrap());
        assert!(outcome.degraded);
    }

    #[test]
    fn adversarial_stalls_trip_the_watchdog_with_partial_stats() {
        let m = DataflowMachine::new(DataflowSubtype::IV, 2)
            .unwrap()
            .with_cycle_limit(64);
        let g = poly2();
        let plan = FaultPlan::seeded(14).stall_dps(1.0);
        match m.run_resilient(&g, &[1, 2], &Placement::RoundRobin, plan) {
            Err(MachineError::WatchdogTimeout { limit: 64, partial }) => {
                assert_eq!(partial.cycles, 64);
                assert!(partial.stalls > 0);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn specs_classify_back_to_their_class() {
        use skilltax_taxonomy::classify;
        let dup = DataflowMachine::new(DataflowSubtype::Uni, 1).unwrap();
        assert_eq!(classify(&dup.spec()).unwrap().name().to_string(), "DUP");
        for (i, subtype) in DataflowSubtype::MULTI.iter().enumerate() {
            let m = DataflowMachine::new(*subtype, 4).unwrap();
            let c = classify(&m.spec()).unwrap();
            assert_eq!(c.name().to_string(), subtype.class_name());
            assert_eq!(c.serial(), i as u8 + 2);
        }
    }
}
